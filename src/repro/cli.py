"""Command-line interface.

::

    python -m repro search "star wars cast" [more queries ...] [--scale 0.3]
                    [--flavor expert] [--shards 4] [--strategy wand]
                    [--batch-file queries.txt] [--explain]
    python -m repro derive --strategy schema_data [--k1 4 --k2 3]
    python -m repro save DIR [--flavor expert] [--shards 4] [--mode auto]
    python -m repro load DIR ["query" ...] [--shards 4] [--strategy auto]
                    [--explain]
    python -m repro compact PATH
    python -m repro bench-diff BASELINE_DIR CURRENT_DIR [--threshold 0.25]
    python -m repro loganalysis [--unique 400]
    python -m repro evaluate [--queries 25] [--raters 20]
    python -m repro serve [DIR] [--port 8080] [--window-ms 2 --max-batch 32]
                    [--cache-size 512 --quota-rate 50] [--workers 4]
    python -m repro loadtest [--clients 8 --sessions 200]
                    [--compare-unbatched] [--assert-min-qps QPS]
                    [--assert-p99-ms MS] [--output report.json]
                    [--workers 4] [--arrival-rate 200]

Everything runs on the synthetic database (deterministic for a given
``--seed``), so the CLI doubles as a zero-setup demo of the system.
``save`` persists a derived collection (definitions + a deduplicated
document store + index snapshots; with ``--shards N`` also one snapshot
per shard partition) to a directory through the typed store API
(``repro.core.store.CollectionStore``) — when the directory already
holds a compatible generation, only the *new* documents are appended to
the collection delta journal (``--mode`` forces ``full`` or ``delta``);
``load`` restarts from that directory without re-deriving, pinning only
the manifest and snapshot headers up front (snapshots mmap lazily on
first query demand) — pass queries to answer them from the
loaded snapshots.  All queries given to ``search``/``load`` — positional
ones plus any read from ``--batch-file`` (one query per line) — are
answered as *one batch* through the staged query pipeline
(``repro.serve``), so sharded executors see batched dispatches;
``--explain`` prints each query's full stage trace (per-stage wall time,
the query plan, the strategy the df-skew cost model chose, cache and
shard-routing counters, and rejected candidate definitions).  ``compact``
folds delta segments back into clean bases — a directory's
collection-level journal first (rewriting a fresh journal-free
generation), then any per-file segments trailing individual snapshot
files.  ``bench-diff`` compares two directories of
``BENCH_*.json`` benchmark reports (the perf-regression check CI runs
nightly — see ``repro.bench.regression``).  ``--shards N`` scores the
flat collection index as N hash-partitioned shards in parallel,
Bloom-routing each query batch only to shards that can match (see
``repro.ir.shard``); ``--shard-mode`` picks the executor (``serial`` or
``process`` — multiprocess workers that mmap v3 snapshots);
``--strategy`` picks the retrieval algorithm (term-at-a-time max-score,
document-at-a-time WAND/block-max, per-query ``auto``, or ``hybrid`` —
lexical retrieval fused with cosine scoring over document embeddings by
reciprocal rank; see ``repro.ir.wand`` and ``repro.ir.vector``).

``serve`` puts the engine behind the asyncio HTTP front end
(``repro.serve.server``): concurrent requests micro-batch through one
pipeline run, a bounded queue gives backpressure (429 + Retry-After),
``--quota-rate`` adds per-client token buckets, and ``--cache-size`` /
``--cache-coverage`` enable the result cache with Zipf-head store
admission learned from the synthetic session log.  ``--workers N``
(requires a saved DIR) adds the prefork tier (``repro.serve.workers``):
N spawn-context pipeline worker processes each mmap the saved
collection lazily — one shared OS page cache — and whole micro-batches
are dispatched to the least-loaded worker over a framed socketpair, so
pipeline QPS scales with cores instead of serializing under one GIL.
``loadtest`` is the measurement harness for that server: it starts one
in-process on an ephemeral port, replays session-structured traffic
over N concurrent clients, and reports sustained QPS, p50/p99 latency,
and cache hit rate (``--compare-unbatched`` re-runs with batching
disabled and reports the speedup; the ``--assert-*`` flags make it a CI
smoke check; ``--workers N`` measures the prefork tier).  The default
load model is closed-loop (each client waits for its response before
sending the next); ``--arrival-rate R`` switches to *open-loop*:
requests arrive on a seeded Poisson process at R per second whether or
not earlier ones finished, and the report adds drop/timeout rates —
the model that makes saturation visible instead of self-throttling
around it.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import QunitCollection, UtilityModel
from repro.core.derivation import (
    ExternalEvidenceDeriver,
    QueryLogDeriver,
    SchemaDataDeriver,
    imdb_expert_qunits,
)
from repro.core.search import QunitSearchEngine, SearchRequest
from repro.datasets.evidence import generate_wiki_corpus
from repro.datasets.imdb import generate_imdb
from repro.datasets.querylog import QueryLogAnalyzer, QueryLogGenerator
from repro.eval.figures import render_sec52_statistics

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Qunits (CIDR 2009) reproduction — search demo CLI",
    )
    parser.add_argument("--scale", type=float, default=0.3,
                        help="synthetic database scale (default 0.3)")
    parser.add_argument("--seed", type=int, default=7,
                        help="generator seed (default 7)")
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser("search", help="run keyword queries")
    search.add_argument("query", nargs="?", default=None)
    search.add_argument("more_queries", nargs="*", metavar="query",
                        help="additional queries, answered as one batch "
                             "through the staged pipeline (see also "
                             "QunitSearchEngine.search_many)")
    search.add_argument("--batch-file", default=None, metavar="PATH",
                        help="file with one query per line, appended to "
                             "the positional queries and answered as one "
                             "batch through the staged pipeline")
    search.add_argument("--flavor", default="expert",
                        choices=["expert", "schema_data", "query_log",
                                 "external", "forms"])
    search.add_argument("--limit", type=int, default=3)
    _add_shard_options(search)

    save = commands.add_parser(
        "save", help="derive a collection and persist it to a directory")
    save.add_argument("directory",
                      help="output directory for the manifest + snapshots")
    save.add_argument("--flavor", default="expert",
                      choices=["expert", "schema_data", "query_log",
                               "external", "forms"])
    save.add_argument("--max-instances", type=int, default=150,
                      help="instance cap per definition (default 150)")
    save.add_argument(
        "--shards", type=int, default=0,
        help="also persist N per-shard snapshots (with term Bloom "
             "filters) so servers can load single partitions and "
             "`load --shards N` skips the in-memory re-partition")
    save.add_argument(
        "--mode", default="auto", choices=["auto", "full", "delta"],
        help="save mode: 'delta' appends only new documents to the "
             "collection journal, 'full' rewrites every snapshot, "
             "'auto' picks delta when the directory holds a compatible "
             "generation (default auto)")

    compact = commands.add_parser(
        "compact",
        help="fold delta segments — the collection journal and per-file "
             "segments — into clean snapshot bases")
    compact.add_argument(
        "path",
        help="a generation directory written by `save` (folds the "
             "collection journal, then compacts every *.snap in it) or "
             "a single snapshot file")

    migrate = commands.add_parser(
        "migrate",
        help="convert v1/v2 snapshot files to the v3 binary columnar "
             "container in place (atomic swap; v3 files are left alone)")
    migrate.add_argument(
        "path",
        help="a generation directory written by `save` (migrates every "
             "*.snap in it) or a single snapshot file")

    bench_diff = commands.add_parser(
        "bench-diff",
        help="compare two directories of BENCH_*.json benchmark reports; "
             "exits nonzero when a tracked metric regressed")
    bench_diff.add_argument("baseline_dir",
                            help="baseline reports (e.g. "
                                 "benchmarks/baselines)")
    bench_diff.add_argument("current_dir",
                            help="reports to check (e.g. "
                                 "benchmarks/results)")
    bench_diff.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed relative regression before failing (default 0.25)")

    load = commands.add_parser(
        "load", help="restart from a saved collection (no re-derivation)")
    load.add_argument("directory", help="directory written by `save`")
    load.add_argument("queries", nargs="*", metavar="query",
                      help="queries to answer from the loaded snapshots")
    load.add_argument("--batch-file", default=None, metavar="PATH",
                      help="file with one query per line, appended to "
                           "the positional queries and answered as one "
                           "batch through the staged pipeline")
    load.add_argument("--flavor", default="expert",
                      help="flavor label for branding answers")
    load.add_argument("--limit", type=int, default=3)
    _add_shard_options(load)

    derive = commands.add_parser("derive", help="derive qunit definitions")
    derive.add_argument("--strategy", default="schema_data",
                        choices=["expert", "schema_data", "query_log",
                                 "external", "forms"])
    derive.add_argument("--k1", type=int, default=4)
    derive.add_argument("--k2", type=int, default=3)

    log_analysis = commands.add_parser(
        "loganalysis", help="generate + analyze the synthetic query log")
    log_analysis.add_argument("--unique", type=int, default=0,
                              help="distinct queries (0 = recommended)")

    evaluate = commands.add_parser(
        "evaluate", help="run the Figure 3 result-quality experiment")
    evaluate.add_argument("--queries", type=int, default=25)
    evaluate.add_argument("--raters", type=int, default=20)

    serve = commands.add_parser(
        "serve",
        help="serve search over HTTP: asyncio front end with "
             "micro-batching, backpressure, and per-client quotas")
    serve.add_argument("directory", nargs="?", default=None,
                       help="saved collection directory (from `save`); "
                            "omitted = derive live at --scale")
    serve.add_argument("--flavor", default="expert",
                       choices=["expert", "schema_data", "query_log",
                                "external", "forms"])
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (default 8080; 0 = ephemeral)")
    serve.add_argument(
        "--workers", type=int, default=0,
        help="prefork pipeline worker processes (0 = run batches "
             "in-process; requires a saved collection DIR — workers "
             "mmap it lazily and share one OS page cache)")
    _add_serving_options(serve)
    _add_executor_options(serve)

    loadtest = commands.add_parser(
        "loadtest",
        help="measure the serving front end: start a server in-process "
             "and replay session-structured Zipf traffic closed-loop")
    loadtest.add_argument("--flavor", default="expert",
                          choices=["expert", "schema_data", "query_log",
                                   "external", "forms"])
    loadtest.add_argument("--clients", type=int, default=8,
                          help="concurrent closed-loop clients (default 8)")
    loadtest.add_argument("--sessions", type=int, default=200,
                          help="user sessions to replay (default 200)")
    loadtest.add_argument("--limit", type=int, default=5,
                          help="result limit per request (default 5)")
    loadtest.add_argument(
        "--compare-unbatched", action="store_true",
        help="re-run the same workload with micro-batching disabled "
             "(window 0, batch size 1) and report the QPS speedup")
    loadtest.add_argument(
        "--assert-min-qps", type=float, default=None, metavar="QPS",
        help="exit nonzero unless batched throughput reaches QPS "
             "(CI smoke gate)")
    loadtest.add_argument(
        "--assert-p99-ms", type=float, default=None, metavar="MS",
        help="exit nonzero if batched p99 latency exceeds MS "
             "(CI smoke gate)")
    loadtest.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the report as JSON (the BENCH_serving shape)")
    loadtest.add_argument(
        "--workers", type=int, default=0,
        help="prefork pipeline worker processes behind the measured "
             "server (0 = in-process; the collection is saved to a "
             "temporary directory the workers mmap)")
    loadtest.add_argument(
        "--arrival-rate", type=float, default=None, metavar="R",
        help="switch to open-loop load: requests arrive on a seeded "
             "Poisson process at R per second (one-shot, no retries; "
             "the report adds drop/timeout rates; default closed-loop)")
    _add_serving_options(loadtest)
    _add_executor_options(loadtest)
    return parser


def _add_serving_options(subparser) -> None:
    subparser.add_argument(
        "--window-ms", type=float, default=2.0,
        help="micro-batch window in ms, measured from the batch's first "
             "request (0 = no batching; default 2)")
    subparser.add_argument(
        "--max-batch", type=int, default=32,
        help="requests per micro-batch at most (default 32)")
    subparser.add_argument(
        "--queue-limit", type=int, default=256,
        help="waiting requests before the server answers 429 "
             "(default 256)")
    subparser.add_argument(
        "--quota-rate", type=float, default=None,
        help="per-client requests/second quota (token bucket; "
             "default off)")
    subparser.add_argument(
        "--quota-burst", type=float, default=20.0,
        help="per-client burst allowance (default 20)")
    subparser.add_argument(
        "--cache-size", type=int, default=512,
        help="pipeline result-cache entries (0 disables; default 512)")
    subparser.add_argument(
        "--cache-coverage", type=float, default=0.5,
        help="volume fraction of the query log whose Zipf head is "
             "admitted to the result cache (0 = admit everything; "
             "default 0.5)")


def _add_shard_options(subparser) -> None:
    _add_executor_options(subparser)
    subparser.add_argument(
        "--explain", action="store_true",
        help="print each query's full pipeline stage trace (plan, "
             "strategy chosen, per-stage wall time, cache and shard "
             "routing counters, rejected candidates)")


def _add_executor_options(subparser) -> None:
    subparser.add_argument(
        "--shards", type=int, default=0,
        help="hash-partition the flat index into N shards scored in "
             "parallel (0 = serial; results are identical either way)")
    subparser.add_argument(
        "--shard-mode", default="serial",
        choices=["serial", "process"],
        help="executor for sharded scoring (default serial; process "
             "scales across cores — workers mmap v3 snapshots and "
             "share one page cache)")
    subparser.add_argument(
        "--strategy", default="auto",
        choices=["auto", "maxscore", "wand", "blockmax", "hybrid"],
        help="fast-path retrieval algorithm: term-at-a-time max-score, "
             "document-at-a-time WAND, block-max WAND, or per-query "
             "auto selection via the df-skew cost model (default auto; "
             "the lexical strategies return identical results); "
             "'hybrid' fuses lexical retrieval with cosine scoring "
             "over document embeddings by reciprocal rank")


def _definitions_for(args, db, strategy: str):
    if strategy == "expert":
        return imdb_expert_qunits()
    if strategy == "schema_data":
        k1 = getattr(args, "k1", 4)
        k2 = getattr(args, "k2", 3)
        return SchemaDataDeriver(db, k1=k1, k2=k2).derive()
    if strategy == "forms":
        from repro.core.derivation import FormBasedDeriver

        return FormBasedDeriver(db).derive()
    if strategy == "query_log":
        generator = QueryLogGenerator(db, seed=args.seed + 1)
        log = generator.generate(generator.recommended_unique())
        return QueryLogDeriver(db).derive(log.as_list())
    pages = generate_wiki_corpus(db, seed=args.seed + 2)
    return ExternalEvidenceDeriver(db).derive(pages)


def _print_answers(engine, queries: list[str], limit: int,
                   explain: bool = False) -> bool:
    from repro.core.search import SnippetExtractor

    extractor = SnippetExtractor(window=24)
    any_answers = False
    # One pipeline run for the whole batch: segmentation, matching, and
    # retrieval dispatch are all batched (the sequential per-query loop
    # this replaces paid a shard dispatch per query).  The CLI speaks
    # the typed request/response API natively — the same types the HTTP
    # server serializes onto the wire.
    responses = engine.execute([
        SearchRequest(query=query, limit=limit, explain=True)
        for query in queries])
    for i, response in enumerate(responses):
        answers, explanation = response.answers, response.explanation
        if i:
            print()
        print(f"query   : {response.query}")
        if explain:
            print(explanation.render())
        else:
            print(f"template: {explanation.template}  "
                  f"({explanation.query_class})")
        if not answers:
            print("no answers.")
            continue
        any_answers = True
        for rank, answer in enumerate(answers, start=1):
            print(f"\n#{rank}  [{answer.meta('definition')}]  "
                  f"score={answer.score:.3f}")
            print("   " + extractor.snippet(answer.text, response.query))
    return any_answers


def _gather_queries(positional: list[str], batch_file: str | None,
                    parser_hint: str | None = None) -> list[str]:
    """Positional queries plus any ``batch_file`` lines (one query per
    non-blank line).  With ``parser_hint`` set, an empty result exits
    with an argument error (status 2)."""
    queries = list(positional)
    if batch_file:
        from pathlib import Path

        try:
            text = Path(batch_file).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            print(f"cannot read --batch-file {batch_file!r}: {exc}",
                  file=sys.stderr)
            raise SystemExit(2) from exc
        queries.extend(line.strip() for line in text.splitlines()
                       if line.strip())
    if not queries and parser_hint is not None:
        print(f"{parser_hint}: no queries given "
              f"(pass them positionally or via --batch-file)",
              file=sys.stderr)
        raise SystemExit(2)
    return queries


def _command_search(args) -> int:
    db = generate_imdb(scale=args.scale, seed=args.seed)
    positional = [query for query in [args.query, *args.more_queries]
                  if query is not None]
    queries = _gather_queries(positional, args.batch_file, "repro search")
    definitions = _definitions_for(args, db, args.flavor)
    engine = QunitSearchEngine(
        QunitCollection(db, definitions, max_instances_per_definition=150,
                        shards=args.shards, parallelism=args.shard_mode,
                        strategy=args.strategy),
        flavor=args.flavor,
    )
    return 0 if _print_answers(engine, queries, args.limit,
                               explain=args.explain) else 1


def _command_save(args) -> int:
    from repro.core.store import CollectionStore, SaveOptions

    db = generate_imdb(scale=args.scale, seed=args.seed)
    definitions = _definitions_for(args, db, args.flavor)
    collection = QunitCollection(
        db, definitions, max_instances_per_definition=args.max_instances,
        shards=args.shards)
    report = CollectionStore(args.directory).save(
        collection, SaveOptions(mode=args.mode))
    snapshot = collection.global_snapshot()
    print(f"saved collection to {report.path}")
    print(f"  mode        : {report.mode}")
    print(f"  generation  : {report.generation}")
    print(f"  definitions : {len(collection)}")
    print(f"  instances   : {collection.instance_count()}")
    print(f"  documents   : {report.documents}")
    print(f"  vocabulary  : {snapshot.vocabulary_size}")
    if report.mode == "delta":
        print(f"  appended    : {report.appended_documents} document(s) "
              f"in {report.journal_segments} segment(s)")
    if args.shards >= 2:
        print(f"  shards      : {args.shards}")
    return 0


def _command_compact(args) -> int:
    from pathlib import Path

    from repro.ir.persist import (
        compact_snapshot,
        load_document_store,
        read_snapshot_header,
    )

    target = Path(args.path)
    if target.is_dir() and (target / "collection.json").exists():
        # Fold the collection-level delta journal first: this rewrites
        # every snapshot as a clean full-generation base, so the
        # per-file pass below only has legacy per-file segments left.
        from repro.core.store import CollectionStore

        store = CollectionStore(target)
        segments = store.compact()
        generation = store.manifest().get("generation", "-")
        print(f"collection.json: folded {segments} journal delta "
              f"segment(s), generation {generation}")
    files = sorted(target.glob("*.snap")) if target.is_dir() else [target]
    if not files:
        print(f"no snapshot files found in {target}")
        return 1
    # One generation shares one document store; parse it once, not once
    # per snapshot file.
    stores = {}
    for path in files:
        store = None
        store_name = read_snapshot_header(path).get("docstore")
        if store_name is not None:
            store_path = (path.parent / store_name).resolve()
            if store_path not in stores:
                stores[store_path] = load_document_store(store_path)
            store = stores[store_path]
        before = path.stat().st_size
        segments = compact_snapshot(path, store=store)
        after = path.stat().st_size
        print(f"{path.name}: folded {segments} delta segment(s), "
              f"{before} -> {after} bytes")
    return 0


def _command_migrate(args) -> int:
    from pathlib import Path

    from repro.ir.persist import (
        FORMAT_VERSION,
        compact_snapshot,
        load_document_store,
        read_snapshot_header,
    )

    target = Path(args.path)
    files = sorted(target.glob("*.snap")) if target.is_dir() else [target]
    if not files:
        print(f"no snapshot files found in {target}")
        return 1
    stores = {}
    migrated = 0
    for path in files:
        header = read_snapshot_header(path)
        old_version = header.get("format_version")
        if old_version == FORMAT_VERSION:
            print(f"{path.name}: already v{FORMAT_VERSION}, skipped")
            continue
        store = None
        store_name = header.get("docstore")
        if store_name is not None:
            store_path = (path.parent / store_name).resolve()
            if store_path not in stores:
                stores[store_path] = load_document_store(store_path)
            store = stores[store_path]
        before = path.stat().st_size
        compact_snapshot(path, store=store)
        after = path.stat().st_size
        print(f"{path.name}: v{old_version} -> v{FORMAT_VERSION}, "
              f"{before} -> {after} bytes")
        migrated += 1
    print(f"migrated {migrated} of {len(files)} file(s)")
    return 0


def _command_bench_diff(args) -> int:
    from repro.bench.regression import compare_dirs, render_comparison

    comparisons = compare_dirs(args.baseline_dir, args.current_dir,
                               args.threshold)
    print(render_comparison(comparisons, args.threshold))
    return 1 if any(c.regressed for c in comparisons) else 0


def _command_load(args) -> int:
    db = generate_imdb(scale=args.scale, seed=args.seed)
    engine = QunitSearchEngine.load(
        db, args.directory, flavor=args.flavor,
        shards=args.shards, parallelism=args.shard_mode,
        strategy=args.strategy)
    collection = engine.collection
    snapshot = collection.global_snapshot()
    print(f"loaded collection from {args.directory}")
    print(f"  definitions : {len(collection)}")
    print(f"  documents   : {snapshot.document_count}")
    print(f"  vocabulary  : {snapshot.vocabulary_size}")
    queries = _gather_queries(args.queries, args.batch_file)
    if not queries:
        return 0  # stats-only load stays valid with no queries anywhere
    print()
    return 0 if _print_answers(engine, queries, args.limit,
                               explain=args.explain) else 1


def _command_derive(args) -> int:
    db = generate_imdb(scale=args.scale, seed=args.seed)
    definitions = _definitions_for(args, db, args.strategy)
    utility = UtilityModel(db)
    for definition in utility.assign(definitions):
        binder = (f"{definition.binders[0].table}.{definition.binders[0].column}"
                  if definition.binders else "-")
        print(f"{definition.utility:.3f}  {definition.name:44s} "
              f"anchor={binder}")
        print(f"       {definition.base_sql[:100]}")
    return 0


def _command_loganalysis(args) -> int:
    db = generate_imdb(scale=args.scale, seed=args.seed)
    generator = QueryLogGenerator(db, seed=args.seed + 1)
    unique = args.unique or generator.recommended_unique()
    log = generator.generate(unique)
    analyzer = QueryLogAnalyzer(db)
    print(render_sec52_statistics(analyzer.statistics(log)))
    print("\ntop templates:")
    frequencies = analyzer.template_frequencies(log)
    for template, volume in sorted(frequencies.items(),
                                   key=lambda kv: -kv[1])[:10]:
        print(f"  {volume:5d}  {template}")
    return 0


def _command_evaluate(args) -> int:
    from repro.eval.harness import ResultQualityExperiment

    experiment = ResultQualityExperiment(
        scale=args.scale, seed=args.seed,
        n_raters=args.raters, n_queries=args.queries,
    )
    report = experiment.run()
    print(report.render())
    return 0


# -- serving --------------------------------------------------------------


def _engine_config(args, log):
    """The pipeline config for serving: result cache sized by
    ``--cache-size``, with store admission restricted to ``log``'s Zipf
    head at ``--cache-coverage`` (None log or coverage 0 = admit all)."""
    from repro.serve.pipeline import EngineConfig

    admission = None
    if args.cache_size > 0 and log is not None and args.cache_coverage > 0:
        from repro.datasets.querylog import zipf_head

        admission = zipf_head(log, args.cache_coverage).__contains__
    return EngineConfig(result_cache_size=args.cache_size,
                        cache_admission=admission)


def _server_config(args):
    """A :class:`~repro.serve.server.ServerConfig` from CLI options
    (commands without ``--host``/``--port`` bind ephemeral loopback)."""
    from repro.serve.server import ServerConfig

    return ServerConfig(
        host=getattr(args, "host", "127.0.0.1"),
        port=getattr(args, "port", 0),
        window=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        queue_limit=args.queue_limit,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
    )


def _session_log(args, db, n_sessions: int):
    """The deterministic session workload (and its aggregate log) the
    serving commands share — the same seed feeds both the cache
    admission head and the loadtest traffic, so the head describes the
    traffic that will actually arrive."""
    from repro.datasets.querylog import SessionLogGenerator

    generator = SessionLogGenerator(db, seed=args.seed + 3)
    sessions = generator.generate(n_sessions)
    return sessions, generator.as_query_log(sessions)


def _worker_pool(args, directory: str):
    """A :class:`~repro.serve.workers.WorkerPool` mirroring the serving
    CLI's engine configuration — each worker rebuilds the same engine
    the front end would have run in-process, over the same saved
    directory."""
    from repro.serve.workers import WorkerPool, WorkerSpec

    spec = WorkerSpec(
        directory=str(directory), scale=args.scale, seed=args.seed,
        flavor=args.flavor, shards=args.shards,
        parallelism=args.shard_mode, strategy=args.strategy,
        cache_size=args.cache_size, cache_coverage=args.cache_coverage,
        sessions=getattr(args, "sessions", 400))
    return WorkerPool(spec, workers=args.workers)


def _command_serve(args) -> int:
    import asyncio

    db = generate_imdb(scale=args.scale, seed=args.seed)
    log = None
    if args.cache_size > 0 and args.cache_coverage > 0:
        _sessions, log = _session_log(args, db, 400)
    config = _engine_config(args, log)
    if args.directory:
        engine = QunitSearchEngine.load(
            db, args.directory, flavor=args.flavor, shards=args.shards,
            parallelism=args.shard_mode, strategy=args.strategy,
            config=config)
    else:
        definitions = _definitions_for(args, db, args.flavor)
        engine = QunitSearchEngine(
            QunitCollection(db, definitions,
                            max_instances_per_definition=150,
                            shards=args.shards,
                            parallelism=args.shard_mode,
                            strategy=args.strategy),
            flavor=args.flavor, config=config)
    workers = None
    if args.workers > 0:
        if not args.directory:
            print("repro serve: --workers requires a saved collection "
                  "directory (run `repro save DIR` first — workers mmap "
                  "the saved snapshots)", file=sys.stderr)
            return 2
        workers = _worker_pool(args, args.directory)
    try:
        asyncio.run(_serve_forever(engine, _server_config(args), workers))
    except KeyboardInterrupt:
        print("\nshutting down (draining in-flight batches)")
    return 0


async def _serve_forever(engine, server_config, workers=None) -> None:
    import asyncio

    from repro.serve.server import SearchServer

    async with SearchServer(engine, server_config,
                            workers=workers) as server:
        host, port = server.address
        print(f"serving on http://{host}:{port}  (Ctrl-C to stop)")
        if workers is not None:
            print(f"  {workers.workers} prefork pipeline worker(s) over "
                  f"shared mmap snapshots")
        print("  POST /search  POST /search/batch  "
              "GET /healthz  GET /stats")
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass


async def _run_loadtest(engine, server_config, workload, limit,
                        workers=None, arrival_rate=None, seed=0):
    """One arm of the loadtest: server up, load run, server down.

    The client fleet runs in a child process so the server keeps its
    event loop (and the GIL) to itself — the same isolation the serving
    benchmark uses."""
    from repro.serve.client import run_load_in_process
    from repro.serve.server import SearchServer

    async with SearchServer(engine, server_config,
                            workers=workers) as server:
        host, port = server.address
        return await run_load_in_process(
            host, port, workload, limit=limit,
            arrival_rate=arrival_rate, seed=seed)


def _print_load_report(label: str, report) -> None:
    print(f"{label:10s} qps={report.qps:8.1f}  p50={report.p50_ms:7.2f}ms  "
          f"p99={report.p99_ms:7.2f}ms  "
          f"cache_hit_rate={report.cache_hit_rate:.3f}  "
          f"completed={report.completed}  rejected={report.rejected}  "
          f"errors={report.errors}")
    if report.dropped or report.timed_out:
        offered = (report.completed + report.dropped + report.timed_out
                   + report.errors)
        print(f"{'':10s} open-loop: dropped={report.dropped} "
              f"({report.dropped / offered:.1%})  "
              f"timed_out={report.timed_out} "
              f"({report.timed_out / offered:.1%}) of {offered} offered")


def _command_loadtest(args) -> int:
    import asyncio
    import json
    from dataclasses import replace as dc_replace

    from repro.serve.client import build_session_workload

    db = generate_imdb(scale=args.scale, seed=args.seed)
    sessions, log = _session_log(args, db, args.sessions)
    workload = build_session_workload(sessions, args.clients)
    total = sum(len(stream) for stream in workload)
    print(f"workload: {len(sessions)} sessions -> {len(workload)} "
          f"clients, {total} requests")
    definitions = _definitions_for(args, db, args.flavor)
    # Both arms share one collection (indexes and materializations warm
    # once) but get a fresh engine, hence a fresh result cache, each.
    collection = QunitCollection(
        db, definitions, max_instances_per_definition=150,
        shards=args.shards, parallelism=args.shard_mode,
        strategy=args.strategy)
    engine_config = _engine_config(args, log)
    server_config = _server_config(args)
    worker_dir = None
    if args.workers > 0:
        # Workers serve from disk: persist the derived collection once
        # and let every worker (and every arm's fresh pool) mmap it.
        import tempfile

        from repro.core.store import CollectionStore

        worker_dir = tempfile.mkdtemp(prefix="repro-loadtest-workers-")
        CollectionStore(worker_dir).save(collection)
        print(f"workers: {args.workers} prefork process(es) over "
              f"{worker_dir}")

    def run_arm(config):
        engine = QunitSearchEngine(collection, flavor=args.flavor,
                                   config=engine_config)
        workers = (_worker_pool(args, worker_dir)
                   if worker_dir is not None else None)
        return asyncio.run(_run_loadtest(
            engine, config, workload, args.limit, workers=workers,
            arrival_rate=args.arrival_rate, seed=args.seed))

    # Warm the shared substrate (searcher pool, indexes, lazy
    # materializations) through a throwaway engine before either arm,
    # so neither pays one-time build costs and the arms measure steady
    # state.  The probe engine's result cache is its own, so each arm
    # still starts cache-cold.
    from repro.serve.api import SearchRequest

    probe = QunitSearchEngine(collection, flavor=args.flavor)
    warm = [SearchRequest(query=query, limit=args.limit)
            for query in sorted({q for s in sessions for q in s.queries})]
    for _ in range(2):
        probe.execute(warm)

    try:
        batched = run_arm(server_config)
        _print_load_report("batched", batched)
        report = {"batched": batched.to_dict(),
                  "repetition_rate": round(batched.repetition_rate, 4)}
        if args.compare_unbatched:
            unbatched = run_arm(dc_replace(server_config, window=0.0,
                                           max_batch=1))
            _print_load_report("unbatched", unbatched)
            speedup = (batched.qps / unbatched.qps
                       if unbatched.qps > 0 else float("inf"))
            print(f"speedup (batched qps / unbatched qps): {speedup:.2f}x")
            report["unbatched"] = unbatched.to_dict()
            report["speedup_batched_qps"] = round(speedup, 3)
    finally:
        if worker_dir is not None:
            import shutil

            shutil.rmtree(worker_dir, ignore_errors=True)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.output}")
    failures = []
    if args.assert_min_qps is not None and batched.qps < args.assert_min_qps:
        failures.append(f"batched qps {batched.qps:.1f} < required "
                        f"{args.assert_min_qps}")
    if args.assert_p99_ms is not None and batched.p99_ms > args.assert_p99_ms:
        failures.append(f"batched p99 {batched.p99_ms:.1f}ms > allowed "
                        f"{args.assert_p99_ms}ms")
    if batched.errors:
        failures.append(f"{batched.errors} request(s) failed hard")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


_COMMANDS = {
    "search": _command_search,
    "save": _command_save,
    "compact": _command_compact,
    "migrate": _command_migrate,
    "bench-diff": _command_bench_diff,
    "load": _command_load,
    "derive": _command_derive,
    "loganalysis": _command_loganalysis,
    "evaluate": _command_evaluate,
    "serve": _command_serve,
    "loadtest": _command_loadtest,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

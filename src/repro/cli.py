"""Command-line interface.

::

    python -m repro search "star wars cast" [more queries ...] [--scale 0.3]
                    [--flavor expert]
    python -m repro derive --strategy schema_data [--k1 4 --k2 3]
    python -m repro loganalysis [--unique 400]
    python -m repro evaluate [--queries 25] [--raters 20]

Everything runs on the synthetic database (deterministic for a given
``--seed``), so the CLI doubles as a zero-setup demo of the system.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import QunitCollection, UtilityModel
from repro.core.derivation import (
    ExternalEvidenceDeriver,
    QueryLogDeriver,
    SchemaDataDeriver,
    imdb_expert_qunits,
)
from repro.core.search import QunitSearchEngine
from repro.datasets.evidence import generate_wiki_corpus
from repro.datasets.imdb import generate_imdb
from repro.datasets.querylog import QueryLogAnalyzer, QueryLogGenerator
from repro.eval.figures import render_sec52_statistics

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Qunits (CIDR 2009) reproduction — search demo CLI",
    )
    parser.add_argument("--scale", type=float, default=0.3,
                        help="synthetic database scale (default 0.3)")
    parser.add_argument("--seed", type=int, default=7,
                        help="generator seed (default 7)")
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser("search", help="run keyword queries")
    search.add_argument("query")
    search.add_argument("more_queries", nargs="*", metavar="query",
                        help="additional queries, answered as one batch "
                             "over the engine's shared caches (see also "
                             "QunitSearchEngine.search_many)")
    search.add_argument("--flavor", default="expert",
                        choices=["expert", "schema_data", "query_log",
                                 "external", "forms"])
    search.add_argument("--limit", type=int, default=3)

    derive = commands.add_parser("derive", help="derive qunit definitions")
    derive.add_argument("--strategy", default="schema_data",
                        choices=["expert", "schema_data", "query_log",
                                 "external", "forms"])
    derive.add_argument("--k1", type=int, default=4)
    derive.add_argument("--k2", type=int, default=3)

    log_analysis = commands.add_parser(
        "loganalysis", help="generate + analyze the synthetic query log")
    log_analysis.add_argument("--unique", type=int, default=0,
                              help="distinct queries (0 = recommended)")

    evaluate = commands.add_parser(
        "evaluate", help="run the Figure 3 result-quality experiment")
    evaluate.add_argument("--queries", type=int, default=25)
    evaluate.add_argument("--raters", type=int, default=20)
    return parser


def _definitions_for(args, db, strategy: str):
    if strategy == "expert":
        return imdb_expert_qunits()
    if strategy == "schema_data":
        k1 = getattr(args, "k1", 4)
        k2 = getattr(args, "k2", 3)
        return SchemaDataDeriver(db, k1=k1, k2=k2).derive()
    if strategy == "forms":
        from repro.core.derivation import FormBasedDeriver

        return FormBasedDeriver(db).derive()
    if strategy == "query_log":
        generator = QueryLogGenerator(db, seed=args.seed + 1)
        log = generator.generate(generator.recommended_unique())
        return QueryLogDeriver(db).derive(log.as_list())
    pages = generate_wiki_corpus(db, seed=args.seed + 2)
    return ExternalEvidenceDeriver(db).derive(pages)


def _command_search(args) -> int:
    db = generate_imdb(scale=args.scale, seed=args.seed)
    definitions = _definitions_for(args, db, args.flavor)
    engine = QunitSearchEngine(
        QunitCollection(db, definitions, max_instances_per_definition=150),
        flavor=args.flavor,
    )
    queries = [args.query, *args.more_queries]
    from repro.core.search import SnippetExtractor

    extractor = SnippetExtractor(window=24)
    any_answers = False
    for i, query in enumerate(queries):
        if i:
            print()
        answers, explanation = engine.search_with_explanation(
            query, limit=args.limit)
        print(f"query   : {query}")
        print(f"template: {explanation.template}  ({explanation.query_class})")
        if not answers:
            print("no answers.")
            continue
        any_answers = True
        for rank, answer in enumerate(answers, start=1):
            print(f"\n#{rank}  [{answer.meta('definition')}]  "
                  f"score={answer.score:.3f}")
            print("   " + extractor.snippet(answer.text, query))
    return 0 if any_answers else 1


def _command_derive(args) -> int:
    db = generate_imdb(scale=args.scale, seed=args.seed)
    definitions = _definitions_for(args, db, args.strategy)
    utility = UtilityModel(db)
    for definition in utility.assign(definitions):
        binder = (f"{definition.binders[0].table}.{definition.binders[0].column}"
                  if definition.binders else "-")
        print(f"{definition.utility:.3f}  {definition.name:44s} "
              f"anchor={binder}")
        print(f"       {definition.base_sql[:100]}")
    return 0


def _command_loganalysis(args) -> int:
    db = generate_imdb(scale=args.scale, seed=args.seed)
    generator = QueryLogGenerator(db, seed=args.seed + 1)
    unique = args.unique or generator.recommended_unique()
    log = generator.generate(unique)
    analyzer = QueryLogAnalyzer(db)
    print(render_sec52_statistics(analyzer.statistics(log)))
    print("\ntop templates:")
    frequencies = analyzer.template_frequencies(log)
    for template, volume in sorted(frequencies.items(),
                                   key=lambda kv: -kv[1])[:10]:
        print(f"  {volume:5d}  {template}")
    return 0


def _command_evaluate(args) -> int:
    from repro.eval.harness import ResultQualityExperiment

    experiment = ResultQualityExperiment(
        scale=args.scale, seed=args.seed,
        n_raters=args.raters, n_queries=args.queries,
    )
    report = experiment.run()
    print(report.render())
    return 0


_COMMANDS = {
    "search": _command_search,
    "derive": _command_derive,
    "loganalysis": _command_loganalysis,
    "evaluate": _command_evaluate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Synthetic datasets substituting for the paper's proprietary resources.

* ``repro.datasets.imdb`` — the movie database (stand-in for the IMDbPy
  conversion of imdb.com used in the paper);
* ``repro.datasets.querylog`` — the web-search query log (stand-in for the
  AOL log of Pass et al. [26]);
* ``repro.datasets.evidence`` — wiki-like external-evidence pages (stand-in
  for Wikipedia).

Every generator is deterministic given a seed, and every distribution knob
is calibrated to the statistics the paper itself reports (see DESIGN.md,
"Substitutions").
"""

from repro.datasets.imdb import generate_imdb, imdb_schema, simplified_schema

__all__ = ["generate_imdb", "imdb_schema", "simplified_schema"]

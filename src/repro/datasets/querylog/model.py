"""Query-log container.

The paper's base log is "all query strings ... aggregated to combine all
identities into a single anonymous crowd", keeping only queries that led to
an imdb.com navigation — i.e. a frequency-annotated bag of distinct query
strings.  That is exactly what :class:`QueryLog` stores.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QueryLog"]


@dataclass(frozen=True)
class QueryLog:
    """An aggregated query log: distinct queries with their frequencies."""

    entries: tuple[tuple[str, int], ...]
    n_users: int = 0
    name: str = "querylog"

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for query, frequency in self.entries:
            if frequency <= 0:
                raise ValueError(
                    f"query {query!r} has non-positive frequency {frequency}"
                )
            if query in seen:
                raise ValueError(f"duplicate query string {query!r} in log")
            seen.add(query)

    @property
    def total_queries(self) -> int:
        """Total query volume (sum of frequencies)."""
        return sum(frequency for _query, frequency in self.entries)

    @property
    def unique_queries(self) -> int:
        return len(self.entries)

    def top(self, n: int) -> list[tuple[str, int]]:
        """The n most frequent queries (ties by string for determinism)."""
        ranked = sorted(self.entries, key=lambda entry: (-entry[1], entry[0]))
        return ranked[:n]

    def as_list(self) -> list[tuple[str, int]]:
        return list(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

"""Synthetic query-log generator calibrated to the paper's Sec. 5.2.

The paper reports, for the imdb-bound slice of a real web log:

* 98,549 total / 46,901 unique queries (ratio ≈ 2.1);
* ~93% of unique queries contain movie-related terms;
* ≥36% single-entity, 20% entity-attribute, ~2% multi-entity, <2% complex.

The generator draws distinct query strings from a class mix tuned so the
*analyzer's measured* distribution lands on those targets (e.g. partial
names also resolve to single-entity), then assigns Zipfian frequencies.
Entity popularity is vote/cast-count weighted so frequent queries concern
popular movies and people, as in a real log.
"""

from __future__ import annotations

from repro.datasets.querylog.model import QueryLog
from repro.errors import DatasetError
from repro.relational.database import Database
from repro.utils.rng import DeterministicRng, zipf_weights
from repro.utils.text import normalize

__all__ = ["QueryLogGenerator", "generate_query_log"]


def generate_query_log(database: Database, unique_queries: int = 2000,
                       seed: int = 11) -> QueryLog:
    """Convenience wrapper around :class:`QueryLogGenerator`."""
    return QueryLogGenerator(database, seed=seed).generate(unique_queries)


class QueryLogGenerator:
    """Deterministic log generator for one database."""

    # Mix of *generated* classes (measured classes differ slightly: partial
    # entities classify as single-entity, misspellings as free text).
    CLASS_MIX = (
        ("single_entity", 0.33),
        ("partial_entity", 0.04),
        ("entity_attribute", 0.21),
        ("multi_entity", 0.02),
        ("complex", 0.015),
        ("entity_freetext", 0.115),
        ("attribute_only", 0.05),
        ("misspelled", 0.08),
        ("navigational", 0.04),
        ("nonmovie", 0.07),
    )

    MOVIE_ATTRIBUTES = (
        ("cast", 0.22), ("plot", 0.10), ("soundtrack", 0.06), ("ost", 0.03),
        ("box office", 0.08), ("awards", 0.07), ("trivia", 0.05),
        ("quotes", 0.05), ("year", 0.07), ("posters", 0.06),
        ("locations", 0.05), ("rating", 0.04), ("review", 0.05),
        ("dvd", 0.04), ("trailer", 0.03),
    )

    PERSON_ATTRIBUTES = (
        ("movies", 0.38), ("filmography", 0.08), ("awards", 0.09),
        ("biography", 0.08), ("photos", 0.09), ("actor", 0.08),
        ("age", 0.06), ("news", 0.07), ("interview", 0.07),
    )

    FREE_WORDS = (
        "review", "gossip", "news", "pictures", "wallpaper", "download",
        "watch", "online", "dvd", "release", "date", "trailer", "songs",
        "wiki", "imdb",
    )

    COMPLEX_QUERIES = (
        "highest box office revenue",
        "best comedy movies",
        "top rated movies",
        "most awarded actor",
        "best movies 2000",
        "highest grossing movie",
        "top action movies",
        "best actress oscar",
    )

    NAVIGATIONAL = ("imdb", "imdb movies", "internet movie database",
                    "imdb search", "www imdb com")

    NONMOVIE = (
        "weather forecast", "cheap flights", "pizza near me", "used cars",
        "stock quotes", "lyrics", "real estate listings", "dictionary",
        "maps directions", "horoscope today", "recipe chicken",
        "football scores", "tax forms", "zip codes",
    )

    def __init__(self, database: Database, seed: int = 11,
                 total_to_unique_ratio: float = 2.1,
                 zipf_exponent: float = 0.85,
                 n_users: int = 650_000):
        if total_to_unique_ratio < 1.0:
            raise DatasetError("total/unique ratio must be >= 1")
        self.database = database
        self.rng = DeterministicRng(seed)
        self.ratio = total_to_unique_ratio
        self.zipf_exponent = zipf_exponent
        self.n_users = n_users
        self._movies = self._weighted_movies()
        self._persons = self._weighted_persons()
        self._genres = [str(row["name"]) for row in database.table("genre")]

    # -- entity pools ----------------------------------------------------------------

    def _weighted_movies(self) -> tuple[list[str], list[float]]:
        titles: list[str] = []
        weights: list[float] = []
        for row in self.database.table("movie"):
            titles.append(str(row["title"]))
            votes = row["votes"] if isinstance(row["votes"], int) else 1
            weights.append(float(max(1, votes)))
        if not titles:
            raise DatasetError("database has no movies to query about")
        return titles, weights

    def _weighted_persons(self) -> tuple[list[str], list[float]]:
        counts: dict[int, int] = {}
        for row in self.database.table("cast"):
            person_id = row["person_id"]
            assert isinstance(person_id, int)
            counts[person_id] = counts.get(person_id, 0) + 1
        names: list[str] = []
        weights: list[float] = []
        for row in self.database.table("person"):
            person_id = row["id"]
            assert isinstance(person_id, int)
            names.append(str(row["name"]))
            weights.append(1.0 + 3.0 * counts.get(person_id, 0))
        if not names:
            raise DatasetError("database has no persons to query about")
        return names, weights

    # -- generation -------------------------------------------------------------------

    def recommended_unique(self, target_single_fraction: float = 0.36) -> int:
        """Largest distinct-query count for which the single-entity class
        can still reach ``target_single_fraction`` of the log (the entity
        name space is the binding constraint at small database scales)."""
        n_entities = len(self._movies[0]) + len(self._persons[0])
        return max(50, int(n_entities / target_single_fraction))

    def generate(self, unique_queries: int = 2000) -> QueryLog:
        if unique_queries <= 0:
            raise DatasetError("need a positive number of unique queries")
        rng = self.rng.fork("queries")

        # Per-class quotas (largest-remainder rounding to hit the total).
        quotas = self._quotas(unique_queries)
        queries: dict[str, str] = {}  # normalized query -> class

        # Identity classes first, sampled without replacement so small
        # databases fill their quota instead of colliding away.
        self._fill_singles(queries, quotas.pop("single_entity"), rng)
        self._fill_partials(queries, quotas.pop("partial_entity"), rng)

        # Combinatorial classes by rejection, with a spill-over order so the
        # total is exact even when a class's space is exhausted.
        deficit = 0
        for query_class, quota in quotas.items():
            produced = self._fill_by_rejection(queries, query_class, quota, rng)
            deficit += quota - produced
        deficit += unique_queries - len(queries) - deficit  # identity shortfall
        if deficit > 0:
            spilled = self._fill_by_rejection(queries, "entity_freetext",
                                              deficit, rng)
            if spilled < deficit:
                raise DatasetError(
                    "could not generate enough distinct queries; "
                    "increase database scale or lower unique_queries"
                )

        entries = self._assign_frequencies(queries, unique_queries, rng)
        return QueryLog(entries=tuple(entries), n_users=self.n_users,
                        name=f"synth-log-{len(entries)}")

    def _quotas(self, unique_queries: int) -> dict[str, int]:
        raw = [(name, weight * unique_queries) for name, weight in self.CLASS_MIX]
        quotas = {name: int(value) for name, value in raw}
        remainder = unique_queries - sum(quotas.values())
        by_fraction = sorted(raw, key=lambda item: -(item[1] - int(item[1])))
        for name, _value in by_fraction[:remainder]:
            quotas[name] += 1
        return quotas

    def _fill_singles(self, queries: dict[str, str], quota: int,
                      rng: DeterministicRng) -> None:
        titles, title_weights = self._movies
        names, name_weights = self._persons
        pool = list(titles) + list(names)
        weights = list(title_weights) + list(name_weights)
        k = min(quota, len(pool))
        for entity in rng.weighted_sample(pool, weights, k):
            queries.setdefault(normalize(entity), "single_entity")

    def _fill_partials(self, queries: dict[str, str], quota: int,
                       rng: DeterministicRng) -> None:
        produced = 0
        for _attempt in range(quota * 30):
            if produced >= quota:
                break
            query = normalize(self._partial_entity(rng))
            if query and query not in queries:
                queries[query] = "partial_entity"
                produced += 1

    def _fill_by_rejection(self, queries: dict[str, str], query_class: str,
                           quota: int, rng: DeterministicRng) -> int:
        produced = 0
        for _attempt in range(max(1, quota) * 40):
            if produced >= quota:
                break
            query = normalize(self._generate_one(query_class, rng))
            if query and query not in queries:
                queries[query] = query_class
                produced += 1
        return produced

    def _assign_frequencies(self, queries: dict[str, str], unique_queries: int,
                            rng: DeterministicRng) -> list[tuple[str, int]]:
        """Zipf frequencies, popularity-first: the head of the distribution
        is single-entity and entity-attribute queries about popular things,
        as in a real log; the tail is noise."""
        prior_by_class = {
            "single_entity": 3.0,
            "entity_attribute": 2.0,
            "partial_entity": 1.2,
            "navigational": 2.5,
            "multi_entity": 0.8,
            "entity_freetext": 0.7,
            "attribute_only": 0.9,
            "complex": 0.6,
            "misspelled": 0.3,
            "nonmovie": 0.4,
        }
        scored = []
        for query, query_class in queries.items():
            prior = prior_by_class.get(query_class, 0.5)
            scored.append((prior * rng.uniform(0.5, 1.5), query))
        scored.sort(key=lambda item: (-item[0], item[1]))

        weights = zipf_weights(len(scored), self.zipf_exponent)
        total_target = int(round(unique_queries * self.ratio))
        extra = max(0, total_target - len(scored))
        entries = []
        for (_prior, query), weight in zip(scored, weights):
            entries.append((query, 1 + int(round(weight * extra))))
        return entries

    # -- per-class builders ------------------------------------------------------------

    def _generate_one(self, query_class: str, rng: DeterministicRng) -> str:
        if query_class == "single_entity":
            return self._entity(rng)
        if query_class == "partial_entity":
            return self._partial_entity(rng)
        if query_class == "entity_attribute":
            return self._entity_attribute(rng)
        if query_class == "multi_entity":
            return self._multi_entity(rng)
        if query_class == "complex":
            return rng.choice(self.COMPLEX_QUERIES)
        if query_class == "entity_freetext":
            return f"{self._entity(rng)} {rng.choice(self.FREE_WORDS)}"
        if query_class == "attribute_only":
            genre = rng.choice(self._genres) if self._genres else "drama"
            return rng.choice([f"{genre} movies", "new movies", "movie reviews",
                               f"{genre} films"])
        if query_class == "misspelled":
            return self._misspell(self._entity(rng), rng)
        if query_class == "navigational":
            return rng.choice(self.NAVIGATIONAL)
        if query_class == "nonmovie":
            return rng.choice(self.NONMOVIE)
        raise DatasetError(f"unknown query class {query_class!r}")

    def _entity(self, rng: DeterministicRng) -> str:
        if rng.coin(0.55):
            titles, weights = self._movies
            return rng.weighted_choice(titles, weights)
        names, weights = self._persons
        return rng.weighted_choice(names, weights)

    def _partial_entity(self, rng: DeterministicRng) -> str:
        entity = self._entity(rng)
        tokens = normalize(entity).split()
        content = [token for token in tokens if len(token) >= 3]
        if not content:
            return entity
        return content[-1]  # last name / head noun

    def _entity_attribute(self, rng: DeterministicRng) -> str:
        if rng.coin(0.6):
            titles, weights = self._movies
            entity = rng.weighted_choice(titles, weights)
            attrs = self.MOVIE_ATTRIBUTES
        else:
            names, weights = self._persons
            entity = rng.weighted_choice(names, weights)
            attrs = self.PERSON_ATTRIBUTES
        attribute = rng.weighted_choice(
            [a for a, _w in attrs], [w for _a, w in attrs]
        )
        return f"{entity} {attribute}"

    def _multi_entity(self, rng: DeterministicRng) -> str:
        names, person_weights = self._persons
        titles, movie_weights = self._movies
        person = rng.weighted_choice(names, person_weights)
        title = rng.weighted_choice(titles, movie_weights)
        return f"{person} {title}"

    @staticmethod
    def _misspell(text: str, rng: DeterministicRng) -> str:
        letters = list(text)
        positions = [i for i, ch in enumerate(letters) if ch.isalpha()]
        if not positions:
            return text
        index = rng.choice(positions)
        action = rng.choice(["drop", "double", "swap"])
        if action == "drop":
            del letters[index]
        elif action == "double":
            letters.insert(index, letters[index])
        elif index + 1 < len(letters):
            letters[index], letters[index + 1] = letters[index + 1], letters[index]
        return "".join(letters)

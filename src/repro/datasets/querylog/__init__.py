"""Synthetic web-search query log (AOL-log stand-in) and its analysis."""

from repro.datasets.querylog.analysis import (
    BenchmarkQuery,
    LogStatistics,
    QueryLogAnalyzer,
    client_repetition_rates,
    zipf_head,
)
from repro.datasets.querylog.generator import QueryLogGenerator, generate_query_log
from repro.datasets.querylog.model import QueryLog
from repro.datasets.querylog.sessions import (
    QuerySession,
    RefinementStatistics,
    SessionAnalyzer,
    SessionLogGenerator,
)

__all__ = [
    "QueryLog",
    "QueryLogGenerator",
    "generate_query_log",
    "QueryLogAnalyzer",
    "LogStatistics",
    "BenchmarkQuery",
    "QuerySession",
    "SessionLogGenerator",
    "SessionAnalyzer",
    "RefinementStatistics",
    "zipf_head",
    "client_repetition_rates",
]

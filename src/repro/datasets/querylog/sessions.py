"""Session-structured query log: users refining their queries.

The paper grounds its underspecification claim in "prior work in the area
of search query log analysis [19, 29]" (Lau & Horvitz on refinement
patterns; Song et al. on ambiguous queries).  This module supplies the
session-level view that aggregate (query, frequency) logs lose:

* :class:`SessionLogGenerator` produces user sessions where a share of
  users start underspecified (a bare entity) and then *specialize* — add
  an attribute word — or *reformulate* — fix a misspelling;
* :class:`SessionAnalyzer` measures the refinement statistics the rollup
  derivation's premise rests on, and distills per-anchor specialization
  weights — the empirical counterpart of Sec. 4.2's "the qunit definition
  for an under-specified query is an aggregation of the qunit definitions
  of its specializations".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.search.segmentation import QuerySegmenter, SchemaVocabulary
from repro.datasets.querylog.generator import QueryLogGenerator
from repro.datasets.querylog.model import QueryLog
from repro.errors import DatasetError
from repro.relational.database import Database
from repro.utils.rng import DeterministicRng
from repro.utils.text import normalize

__all__ = ["QuerySession", "SessionLogGenerator", "SessionAnalyzer",
           "RefinementStatistics"]


@dataclass(frozen=True)
class QuerySession:
    """One user's consecutive queries."""

    user_id: int
    queries: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.queries:
            raise DatasetError("a session needs at least one query")

    @property
    def is_multi_query(self) -> bool:
        return len(self.queries) > 1


@dataclass(frozen=True)
class RefinementStatistics:
    """Session-level measurements."""

    n_sessions: int
    multi_query_fraction: float
    refinement_fraction: float       # of multi-query sessions
    started_underspecified_fraction: float  # of refining sessions
    specializations: tuple[tuple[str, int], ...]  # attribute -> count

    def top_specializations(self, n: int = 5) -> list[tuple[str, int]]:
        return list(self.specializations[:n])


class SessionLogGenerator:
    """Generates user sessions on top of the aggregate log machinery."""

    SESSION_MIX = (
        ("single", 0.60),        # one query, done
        ("specialize", 0.25),    # bare entity -> entity + attribute(s)
        ("reformulate", 0.15),   # misspelled -> corrected
    )

    def __init__(self, database: Database, seed: int = 17):
        self.database = database
        self.rng = DeterministicRng(seed)
        # Reuse the aggregate generator's entity pools and attribute mixes.
        self._base = QueryLogGenerator(database, seed=seed)

    def generate(self, n_sessions: int = 500) -> list[QuerySession]:
        if n_sessions <= 0:
            raise DatasetError("need a positive session count")
        rng = self.rng.fork("sessions")
        kinds = [kind for kind, _weight in self.SESSION_MIX]
        weights = [weight for _kind, weight in self.SESSION_MIX]
        sessions = []
        for user_id in range(1, n_sessions + 1):
            kind = rng.weighted_choice(kinds, weights)
            sessions.append(QuerySession(
                user_id=user_id,
                queries=tuple(self._queries_for(kind, rng)),
            ))
        return sessions

    def _queries_for(self, kind: str, rng: DeterministicRng) -> list[str]:
        if kind == "single":
            return [normalize(self._base._generate_one(
                rng.choice(["single_entity", "entity_attribute",
                            "entity_freetext"]), rng))]
        if kind == "specialize":
            entity = self._base._entity(rng)
            queries = [normalize(entity)]
            if any(entity == title for title in self._base._movies[0]):
                attrs = self._base.MOVIE_ATTRIBUTES
            else:
                attrs = self._base.PERSON_ATTRIBUTES
            steps = 1 + int(rng.coin(0.3))
            chosen = rng.weighted_sample([a for a, _w in attrs],
                                         [w for _a, w in attrs],
                                         min(steps, len(attrs)))
            for attribute in chosen:
                queries.append(normalize(f"{entity} {attribute}"))
            return queries
        # reformulate
        entity = self._base._entity(rng)
        return [normalize(self._base._misspell(entity, rng)),
                normalize(entity)]

    def as_query_log(self, sessions: list[QuerySession]) -> QueryLog:
        """Flatten sessions into the aggregate (query, frequency) form."""
        counts: Counter = Counter()
        for session in sessions:
            counts.update(session.queries)
        entries = tuple(sorted(counts.items()))
        return QueryLog(entries=entries, n_users=len(sessions),
                        name=f"session-log-{len(sessions)}")


class SessionAnalyzer:
    """Measures refinement behavior against one database."""

    def __init__(self, database: Database,
                 vocabulary: SchemaVocabulary | None = None):
        self.database = database
        self.segmenter = QuerySegmenter(database, vocabulary)

    def statistics(self, sessions: list[QuerySession]) -> RefinementStatistics:
        if not sessions:
            raise DatasetError("cannot analyze zero sessions")
        multi = [s for s in sessions if s.is_multi_query]
        refining = 0
        started_under = 0
        specializations: Counter = Counter()
        for session in multi:
            segmented = [self.segmenter.segment(q) for q in session.queries]
            refined = False
            for earlier, later in zip(segmented, segmented[1:]):
                if self._is_specialization(earlier, later):
                    refined = True
                    for segment in later.attributes():
                        ref = segment.attribute
                        if ref is not None:
                            specializations[ref.name] += 1
            if refined:
                refining += 1
                if segmented[0].is_underspecified:
                    started_under += 1
        return RefinementStatistics(
            n_sessions=len(sessions),
            multi_query_fraction=len(multi) / len(sessions),
            refinement_fraction=refining / len(multi) if multi else 0.0,
            started_underspecified_fraction=(
                started_under / refining if refining else 0.0
            ),
            specializations=tuple(specializations.most_common()),
        )

    def _is_specialization(self, earlier, later) -> bool:
        """Later query keeps the entity and adds schema signals."""
        earlier_entities = {
            (segment.table, normalize(str(segment.value)))
            for segment in earlier.instance_entities()
        }
        later_entities = {
            (segment.table, normalize(str(segment.value)))
            for segment in later.instance_entities()
        }
        if not earlier_entities or not (earlier_entities & later_entities):
            return False
        earlier_signals = len(earlier.attributes()) + len(earlier.dimension_entities())
        later_signals = len(later.attributes()) + len(later.dimension_entities())
        return later_signals > earlier_signals

    def rollup_weights(self, sessions: list[QuerySession],
                       ) -> dict[str, Counter]:
        """Per-anchor-table specialization weights — empirical support for
        the Sec. 4.2 rollup ordering ("movie.name and cast.role, in that
        order")."""
        weights: dict[str, Counter] = {}
        for session in sessions:
            if not session.is_multi_query:
                continue
            segmented = [self.segmenter.segment(q) for q in session.queries]
            for earlier, later in zip(segmented, segmented[1:]):
                if not self._is_specialization(earlier, later):
                    continue
                for entity in later.instance_entities():
                    assert entity.table is not None
                    counter = weights.setdefault(entity.table, Counter())
                    for segment in later.attributes():
                        ref = segment.attribute
                        if ref is not None and ref.table is not None:
                            counter[ref.name] += 1
        return weights

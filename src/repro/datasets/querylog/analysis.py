"""Query-log analysis: the measurements of Sec. 5.2.

Reproduces the paper's pipeline over the (synthetic) base log:

* tokens are replaced by schema types "by looking for the largest possible
  string overlaps with entities in the database" — our segmenter;
* queries classify into single-entity / entity-attribute / multi-entity /
  complex / other;
* the benchmark workload picks the top-14 typed templates by frequency and
  samples two queries per template (the paper's 28-query workload).

Beyond the paper's own measurements, two serving-side statistics feed
the HTTP front end's cache admission policy (:mod:`repro.serve.server`):
:func:`zipf_head` — the smallest set of most-frequent queries covering a
volume fraction of the log (the queries repetition makes worth caching)
— and :func:`client_repetition_rates` — per-client repeat fractions
measured the way workload-repetition studies define them (a query's
first occurrence for a client is not a repetition; every later
occurrence is).  Both work on plain log data with no database attached.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.search.segmentation import QuerySegmenter, SchemaVocabulary
from repro.datasets.querylog.model import QueryLog
from repro.errors import EvaluationError
from repro.relational.database import Database
from repro.utils.rng import DeterministicRng

__all__ = ["LogStatistics", "BenchmarkQuery", "QueryLogAnalyzer",
           "zipf_head", "client_repetition_rates"]


def zipf_head(log: QueryLog, coverage: float = 0.5) -> frozenset[str]:
    """The smallest set of most-frequent queries covering ``coverage``
    of the log's total volume.

    Under the Zipf-shaped traffic real query logs exhibit, a small head
    of distinct queries carries most of the volume; those are the only
    queries whose results repay a result-cache slot (a tail query, by
    definition, rarely repeats before eviction).  The serving front end
    wires the returned set into :class:`~repro.serve.pipeline.
    EngineConfig` as the result cache's store-side admission policy:
    ``EngineConfig(cache_admission=zipf_head(log).__contains__, ...)``.

    Ties at the coverage boundary are broken by frequency, then query
    string, so the head is deterministic for a given log.

    Args:
        log: the aggregate (query, frequency) log.
        coverage: the volume fraction the head must reach, in (0, 1].

    Returns:
        The head queries, as a frozenset (O(1) admission checks).

    Raises:
        EvaluationError: on an empty log or a coverage outside (0, 1].
    """
    if not 0.0 < coverage <= 1.0:
        raise EvaluationError(
            f"coverage must be in (0, 1], got {coverage}")
    if not len(log):
        raise EvaluationError("cannot take the head of an empty query log")
    target = coverage * log.total_queries
    head: set[str] = set()
    covered = 0
    for query, frequency in sorted(log,
                                   key=lambda item: (-item[1], item[0])):
        head.add(query)
        covered += frequency
        if covered >= target:
            break
    return frozenset(head)


def client_repetition_rates(
        stream: Iterable[tuple[str, str]]) -> dict[str, float]:
    """Per-client query repetition rates over a request stream.

    Follows the standard workload-repetition definition: within one
    client's request sequence, a query's *first* occurrence is not a
    repetition and every later occurrence is, so the rate is
    ``1 - distinct/total`` per client.  This is the number the serving
    benchmark reports next to its cache hit rate — the hit rate of a
    per-client-keyed cache is bounded above by the client's repetition
    rate, so reporting both shows how much of the attainable locality
    the cache actually captured.

    Args:
        stream: ``(client_id, query)`` pairs in arrival order.

    Returns:
        ``client_id -> repetition rate`` (clients with one request have
        rate 0.0).  Empty input yields an empty dict.
    """
    totals: Counter = Counter()
    seen: dict[str, set[str]] = {}
    for client_id, query in stream:
        totals[client_id] += 1
        seen.setdefault(client_id, set()).add(query)
    return {client_id: 1.0 - len(seen[client_id]) / total
            for client_id, total in totals.items()}


@dataclass(frozen=True)
class LogStatistics:
    """The Sec. 5.2 numbers for one log."""

    total_queries: int
    unique_queries: int
    movie_related_fraction: float
    class_fractions: tuple[tuple[str, float], ...]

    def fraction(self, query_class: str) -> float:
        for name, value in self.class_fractions:
            if name == query_class:
                return value
        return 0.0


@dataclass(frozen=True)
class BenchmarkQuery:
    """One workload query: raw string + its typed template and class."""

    query: str
    template: str
    query_class: str
    frequency: int


class QueryLogAnalyzer:
    """Segmentation-based analysis of a query log against one database."""

    def __init__(self, database: Database,
                 vocabulary: SchemaVocabulary | None = None):
        self.database = database
        self.segmenter = QuerySegmenter(database, vocabulary)

    # -- classification -------------------------------------------------------------

    def classify(self, query: str) -> str:
        return self.segmenter.segment(query).query_class()

    def template(self, query: str) -> str:
        return self.segmenter.segment(query).template()

    def is_movie_related(self, query: str) -> bool:
        """Whether segmentation finds any database term in the query."""
        segmented = self.segmenter.segment(query)
        return bool(segmented.entities()) or bool(segmented.attributes())

    # -- the Sec. 5.2 statistics -------------------------------------------------------

    def statistics(self, log: QueryLog) -> LogStatistics:
        """Class mix and movie-relatedness over *distinct* queries."""
        if not len(log):
            raise EvaluationError("cannot analyze an empty query log")
        class_counts: Counter = Counter()
        related = 0
        for query, _frequency in log:
            segmented = self.segmenter.segment(query)
            class_counts[segmented.query_class()] += 1
            if segmented.entities() or segmented.attributes():
                related += 1
        unique = log.unique_queries
        fractions = tuple(sorted(
            ((name, count / unique) for name, count in class_counts.items()),
            key=lambda item: (-item[1], item[0]),
        ))
        return LogStatistics(
            total_queries=log.total_queries,
            unique_queries=unique,
            movie_related_fraction=related / unique,
            class_fractions=fractions,
        )

    # -- templates and the benchmark workload --------------------------------------------

    def template_frequencies(self, log: QueryLog) -> dict[str, int]:
        """Typed template -> total query volume."""
        frequencies: Counter = Counter()
        for query, frequency in log:
            frequencies[self.template(query)] += frequency
        return dict(frequencies)

    def benchmark_workload(self, log: QueryLog, n_templates: int = 14,
                           per_template: int = 2,
                           seed: int = 13) -> list[BenchmarkQuery]:
        """The paper's movie querylog benchmark: top templates x sampled
        queries (defaults give the 14 x 2 = 28 of Sec. 5.2).

        Pure free-text and navigational templates are excluded — the paper
        types its benchmark from the movie-related slice.
        """
        if n_templates <= 0 or per_template <= 0:
            raise EvaluationError("need positive template/query counts")
        rng = DeterministicRng(seed)
        by_template: dict[str, list[tuple[str, int]]] = {}
        template_volume: Counter = Counter()
        for query, frequency in log:
            segmented = self.segmenter.segment(query)
            template = segmented.template()
            if not segmented.entities() and not segmented.attributes():
                continue  # untyped noise ([freetext], navigational)
            by_template.setdefault(template, []).append((query, frequency))
            template_volume[template] += frequency

        workload: list[BenchmarkQuery] = []
        for template, _volume in sorted(
            template_volume.items(), key=lambda item: (-item[1], item[0])
        )[:n_templates]:
            candidates = sorted(by_template[template])
            count = min(per_template, len(candidates))
            picked = rng.weighted_sample(
                [query for query, _f in candidates],
                [frequency for _q, frequency in candidates],
                count,
            )
            for query in sorted(picked):
                frequency = dict(candidates)[query]
                workload.append(BenchmarkQuery(
                    query=query,
                    template=template,
                    query_class=self.classify(query),
                    frequency=frequency,
                ))
        if not workload:
            raise EvaluationError("log yielded no typed templates")
        return workload

"""Query-log analysis: the measurements of Sec. 5.2.

Reproduces the paper's pipeline over the (synthetic) base log:

* tokens are replaced by schema types "by looking for the largest possible
  string overlaps with entities in the database" — our segmenter;
* queries classify into single-entity / entity-attribute / multi-entity /
  complex / other;
* the benchmark workload picks the top-14 typed templates by frequency and
  samples two queries per template (the paper's 28-query workload).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.search.segmentation import QuerySegmenter, SchemaVocabulary
from repro.datasets.querylog.model import QueryLog
from repro.errors import EvaluationError
from repro.relational.database import Database
from repro.utils.rng import DeterministicRng

__all__ = ["LogStatistics", "BenchmarkQuery", "QueryLogAnalyzer"]


@dataclass(frozen=True)
class LogStatistics:
    """The Sec. 5.2 numbers for one log."""

    total_queries: int
    unique_queries: int
    movie_related_fraction: float
    class_fractions: tuple[tuple[str, float], ...]

    def fraction(self, query_class: str) -> float:
        for name, value in self.class_fractions:
            if name == query_class:
                return value
        return 0.0


@dataclass(frozen=True)
class BenchmarkQuery:
    """One workload query: raw string + its typed template and class."""

    query: str
    template: str
    query_class: str
    frequency: int


class QueryLogAnalyzer:
    """Segmentation-based analysis of a query log against one database."""

    def __init__(self, database: Database,
                 vocabulary: SchemaVocabulary | None = None):
        self.database = database
        self.segmenter = QuerySegmenter(database, vocabulary)

    # -- classification -------------------------------------------------------------

    def classify(self, query: str) -> str:
        return self.segmenter.segment(query).query_class()

    def template(self, query: str) -> str:
        return self.segmenter.segment(query).template()

    def is_movie_related(self, query: str) -> bool:
        """Whether segmentation finds any database term in the query."""
        segmented = self.segmenter.segment(query)
        return bool(segmented.entities()) or bool(segmented.attributes())

    # -- the Sec. 5.2 statistics -------------------------------------------------------

    def statistics(self, log: QueryLog) -> LogStatistics:
        """Class mix and movie-relatedness over *distinct* queries."""
        if not len(log):
            raise EvaluationError("cannot analyze an empty query log")
        class_counts: Counter = Counter()
        related = 0
        for query, _frequency in log:
            segmented = self.segmenter.segment(query)
            class_counts[segmented.query_class()] += 1
            if segmented.entities() or segmented.attributes():
                related += 1
        unique = log.unique_queries
        fractions = tuple(sorted(
            ((name, count / unique) for name, count in class_counts.items()),
            key=lambda item: (-item[1], item[0]),
        ))
        return LogStatistics(
            total_queries=log.total_queries,
            unique_queries=unique,
            movie_related_fraction=related / unique,
            class_fractions=fractions,
        )

    # -- templates and the benchmark workload --------------------------------------------

    def template_frequencies(self, log: QueryLog) -> dict[str, int]:
        """Typed template -> total query volume."""
        frequencies: Counter = Counter()
        for query, frequency in log:
            frequencies[self.template(query)] += frequency
        return dict(frequencies)

    def benchmark_workload(self, log: QueryLog, n_templates: int = 14,
                           per_template: int = 2,
                           seed: int = 13) -> list[BenchmarkQuery]:
        """The paper's movie querylog benchmark: top templates x sampled
        queries (defaults give the 14 x 2 = 28 of Sec. 5.2).

        Pure free-text and navigational templates are excluded — the paper
        types its benchmark from the movie-related slice.
        """
        if n_templates <= 0 or per_template <= 0:
            raise EvaluationError("need positive template/query counts")
        rng = DeterministicRng(seed)
        by_template: dict[str, list[tuple[str, int]]] = {}
        template_volume: Counter = Counter()
        for query, frequency in log:
            segmented = self.segmenter.segment(query)
            template = segmented.template()
            if not segmented.entities() and not segmented.attributes():
                continue  # untyped noise ([freetext], navigational)
            by_template.setdefault(template, []).append((query, frequency))
            template_volume[template] += frequency

        workload: list[BenchmarkQuery] = []
        for template, _volume in sorted(
            template_volume.items(), key=lambda item: (-item[1], item[0])
        )[:n_templates]:
            candidates = sorted(by_template[template])
            count = min(per_template, len(candidates))
            picked = rng.weighted_sample(
                [query for query, _f in candidates],
                [frequency for _q, frequency in candidates],
                count,
            )
            for query in sorted(picked):
                frequency = dict(candidates)[query]
                workload.append(BenchmarkQuery(
                    query=query,
                    template=template,
                    query_class=self.classify(query),
                    frequency=frequency,
                ))
        if not workload:
            raise EvaluationError("log yielded no typed templates")
        return workload

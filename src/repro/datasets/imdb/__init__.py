"""Synthetic IMDb-like database generator."""

from repro.datasets.imdb.generator import ImdbGenerator, generate_imdb
from repro.datasets.imdb.schema import imdb_schema, simplified_schema

__all__ = ["generate_imdb", "ImdbGenerator", "imdb_schema", "simplified_schema"]

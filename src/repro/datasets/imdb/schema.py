"""The IMDb schemas used throughout the reproduction.

:func:`imdb_schema` is the full 15-table layout mirroring the IMDbPy
conversion the paper used ("15 tables, 34M tuples"): entity tables
(person, movie, company, award), dimension tables normalizing common
strings (role_type, genre, location, info_type), and junction/fact tables
(cast, movie_genre, movie_location, movie_info, person_info, aka_title,
movie_company).

:func:`simplified_schema` is the paper's Figure 2: person, cast, movie,
genre, locations, info — used in unit tests and the walkthrough examples.
"""

from __future__ import annotations

from repro.relational.schema import Column, ColumnType, ForeignKey, Schema, TableSchema

__all__ = ["imdb_schema", "simplified_schema"]

_INT = ColumnType.INTEGER
_FLOAT = ColumnType.FLOAT
_TEXT = ColumnType.TEXT
_BOOL = ColumnType.BOOLEAN


def imdb_schema() -> Schema:
    """The full 15-table schema."""
    return Schema([
        TableSchema("person", [
            Column("id", _INT, nullable=False),
            Column("name", _TEXT, nullable=False, searchable=True),
            Column("birth_year", _INT),
            Column("gender", _TEXT),
        ], primary_key="id"),

        TableSchema("movie", [
            Column("id", _INT, nullable=False),
            Column("title", _TEXT, nullable=False, searchable=True),
            Column("release_year", _INT),
            Column("rating", _FLOAT),
            Column("votes", _INT),
        ], primary_key="id"),

        TableSchema("role_type", [
            Column("id", _INT, nullable=False),
            Column("role", _TEXT, nullable=False, searchable=True),
        ], primary_key="id"),

        TableSchema("cast", [
            Column("id", _INT, nullable=False),
            Column("person_id", _INT, nullable=False),
            Column("movie_id", _INT, nullable=False),
            Column("role_id", _INT, nullable=False),
            Column("character_name", _TEXT, searchable=True),
            Column("position", _INT),
        ], primary_key="id", foreign_keys=[
            ForeignKey("person_id", "person", "id"),
            ForeignKey("movie_id", "movie", "id"),
            ForeignKey("role_id", "role_type", "id"),
        ]),

        TableSchema("genre", [
            Column("id", _INT, nullable=False),
            Column("name", _TEXT, nullable=False, searchable=True),
        ], primary_key="id"),

        TableSchema("movie_genre", [
            Column("id", _INT, nullable=False),
            Column("movie_id", _INT, nullable=False),
            Column("genre_id", _INT, nullable=False),
        ], primary_key="id", foreign_keys=[
            ForeignKey("movie_id", "movie", "id"),
            ForeignKey("genre_id", "genre", "id"),
        ]),

        TableSchema("location", [
            Column("id", _INT, nullable=False),
            Column("place", _TEXT, nullable=False, searchable=True),
        ], primary_key="id"),

        TableSchema("movie_location", [
            Column("id", _INT, nullable=False),
            Column("movie_id", _INT, nullable=False),
            Column("location_id", _INT, nullable=False),
            Column("note", _TEXT),
        ], primary_key="id", foreign_keys=[
            ForeignKey("movie_id", "movie", "id"),
            ForeignKey("location_id", "location", "id"),
        ]),

        TableSchema("info_type", [
            Column("id", _INT, nullable=False),
            Column("name", _TEXT, nullable=False, searchable=True),
        ], primary_key="id"),

        TableSchema("movie_info", [
            Column("id", _INT, nullable=False),
            Column("movie_id", _INT, nullable=False),
            Column("info_type_id", _INT, nullable=False),
            Column("info", _TEXT, searchable=True),
        ], primary_key="id", foreign_keys=[
            ForeignKey("movie_id", "movie", "id"),
            ForeignKey("info_type_id", "info_type", "id"),
        ]),

        TableSchema("person_info", [
            Column("id", _INT, nullable=False),
            Column("person_id", _INT, nullable=False),
            Column("info_type_id", _INT, nullable=False),
            Column("info", _TEXT, searchable=True),
        ], primary_key="id", foreign_keys=[
            ForeignKey("person_id", "person", "id"),
            ForeignKey("info_type_id", "info_type", "id"),
        ]),

        TableSchema("aka_title", [
            Column("id", _INT, nullable=False),
            Column("movie_id", _INT, nullable=False),
            Column("title", _TEXT, nullable=False, searchable=True),
        ], primary_key="id", foreign_keys=[
            ForeignKey("movie_id", "movie", "id"),
        ]),

        TableSchema("company", [
            Column("id", _INT, nullable=False),
            Column("name", _TEXT, nullable=False, searchable=True),
            Column("country", _TEXT),
        ], primary_key="id"),

        TableSchema("movie_company", [
            Column("id", _INT, nullable=False),
            Column("movie_id", _INT, nullable=False),
            Column("company_id", _INT, nullable=False),
            Column("kind", _TEXT),
        ], primary_key="id", foreign_keys=[
            ForeignKey("movie_id", "movie", "id"),
            ForeignKey("company_id", "company", "id"),
        ]),

        TableSchema("award", [
            Column("id", _INT, nullable=False),
            Column("movie_id", _INT),
            Column("person_id", _INT),
            Column("name", _TEXT, nullable=False, searchable=True),
            Column("year", _INT),
            Column("category", _TEXT, searchable=True),
            Column("won", _BOOL),
        ], primary_key="id", foreign_keys=[
            ForeignKey("movie_id", "movie", "id"),
            ForeignKey("person_id", "person", "id"),
        ]),
    ])


def simplified_schema() -> Schema:
    """The paper's Figure 2 schema (person, cast, movie, genre, locations, info)."""
    return Schema([
        TableSchema("person", [
            Column("id", _INT, nullable=False),
            Column("name", _TEXT, nullable=False, searchable=True),
            Column("birthdate", _TEXT),
            Column("gender", _TEXT),
        ], primary_key="id"),

        TableSchema("movie", [
            Column("id", _INT, nullable=False),
            Column("title", _TEXT, nullable=False, searchable=True),
            Column("releasedate", _TEXT),
            Column("rating", _FLOAT),
            Column("genre_id", _INT),
            Column("locations_id", _INT),
            Column("info_id", _INT),
        ], primary_key="id", foreign_keys=[
            ForeignKey("genre_id", "genre", "id"),
            ForeignKey("locations_id", "locations", "id"),
            ForeignKey("info_id", "info", "id"),
        ]),

        TableSchema("cast", [
            Column("id", _INT, nullable=False),
            Column("person_id", _INT, nullable=False),
            Column("movie_id", _INT, nullable=False),
            Column("role", _TEXT, searchable=True),
        ], primary_key="id", foreign_keys=[
            ForeignKey("person_id", "person", "id"),
            ForeignKey("movie_id", "movie", "id"),
        ]),

        TableSchema("genre", [
            Column("id", _INT, nullable=False),
            Column("type", _TEXT, nullable=False, searchable=True),
        ], primary_key="id"),

        TableSchema("locations", [
            Column("id", _INT, nullable=False),
            Column("place", _TEXT, nullable=False, searchable=True),
            Column("level", _INT),
        ], primary_key="id"),

        TableSchema("info", [
            Column("id", _INT, nullable=False),
            Column("text", _TEXT, searchable=True),
        ], primary_key="id"),
    ])

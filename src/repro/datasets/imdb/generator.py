"""Deterministic synthetic IMDb database generator.

``generate_imdb(scale, seed)`` produces a :class:`~repro.relational.Database`
over the 15-table schema.  ``scale=1`` yields roughly 200 movies / 320
persons / ~4k total rows; row counts grow linearly with ``scale``.  The
generator preserves the structural properties qunit derivation and the
baselines are sensitive to:

* every movie has genres and locations ("every movie has a genre and
  location", Sec. 4.1 — the property that makes pure data-driven derivation
  include the unimportant location table);
* plot/trivia text is long (the "lengthy plot outline" that LCA-style
  results wrongly drag into answers);
* cast sizes, genre counts and info coverage are skewed, with popularity
  (votes) following a Zipf-like curve for query-log sampling.

Canonical paper entities (Star Wars' cast, George Clooney, ...) are always
inserted first with fixed ids, independent of scale and seed.
"""

from __future__ import annotations

from repro.datasets.imdb import vocab
from repro.datasets.imdb.schema import imdb_schema
from repro.errors import DatasetError
from repro.relational.database import Database
from repro.utils.rng import DeterministicRng

__all__ = ["ImdbGenerator", "generate_imdb"]

_ROMAN = ["", " II", " III", " IV", " V", " VI", " VII", " VIII", " IX", " X"]


def generate_imdb(scale: float = 1.0, seed: int = 7) -> Database:
    """Generate the synthetic movie database (see module docstring)."""
    return ImdbGenerator(scale=scale, seed=seed).generate()


class ImdbGenerator:
    """Stateful generator; create one, call :meth:`generate` once."""

    BASE_MOVIES = 200
    BASE_PERSONS = 320

    def __init__(self, scale: float = 1.0, seed: int = 7):
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.rng = DeterministicRng(seed)
        self.database = Database(imdb_schema(), name=f"imdb-synth-x{scale}")
        # id counters (1-based like real databases)
        self._next_id: dict[str, int] = {}
        # handles for cross-referencing
        self._movie_ids: list[int] = []
        self._person_ids: list[int] = []
        self._movie_titles: dict[int, str] = {}
        self._person_names: dict[int, str] = {}
        self._genre_ids: dict[str, int] = {}
        self._location_ids: dict[str, int] = {}
        self._role_ids: dict[str, int] = {}
        self._info_type_ids: dict[str, int] = {}
        self._company_ids: list[int] = []
        self._used_titles: set[str] = set()
        self._used_names: set[str] = set()

    # -- id plumbing -----------------------------------------------------------

    def _new_id(self, table: str) -> int:
        value = self._next_id.get(table, 0) + 1
        self._next_id[table] = value
        return value

    # -- top level ---------------------------------------------------------------

    def generate(self) -> Database:
        if self._movie_ids:
            raise DatasetError("generator already used; create a fresh one")
        self._fill_dimensions()
        self._insert_canon()
        n_movies = max(len(vocab.CANON_MOVIES),
                       int(self.BASE_MOVIES * self.scale))
        n_persons = max(len(vocab.CANON_PERSONS),
                        int(self.BASE_PERSONS * self.scale))
        self._generate_persons(n_persons - len(vocab.CANON_PERSONS))
        self._generate_movies(n_movies - len(vocab.CANON_MOVIES))
        self._generate_relationships()
        self.database.assert_consistent()
        return self.database

    # -- dimensions ----------------------------------------------------------------

    def _fill_dimensions(self) -> None:
        for name in vocab.GENRES:
            genre_id = self._new_id("genre")
            self.database.insert("genre", {"id": genre_id, "name": name})
            self._genre_ids[name] = genre_id
        for place in vocab.LOCATIONS:
            location_id = self._new_id("location")
            self.database.insert("location", {"id": location_id, "place": place})
            self._location_ids[place] = location_id
        for role in vocab.ROLES:
            role_id = self._new_id("role_type")
            self.database.insert("role_type", {"id": role_id, "role": role})
            self._role_ids[role] = role_id
        for info_type in vocab.INFO_TYPES:
            info_type_id = self._new_id("info_type")
            self.database.insert("info_type", {"id": info_type_id, "name": info_type})
            self._info_type_ids[info_type] = info_type_id

        rng = self.rng.fork("companies")
        n_companies = max(6, int(12 * self.scale))
        for _ in range(n_companies):
            company_id = self._new_id("company")
            name = (f"{rng.choice(vocab.LAST_NAMES)} "
                    f"{rng.choice(vocab.COMPANY_WORDS)}")
            self.database.insert("company", {
                "id": company_id,
                "name": name,
                "country": rng.choice(["USA", "UK", "France", "Germany", "Japan"]),
            })
            self._company_ids.append(company_id)

    # -- canon -----------------------------------------------------------------------

    def _insert_canon(self) -> None:
        for name, birth_year, gender in vocab.CANON_PERSONS:
            person_id = self._new_id("person")
            self.database.insert("person", {
                "id": person_id, "name": name,
                "birth_year": birth_year, "gender": gender,
            })
            self._person_ids.append(person_id)
            self._person_names[person_id] = name
            self._used_names.add(name.lower())
        for title, year, rating, genres in vocab.CANON_MOVIES:
            movie_id = self._new_id("movie")
            self.database.insert("movie", {
                "id": movie_id, "title": title, "release_year": year,
                "rating": rating, "votes": 50000 + 10000 * movie_id,
            })
            self._movie_ids.append(movie_id)
            self._movie_titles[movie_id] = title
            self._used_titles.add(title.lower())
            for genre in genres:
                self.database.insert("movie_genre", {
                    "id": self._new_id("movie_genre"),
                    "movie_id": movie_id,
                    "genre_id": self._genre_ids[genre],
                })
        names = {name: pid for pid, name in self._person_names.items()}
        titles = {title: mid for mid, title in self._movie_titles.items()}
        position = 0
        for person, movie, role, character in vocab.CANON_CAST:
            position += 1
            self.database.insert("cast", {
                "id": self._new_id("cast"),
                "person_id": names[person],
                "movie_id": titles[movie],
                "role_id": self._role_ids[role],
                "character_name": character,
                "position": position,
            })

    # -- persons ----------------------------------------------------------------------

    def _generate_persons(self, count: int) -> None:
        rng = self.rng.fork("persons")
        for _ in range(max(0, count)):
            name = self._fresh_person_name(rng)
            person_id = self._new_id("person")
            self.database.insert("person", {
                "id": person_id,
                "name": name,
                "birth_year": rng.randint(1920, 1995) if rng.coin(0.9) else None,
                "gender": rng.choice(["m", "f"]),
            })
            self._person_ids.append(person_id)
            self._person_names[person_id] = name

    def _fresh_person_name(self, rng: DeterministicRng) -> str:
        for _attempt in range(200):
            name = f"{rng.choice(vocab.FIRST_NAMES)} {rng.choice(vocab.LAST_NAMES)}"
            if name.lower() not in self._used_names:
                self._used_names.add(name.lower())
                return name
        # Very large scales: disambiguate with a roman-numeral suffix.
        base = f"{rng.choice(vocab.FIRST_NAMES)} {rng.choice(vocab.LAST_NAMES)}"
        for numeral in _ROMAN[1:]:
            candidate = base + numeral
            if candidate.lower() not in self._used_names:
                self._used_names.add(candidate.lower())
                return candidate
        raise DatasetError("exhausted person-name space; lower the scale")

    # -- movies ------------------------------------------------------------------------

    def _generate_movies(self, count: int) -> None:
        rng = self.rng.fork("movies")
        for _ in range(max(0, count)):
            title = self._fresh_title(rng)
            movie_id = self._new_id("movie")
            # Popularity: Zipf-ish votes so query-log sampling has skew.
            rank = len(self._movie_ids) + 1
            votes = max(50, int(200000 / rank) + rng.randint(0, 500))
            self.database.insert("movie", {
                "id": movie_id,
                "title": title,
                "release_year": rng.randint(1950, 2008),
                "rating": round(rng.uniform(3.0, 9.3), 1),
                "votes": votes,
            })
            self._movie_ids.append(movie_id)
            self._movie_titles[movie_id] = title

    def _fresh_title(self, rng: DeterministicRng) -> str:
        for _attempt in range(200):
            pattern = rng.choice(vocab.TITLE_PATTERNS)
            noun = rng.choice(vocab.TITLE_NOUNS)
            noun2 = rng.choice([n for n in vocab.TITLE_NOUNS if n != noun])
            title = pattern.format(adj=rng.choice(vocab.TITLE_ADJECTIVES),
                                   noun=noun, noun2=noun2)
            if title.lower() not in self._used_titles:
                self._used_titles.add(title.lower())
                return title
        # Sequels: remakes and sequels are exactly why titles aren't keys.
        for numeral in _ROMAN[1:]:
            pattern = rng.choice(vocab.TITLE_PATTERNS)
            noun = rng.choice(vocab.TITLE_NOUNS)
            noun2 = rng.choice([n for n in vocab.TITLE_NOUNS if n != noun])
            base = pattern.format(adj=rng.choice(vocab.TITLE_ADJECTIVES),
                                  noun=noun, noun2=noun2)
            candidate = base + numeral
            if candidate.lower() not in self._used_titles:
                self._used_titles.add(candidate.lower())
                return candidate
        raise DatasetError("exhausted title space; lower the scale")

    # -- relationships --------------------------------------------------------------------

    def _generate_relationships(self) -> None:
        self._generate_cast()
        self._generate_genres_and_locations()
        self._generate_movie_info()
        self._generate_person_info()
        self._generate_aka_titles()
        self._generate_companies()
        self._generate_awards()

    def _movies_needing(self, rng_label: str):
        """Movies beyond the canon (canon relationships are hand-made)."""
        canon_count = len(vocab.CANON_MOVIES)
        return self._movie_ids[canon_count:], self.rng.fork(rng_label)

    def _generate_cast(self) -> None:
        movies, rng = self._movies_needing("cast")
        actor_role = self._role_ids["actor"]
        actress_role = self._role_ids["actress"]
        for movie_id in movies:
            size = rng.noisy_count(8, spread=0.5, minimum=2)
            members = rng.sample(self._person_ids, min(size, len(self._person_ids)))
            for position, person_id in enumerate(members, start=1):
                if position == len(members) and rng.coin(0.8):
                    role_id = self._role_ids[rng.choice(
                        ["director", "producer", "writer", "composer"])]
                    character = None
                else:
                    gender = None
                    person = self.database.table("person").by_primary_key(person_id)
                    if person is not None:
                        gender = person["gender"]
                    role_id = actress_role if gender == "f" else actor_role
                    character = self._character_name(rng)
                self.database.insert("cast", {
                    "id": self._new_id("cast"),
                    "person_id": person_id,
                    "movie_id": movie_id,
                    "role_id": role_id,
                    "character_name": character,
                    "position": position,
                })

    def _character_name(self, rng: DeterministicRng) -> str:
        if rng.coin(0.3):
            return (f"{rng.choice(vocab.CHARACTER_TITLES)} "
                    f"{rng.choice(vocab.CHARACTER_FIRST)}")
        return (f"{rng.choice(vocab.CHARACTER_FIRST)} "
                f"{rng.choice(vocab.LAST_NAMES)}")

    def _generate_genres_and_locations(self) -> None:
        movies, rng = self._movies_needing("genres")
        genre_names = list(self._genre_ids)
        location_names = list(self._location_ids)
        for movie_id in movies:
            # Every movie gets >=1 genre and >=1 location (the Sec. 4.1 property).
            for genre in rng.sample(genre_names, rng.randint(1, 3)):
                self.database.insert("movie_genre", {
                    "id": self._new_id("movie_genre"),
                    "movie_id": movie_id,
                    "genre_id": self._genre_ids[genre],
                })
            for place in rng.sample(location_names, rng.randint(1, 4)):
                self.database.insert("movie_location", {
                    "id": self._new_id("movie_location"),
                    "movie_id": movie_id,
                    "location_id": self._location_ids[place],
                    "note": "studio" if rng.coin(0.2) else None,
                })
        # Canon movies need locations too (their genres came with the canon).
        canon_rng = self.rng.fork("canon-locations")
        for movie_id in self._movie_ids[:len(vocab.CANON_MOVIES)]:
            for place in canon_rng.sample(location_names, canon_rng.randint(1, 3)):
                self.database.insert("movie_location", {
                    "id": self._new_id("movie_location"),
                    "movie_id": movie_id,
                    "location_id": self._location_ids[place],
                    "note": None,
                })

    def _plot(self, rng: DeterministicRng) -> str:
        return (f"{rng.choice(vocab.PLOT_SUBJECTS)} "
                f"{rng.choice(vocab.PLOT_VERBS)} "
                f"{rng.choice(vocab.PLOT_OBJECTS)} "
                f"{rng.choice(vocab.PLOT_TWISTS)}. "
                f"{rng.choice(vocab.PLOT_SUBJECTS)} "
                f"{rng.choice(vocab.PLOT_VERBS)} "
                f"{rng.choice(vocab.PLOT_OBJECTS)}.")

    def _generate_movie_info(self) -> None:
        rng = self.rng.fork("movie-info")
        canon_ids = set(self._movie_ids[:len(vocab.CANON_MOVIES)])
        for movie_id in self._movie_ids:
            title = self._movie_titles[movie_id]
            # Canon movies always carry the info kinds the paper's example
            # queries ask about; filler movies have realistic gaps.
            is_canon = movie_id in canon_ids
            # Plot for everyone — it must be long, that is its whole role here.
            self.database.insert("movie_info", {
                "id": self._new_id("movie_info"),
                "movie_id": movie_id,
                "info_type_id": self._info_type_ids["plot"],
                "info": self._plot(rng),
            })
            if rng.coin(0.6):
                self.database.insert("movie_info", {
                    "id": self._new_id("movie_info"),
                    "movie_id": movie_id,
                    "info_type_id": self._info_type_ids["tagline"],
                    "info": (f"Every {rng.choice(vocab.TITLE_NOUNS).lower()} "
                             f"has its price."),
                })
            if is_canon or rng.coin(0.75):
                self.database.insert("movie_info", {
                    "id": self._new_id("movie_info"),
                    "movie_id": movie_id,
                    "info_type_id": self._info_type_ids["box office"],
                    "info": f"${rng.randint(1, 900)}.{rng.randint(0, 9)}M gross",
                })
            if is_canon or rng.coin(0.6):
                self.database.insert("movie_info", {
                    "id": self._new_id("movie_info"),
                    "movie_id": movie_id,
                    "info_type_id": self._info_type_ids["trivia"],
                    "info": (f"The production of {title} relocated twice "
                             f"during filming."),
                })
            if is_canon or rng.coin(0.9):
                self.database.insert("movie_info", {
                    "id": self._new_id("movie_info"),
                    "movie_id": movie_id,
                    "info_type_id": self._info_type_ids["soundtrack"],
                    "info": (f"Original score with {rng.randint(8, 24)} tracks; "
                             f"theme '{rng.choice(vocab.TITLE_ADJECTIVES)} "
                             f"{rng.choice(vocab.TITLE_NOUNS)}'."),
                })
            self.database.insert("movie_info", {
                "id": self._new_id("movie_info"),
                "movie_id": movie_id,
                "info_type_id": self._info_type_ids["runtime"],
                "info": f"{rng.randint(78, 195)} min",
            })

    def _generate_person_info(self) -> None:
        rng = self.rng.fork("person-info")
        for person_id in self._person_ids:
            if not rng.coin(0.55):
                continue
            name = self._person_names[person_id]
            self.database.insert("person_info", {
                "id": self._new_id("person_info"),
                "person_id": person_id,
                "info_type_id": self._info_type_ids["biography"],
                "info": (f"{name} began their career in regional theatre "
                         f"before moving into film, earning a reputation "
                         f"for {rng.choice(['intense', 'understated', 'versatile', 'comedic'])} "
                         f"performances."),
            })

    def _generate_aka_titles(self) -> None:
        rng = self.rng.fork("aka")
        for movie_id in self._movie_ids:
            if not rng.coin(0.25):
                continue
            title = self._movie_titles[movie_id]
            self.database.insert("aka_title", {
                "id": self._new_id("aka_title"),
                "movie_id": movie_id,
                "title": f"{title} ({rng.choice(['working title', 'international', 'director cut'])})",
            })

    def _generate_companies(self) -> None:
        rng = self.rng.fork("movie-companies")
        for movie_id in self._movie_ids:
            for kind in ("production", "distribution"):
                if kind == "distribution" and not rng.coin(0.7):
                    continue
                self.database.insert("movie_company", {
                    "id": self._new_id("movie_company"),
                    "movie_id": movie_id,
                    "company_id": rng.choice(self._company_ids),
                    "kind": kind,
                })

    def _generate_awards(self) -> None:
        rng = self.rng.fork("awards")
        # Canon entities always carry at least one award, so the paper's
        # example queries ("tom hanks awards") have data at every scale.
        for offset, (_name, _birth, _gender) in enumerate(vocab.CANON_PERSONS):
            self.database.insert("award", {
                "id": self._new_id("award"),
                "movie_id": None,
                "person_id": self._person_ids[offset],
                "name": vocab.AWARD_NAMES[offset % len(vocab.AWARD_NAMES)],
                "year": 1990 + offset,
                "category": vocab.AWARD_CATEGORIES[offset % len(vocab.AWARD_CATEGORIES)],
                "won": offset % 2 == 0,
            })
        for offset, (_title, year, rating, _genres) in enumerate(vocab.CANON_MOVIES):
            if rating < 7.0:
                continue
            self.database.insert("award", {
                "id": self._new_id("award"),
                "movie_id": self._movie_ids[offset],
                "person_id": None,
                "name": vocab.AWARD_NAMES[offset % len(vocab.AWARD_NAMES)],
                "year": year + 1,
                "category": vocab.AWARD_CATEGORIES[(offset + 3) % len(vocab.AWARD_CATEGORIES)],
                "won": offset % 2 == 1,
            })
        # Highly-rated movies attract nominations; some are for people.
        movie_table = self.database.table("movie")
        for movie_id in self._movie_ids:
            row = movie_table.by_primary_key(movie_id)
            assert row is not None
            rating = row["rating"] or 0.0
            if rating < 7.0 or not rng.coin(0.6):
                continue
            for _ in range(rng.randint(1, 3)):
                year_base = row["release_year"] or 1990
                self.database.insert("award", {
                    "id": self._new_id("award"),
                    "movie_id": movie_id,
                    "person_id": None,
                    "name": rng.choice(vocab.AWARD_NAMES),
                    "year": year_base + 1,
                    "category": rng.choice(vocab.AWARD_CATEGORIES),
                    "won": rng.coin(0.3),
                })
        for person_id in self._person_ids:
            if not rng.coin(0.08):
                continue
            self.database.insert("award", {
                "id": self._new_id("award"),
                "movie_id": None,
                "person_id": person_id,
                "name": rng.choice(vocab.AWARD_NAMES),
                "year": rng.randint(1970, 2008),
                "category": rng.choice(
                    ["best actor", "best actress", "best director"]),
                "won": rng.coin(0.35),
            })

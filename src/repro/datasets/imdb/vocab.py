"""Vocabulary for the synthetic IMDb generator.

``CANON_PERSONS`` / ``CANON_MOVIES`` seed the database with the exact
entities the paper's prose and example queries use (george clooney, star
wars, tom hanks, julio iglesias, ...) so the paper's queries run verbatim
against the synthetic data.  Everything else is combinatorial filler drawn
from the word lists below.
"""

from __future__ import annotations

__all__ = [
    "CANON_PERSONS",
    "CANON_MOVIES",
    "CANON_CAST",
    "FIRST_NAMES",
    "LAST_NAMES",
    "TITLE_ADJECTIVES",
    "TITLE_NOUNS",
    "TITLE_PATTERNS",
    "GENRES",
    "LOCATIONS",
    "ROLES",
    "INFO_TYPES",
    "COMPANY_WORDS",
    "AWARD_NAMES",
    "AWARD_CATEGORIES",
    "CHARACTER_FIRST",
    "CHARACTER_TITLES",
    "PLOT_SUBJECTS",
    "PLOT_VERBS",
    "PLOT_OBJECTS",
    "PLOT_TWISTS",
]

# -- canon: entities named in the paper --------------------------------------

CANON_PERSONS = [
    # (name, birth_year, gender)
    ("George Clooney", 1961, "m"),
    ("Tom Hanks", 1956, "m"),
    ("Julio Iglesias", 1943, "m"),
    ("Angelina Jolie", 1975, "f"),
    ("Harrison Ford", 1942, "m"),
    ("Carrie Fisher", 1956, "f"),
    ("Mark Hamill", 1951, "m"),
    ("Helen Hunt", 1963, "f"),
    ("Arnold Schwarzenegger", 1947, "m"),
    ("Michelle Pfeiffer", 1958, "f"),
]

CANON_MOVIES = [
    # (title, year, rating, genres)
    ("Star Wars", 1977, 8.6, ("science fiction", "adventure")),
    ("Cast Away", 2000, 7.8, ("drama", "adventure")),
    ("The Terminator", 1984, 8.0, ("science fiction", "action")),
    ("Tomb Raider", 2001, 5.8, ("action", "adventure")),
    ("Batman", 1989, 7.5, ("action", "crime")),
    ("Ocean's Eleven", 2001, 7.7, ("crime", "thriller")),
    ("Space Transponders", 1999, 6.1, ("science fiction", "comedy")),
]

# (person, movie, role, character) — enough to answer the paper's examples
CANON_CAST = [
    ("Mark Hamill", "Star Wars", "actor", "Luke Skywalker"),
    ("Harrison Ford", "Star Wars", "actor", "Han Solo"),
    ("Carrie Fisher", "Star Wars", "actress", "Princess Leia"),
    ("Tom Hanks", "Cast Away", "actor", "Chuck Noland"),
    ("Helen Hunt", "Cast Away", "actress", "Kelly Frears"),
    ("Arnold Schwarzenegger", "The Terminator", "actor", "The Terminator"),
    ("Angelina Jolie", "Tomb Raider", "actress", "Lara Croft"),
    ("Michelle Pfeiffer", "Batman", "actress", "Selina Kyle"),
    ("George Clooney", "Ocean's Eleven", "actor", "Danny Ocean"),
    ("Julio Iglesias", "Space Transponders", "composer", None),
    ("George Clooney", "Batman", "actor", "Bruce Wayne"),
]

# -- filler vocabularies -------------------------------------------------------

FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Daniel",
    "Nancy", "Matthew", "Lisa", "Anthony", "Betty", "Mark", "Margaret",
    "Donald", "Sandra", "Steven", "Ashley", "Paul", "Kimberly", "Andrew",
    "Emily", "Joshua", "Donna", "Kenneth", "Michelle", "Kevin", "Dorothy",
    "Brian", "Carol", "Edward", "Amanda", "Ronald", "Melissa", "Timothy",
    "Deborah", "Jason", "Stephanie", "Jeffrey", "Rebecca", "Ryan", "Sharon",
    "Jacob", "Laura", "Gary", "Cynthia",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
]

TITLE_ADJECTIVES = [
    "Silent", "Broken", "Crimson", "Hidden", "Golden", "Midnight", "Savage",
    "Electric", "Burning", "Frozen", "Shattered", "Iron", "Velvet", "Wild",
    "Hollow", "Distant", "Forgotten", "Rising", "Falling", "Eternal",
    "Darkest", "Final", "Lost", "Perfect", "Quiet", "Restless", "Sacred",
]

TITLE_NOUNS = [
    "River", "Empire", "Horizon", "Shadow", "Garden", "Harbor", "Winter",
    "Summer", "Voyage", "Promise", "Kingdom", "Fortune", "Legacy", "Mirror",
    "Tempest", "Covenant", "Sanctuary", "Labyrinth", "Odyssey", "Paradox",
    "Reckoning", "Crossing", "Vendetta", "Cascade", "Meridian", "Eclipse",
    "Serenade", "Requiem", "Frontier", "Citadel", "Monsoon", "Avalanche",
]

# Patterns: {adj} adjective, {noun}/{noun2} nouns.  Titles are built by
# filling a pattern; collisions are resolved with roman numeral sequels.
TITLE_PATTERNS = [
    "The {noun}",
    "{adj} {noun}",
    "The {adj} {noun}",
    "{noun} of the {noun2}",
    "Return of the {noun}",
    "Beyond the {noun}",
    "{noun} Rising",
    "The Last {noun}",
    "A {adj} {noun}",
    "{noun} and {noun2}",
]

GENRES = [
    "action", "adventure", "animation", "comedy", "crime", "documentary",
    "drama", "family", "fantasy", "film noir", "horror", "musical",
    "mystery", "romance", "romantic comedy", "science fiction", "thriller",
    "war", "western",
]

LOCATIONS = [
    "Los Angeles, California, USA", "New York City, New York, USA",
    "London, England, UK", "Paris, France", "Rome, Italy",
    "Vancouver, British Columbia, Canada", "Toronto, Ontario, Canada",
    "Sydney, New South Wales, Australia", "Tokyo, Japan", "Berlin, Germany",
    "Prague, Czech Republic", "Budapest, Hungary", "Dublin, Ireland",
    "Edinburgh, Scotland, UK", "Barcelona, Spain", "Mexico City, Mexico",
    "Chicago, Illinois, USA", "San Francisco, California, USA",
    "Seattle, Washington, USA", "New Orleans, Louisiana, USA",
    "Atlanta, Georgia, USA", "Tunisia", "Iceland", "Morocco",
    "Wellington, New Zealand", "Mumbai, India", "Hong Kong, China",
    "Rio de Janeiro, Brazil", "Vienna, Austria", "Stockholm, Sweden",
]

ROLES = [
    "actor", "actress", "director", "producer", "writer", "composer",
    "cinematographer", "editor",
]

INFO_TYPES = [
    "plot", "trivia", "quotes", "soundtrack", "tagline", "box office",
    "runtime", "biography", "filming dates",
]

COMPANY_WORDS = [
    "Pictures", "Studios", "Films", "Entertainment", "Productions", "Media",
    "Bros", "International", "Features", "Works",
]

AWARD_NAMES = [
    "Academy Award", "Golden Globe", "BAFTA Award", "Screen Actors Guild Award",
    "Critics Choice Award", "Saturn Award",
]

AWARD_CATEGORIES = [
    "best picture", "best actor", "best actress", "best director",
    "best supporting actor", "best supporting actress", "best screenplay",
    "best original score", "best visual effects", "best cinematography",
]

CHARACTER_FIRST = [
    "Jack", "Rose", "Max", "Ella", "Sam", "Grace", "Cole", "Ivy", "Finn",
    "Nora", "Rex", "Luna", "Ace", "Vera", "Duke", "Sage", "Colt", "Wren",
]

CHARACTER_TITLES = [
    "Detective", "Captain", "Doctor", "Professor", "Agent", "Sergeant",
    "Commander", "Officer",
]

PLOT_SUBJECTS = [
    "a retired detective", "a young pilot", "an ambitious journalist",
    "a brilliant scientist", "two estranged siblings", "a small-town teacher",
    "an undercover agent", "a struggling musician", "a war veteran",
    "a rookie cop", "an orphaned heiress", "a disgraced surgeon",
]

PLOT_VERBS = [
    "must confront", "races to stop", "uncovers", "is haunted by",
    "struggles against", "falls for", "teams up with", "betrays",
    "searches for", "is framed for",
]

PLOT_OBJECTS = [
    "a conspiracy reaching the highest levels of government",
    "a long-buried family secret", "an ancient curse",
    "a rogue artificial intelligence", "the ghost of a former partner",
    "a criminal syndicate", "an impossible heist",
    "a deadly epidemic", "a missing heir", "a forgotten war crime",
]

PLOT_TWISTS = [
    "before time runs out", "at a terrible personal cost",
    "with unexpected help from an old rival", "against all odds",
    "while hiding a secret of their own", "as the city watches",
    "in the dead of winter", "under a false identity",
]

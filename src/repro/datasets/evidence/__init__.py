"""Synthetic external evidence: wiki-like pages rendered from the database."""

from repro.datasets.evidence.generator import WikiCorpusGenerator, generate_wiki_corpus

__all__ = ["WikiCorpusGenerator", "generate_wiki_corpus"]

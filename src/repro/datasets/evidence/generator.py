"""Generate wiki-like DOM pages from the database (Wikipedia stand-in).

Sec. 4.3 learns qunit definitions from "published results of queries to the
database, or relevant web pages that present parts of the data" — for the
movie domain, Wikipedia articles.  Since the real pages substantially
overlap the database's content, we can generate equivalent evidence by
rendering database rows into page-shaped DOM trees, with realistic noise:
sections dropped at random, free-text paragraphs the recognizer must
ignore, and dedicated single-list pages ("Full cast of X") alongside the
profile articles.

Pages reuse :class:`~repro.xmlview.tree.XmlNode` as the DOM type.  The
generator deliberately attaches **no provenance** to the text nodes: the
evidence deriver must rediscover which database values appear where, just
as it would on a real crawl.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.utils.rng import DeterministicRng
from repro.xmlview.tree import XmlNode

__all__ = ["WikiCorpusGenerator", "generate_wiki_corpus"]


def generate_wiki_corpus(database: Database, seed: int = 21,
                         movie_fraction: float = 0.6,
                         person_fraction: float = 0.4) -> list[XmlNode]:
    """Convenience wrapper around :class:`WikiCorpusGenerator`."""
    generator = WikiCorpusGenerator(database, seed=seed,
                                    movie_fraction=movie_fraction,
                                    person_fraction=person_fraction)
    return generator.pages()


class WikiCorpusGenerator:
    """Renders a deterministic corpus of wiki-like pages."""

    FILLER = (
        "Critics were divided on its initial release.",
        "The production ran significantly over budget.",
        "It has since developed a devoted following.",
        "Principal photography lasted eleven weeks.",
        "The score was recorded in a single session.",
    )

    def __init__(self, database: Database, seed: int = 21,
                 movie_fraction: float = 0.6, person_fraction: float = 0.4):
        if not 0.0 < movie_fraction <= 1.0 or not 0.0 < person_fraction <= 1.0:
            raise ValueError("page fractions must be in (0, 1]")
        self.database = database
        self.rng = DeterministicRng(seed)
        self.movie_fraction = movie_fraction
        self.person_fraction = person_fraction

    # -- corpus -------------------------------------------------------------------

    def pages(self) -> list[XmlNode]:
        pages: list[XmlNode] = []
        movie_rng = self.rng.fork("movies")
        movie_ids = self._sample_ids("movie", self.movie_fraction, movie_rng)
        for movie_id in movie_ids:
            pages.append(self.movie_page(movie_id, movie_rng))
            if movie_rng.coin(0.3):
                pages.append(self.cast_list_page(movie_id))
        person_rng = self.rng.fork("persons")
        person_ids = self._sample_ids("person", self.person_fraction, person_rng)
        for person_id in person_ids:
            pages.append(self.person_page(person_id, person_rng))
        return pages

    def _sample_ids(self, table: str, fraction: float,
                    rng: DeterministicRng) -> list[int]:
        ids = [row["id"] for row in self.database.table(table)]  # type: ignore[index]
        count = max(1, int(len(ids) * fraction))
        return sorted(rng.sample(ids, count))

    # -- page builders -----------------------------------------------------------------

    def movie_page(self, movie_id: int, rng: DeterministicRng) -> XmlNode:
        movie = self.database.table("movie").by_primary_key(movie_id)
        assert movie is not None
        page = XmlNode("page", ())
        page.add_child("h1", str(movie["title"]))
        infobox = page.add_child("infobox")
        if movie["release_year"] is not None:
            infobox.add_child("field", f"released {movie['release_year']}")
        genres = self._genres(movie_id)
        if genres:
            infobox.add_child("field", ", ".join(genres))

        if rng.coin(0.85):
            plot = self._info(movie_id, "plot")
            if plot:
                section = page.add_child("section")
                section.add_child("h2", "Plot")
                section.add_child("p", plot)
        if rng.coin(0.9):
            members = self._cast(movie_id)
            if members:
                section = page.add_child("section")
                section.add_child("h2", "Cast")
                listing = section.add_child("ul")
                for name, character in members:
                    text = f"{name} as {character}" if character else name
                    listing.add_child("li", text)
        if rng.coin(0.5):
            places = self._locations(movie_id)
            if places:
                section = page.add_child("section")
                section.add_child("h2", "Locations")
                listing = section.add_child("ul")
                for place in places:
                    listing.add_child("li", place)
        if rng.coin(0.45):
            box_office = self._info(movie_id, "box office")
            if box_office:
                section = page.add_child("section")
                section.add_child("h2", "Box office")
                section.add_child("p", box_office)
        if rng.coin(0.4):
            awards = self._awards(movie_id)
            if awards:
                section = page.add_child("section")
                section.add_child("h2", "Awards")
                listing = section.add_child("ul")
                for award in awards:
                    listing.add_child("li", award)
        if rng.coin(0.6):
            page.add_child("p", rng.choice(self.FILLER))
        return page

    def cast_list_page(self, movie_id: int) -> XmlNode:
        """A dedicated full-credits page: one label entity, one long list."""
        movie = self.database.table("movie").by_primary_key(movie_id)
        assert movie is not None
        page = XmlNode("page", ())
        page.add_child("h1", f"Full cast of {movie['title']}")
        listing = page.add_child("ul")
        for name, character in self._cast(movie_id):
            text = f"{name} as {character}" if character else name
            listing.add_child("li", text)
        return page

    def person_page(self, person_id: int, rng: DeterministicRng) -> XmlNode:
        person = self.database.table("person").by_primary_key(person_id)
        assert person is not None
        page = XmlNode("page", ())
        page.add_child("h1", str(person["name"]))
        if rng.coin(0.6):
            biography = self._biography(person_id)
            if biography:
                section = page.add_child("section")
                section.add_child("h2", "Biography")
                section.add_child("p", biography)
        movies = self._filmography(person_id)
        if movies:
            section = page.add_child("section")
            section.add_child("h2", "Filmography")
            listing = section.add_child("ul")
            for title, year in movies:
                text = f"{title} ({year})" if year else title
                listing.add_child("li", text)
        if rng.coin(0.4):
            page.add_child("p", rng.choice(self.FILLER))
        return page

    # -- database lookups -----------------------------------------------------------------

    def _genres(self, movie_id: int) -> list[str]:
        names = []
        for link in self.database.lookup("movie_genre", "movie_id", movie_id):
            genre = self.database.table("genre").by_primary_key(link["genre_id"])
            if genre is not None:
                names.append(str(genre["name"]))
        return sorted(names)

    def _cast(self, movie_id: int) -> list[tuple[str, str | None]]:
        members = []
        for link in sorted(self.database.lookup("cast", "movie_id", movie_id),
                           key=lambda row: (row["position"] or 0, row["id"])):
            person = self.database.table("person").by_primary_key(link["person_id"])
            if person is None:
                continue
            character = link["character_name"]
            members.append((str(person["name"]),
                            str(character) if character else None))
        return members

    def _locations(self, movie_id: int) -> list[str]:
        places = []
        for link in self.database.lookup("movie_location", "movie_id", movie_id):
            location = self.database.table("location").by_primary_key(
                link["location_id"])
            if location is not None:
                places.append(str(location["place"]))
        return sorted(places)

    def _awards(self, movie_id: int) -> list[str]:
        awards = []
        for row in self.database.lookup("award", "movie_id", movie_id):
            awards.append(f"{row['name']} for {row['category']}")
        return sorted(awards)

    def _info(self, movie_id: int, info_type: str) -> str | None:
        type_rows = self.database.lookup("info_type", "name", info_type)
        if not type_rows:
            return None
        type_id = type_rows[0]["id"]
        for row in self.database.lookup("movie_info", "movie_id", movie_id):
            if row["info_type_id"] == type_id and row["info"]:
                return str(row["info"])
        return None

    def _biography(self, person_id: int) -> str | None:
        for row in self.database.lookup("person_info", "person_id", person_id):
            if row["info"]:
                return str(row["info"])
        return None

    def _filmography(self, person_id: int) -> list[tuple[str, int | None]]:
        movies = []
        for link in self.database.lookup("cast", "person_id", person_id):
            movie = self.database.table("movie").by_primary_key(link["movie_id"])
            if movie is not None:
                movies.append((str(movie["title"]), movie["release_year"]))
        return sorted(movies)

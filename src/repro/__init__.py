"""Reproduction of "Qunits: Queried Units for Database Search" (CIDR 2009).

Public API tour:

>>> from repro import generate_imdb, imdb_expert_qunits
>>> from repro import QunitCollection, QunitSearchEngine
>>> db = generate_imdb(scale=0.2)
>>> collection = QunitCollection(db, imdb_expert_qunits())
>>> engine = QunitSearchEngine(collection, flavor="expert")
>>> engine.best("star wars cast").meta("definition")
'movie_full_credits'

Subpackages: ``repro.relational`` (the database engine),
``repro.ir`` (retrieval), ``repro.graph`` / ``repro.xmlview`` (graph and
XML views), ``repro.baselines`` (BANKS, LCA, MLCA), ``repro.core``
(qunits: definitions, derivation, search), ``repro.datasets`` (synthetic
IMDb / query log / evidence), ``repro.eval`` (the Sec. 5 experiments).
"""

from repro.answer import Answer, atom
from repro.core import QunitCollection, QunitDefinition, QunitInstance, UtilityModel
from repro.core.derivation import (
    ExternalEvidenceDeriver,
    QueryLogDeriver,
    SchemaDataDeriver,
    imdb_expert_qunits,
)
from repro.core.search import QunitSearchEngine
from repro.datasets.imdb import generate_imdb, imdb_schema, simplified_schema
from repro.datasets.querylog import QueryLogAnalyzer, QueryLogGenerator
from repro.datasets.evidence import generate_wiki_corpus
from repro.errors import ReproError
from repro.eval import ResultQualityExperiment, UserStudySimulator
from repro.relational import Database

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Answer",
    "atom",
    "Database",
    "QunitDefinition",
    "QunitInstance",
    "QunitCollection",
    "QunitSearchEngine",
    "UtilityModel",
    "imdb_expert_qunits",
    "SchemaDataDeriver",
    "QueryLogDeriver",
    "ExternalEvidenceDeriver",
    "generate_imdb",
    "imdb_schema",
    "simplified_schema",
    "QueryLogGenerator",
    "QueryLogAnalyzer",
    "generate_wiki_corpus",
    "ResultQualityExperiment",
    "UserStudySimulator",
    "ReproError",
]

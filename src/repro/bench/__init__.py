"""Benchmark tooling that ships with the package (not the benchmarks
themselves, which live in ``benchmarks/`` at the repo root): regression
checking of the ``BENCH_*.json`` performance reports against committed
baselines, used by the nightly CI job (``benchmarks/check_regression.py``)
and the ``repro bench-diff`` CLI subcommand.
"""

from repro.bench.regression import (
    DEFAULT_THRESHOLD,
    TRACKED_METRICS,
    MetricComparison,
    compare_dirs,
    compare_reports,
    metric_value,
    render_comparison,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "TRACKED_METRICS",
    "MetricComparison",
    "compare_dirs",
    "compare_reports",
    "metric_value",
    "render_comparison",
]

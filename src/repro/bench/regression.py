"""Benchmark regression checking over ``BENCH_*.json`` reports.

The perf benchmarks (``benchmarks/bench_perf_scaling.py``) write their
measurements as JSON artifacts; committed full-scale runs live in
``benchmarks/baselines/``.  This module compares a fresh run against
those baselines and flags any *tracked* metric that regressed by more
than a threshold (25% by default) — the guard the nightly CI job
(``.github/workflows/nightly-bench.yml``) runs so a perf regression
cannot land silently.  ``repro bench-diff <old> <new>`` prints the same
comparison as a table.

Only explicitly tracked metrics participate (:data:`TRACKED_METRICS`):
raw timings jitter with machine load, so the tracked set names the
headline numbers each report exists to defend, each with a direction
(``"lower"`` for timings and size ratios, ``"higher"`` for speedups).
Reports carry their inputs (scale, document/query counts) next to their
timings, so a comparison across runs is apples-to-apples as long as the
benchmark configuration is unchanged.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.utils.tables import ascii_table

__all__ = [
    "DEFAULT_THRESHOLD",
    "TRACKED_METRICS",
    "MetricComparison",
    "metric_value",
    "compare_reports",
    "compare_dirs",
    "render_comparison",
    "main",
]

#: Allowed relative change before a tracked metric counts as regressed.
DEFAULT_THRESHOLD = 0.25

#: ``file name -> {dotted metric path -> direction}``.  Direction
#: ``"lower"`` means lower is better (timings, size ratios): the metric
#: regresses when ``current > baseline * (1 + threshold)``.  ``"higher"``
#: means higher is better (speedups): regression when
#: ``current < baseline / (1 + threshold)``.
TRACKED_METRICS: dict[str, dict[str, str]] = {
    "BENCH_cold_start.json": {
        "cold_start_s": "lower",
        "cold_start_speedup": "higher",
        "load_v3_s": "lower",
        "mmap_speedup": "higher",
    },
    "BENCH_sharded_scaling.json": {
        "sharded_cold_s": "lower",
        "sharded_warm_s": "lower",
    },
    "BENCH_snapshot_v2.json": {
        "dedup_ratio": "lower",
        "routing.routed_s": "lower",
    },
    "BENCH_wand.json": {
        "long.maxscore_s": "lower",
        "long.wand_s": "lower",
        "long.blockmax_s": "lower",
        "long.wand_speedup": "higher",
    },
    "BENCH_pipeline.json": {
        # Cold passes are dominated by per-engine one-time builds and
        # jitter with run order; the steady state is the guarded number.
        "batched_warm_s": "lower",
        # The staged pipeline's reason to exist: batched serving must
        # keep beating the sequential per-query loop.
        "speedup_warm": "higher",
    },
    "perf_topk_fastpath.json": {
        "fastpath_cold_s": "lower",
        # The warm path is sub-millisecond — absolute wall-clock at that
        # scale is pure noise across machines; the cache-effectiveness
        # *ratio* is the stable, meaningful guard.
        "speedup_warm": "higher",
    },
    "BENCH_serving.json": {
        # The serving front end's reason to exist: micro-batching over
        # HTTP must keep beating per-request serving.  Both arms run on
        # the same host in the same process, so the ratio is stable
        # where absolute QPS is machine-bound.
        "speedup_batched_qps": "higher",
        "batched.qps": "higher",
        # The prefork worker tier: absolute 4-worker throughput and its
        # ratio over one worker.  The ratio only expresses parallelism
        # on a >= 4-core runner; on fewer cores it hovers near (or
        # below) 1.0, which the baseline then honestly records.
        "qps_workers_4": "higher",
        "worker_scaling_4x": "higher",
    },
    "BENCH_hybrid.json": {
        # The hybrid strategy's reason to exist: rank fusion must keep
        # recovering what lexical retrieval loses on paraphrased
        # queries.  The eval set is deterministic, so nDCG moves only
        # when retrieval behaviour does.
        "ndcg_hybrid": "higher",
        "ndcg_delta": "higher",
        # And it must stay affordable at steady state: warm wall-clock
        # absolute and relative to the pure-lexical arm.
        "hybrid_warm_s": "lower",
        "latency_ratio": "lower",
    },
    "BENCH_ingest.json": {
        # The collection journal's reason to exist: appending a small
        # batch must keep beating a full generation rewrite.  A ratio
        # of two save paths on the same host, so stable where absolute
        # wall-clock is machine-bound.
        "delta_save_speedup": "higher",
        # Lazy cold starts must keep pinning nothing up front; this is
        # a file count, so any drift is a behavior change, not noise.
        # (The read p99s in this file are deliberately not gated —
        # cross-thread scheduling jitter on shared runners swamps the
        # regression threshold.)
        "lazy_cold_pins": "lower",
    },
}


@dataclass(frozen=True)
class MetricComparison:
    """One tracked metric's baseline-vs-current verdict."""

    file: str
    metric: str
    direction: str
    baseline: float | None
    current: float | None
    #: Relative change in the *bad* direction (0.30 = 30% worse); 0 or
    #: negative when the metric held or improved; ``None`` when a value
    #: was missing.
    change: float | None
    regressed: bool
    note: str = ""


def metric_value(report: dict, dotted: str) -> float:
    """Resolve a dotted metric path (``"routing.routed_s"``) in a report.

    Raises:
        KeyError: when any path segment is missing or the leaf is not a
            number.
    """
    value: object = report
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError(f"metric {dotted!r} not found (missing {part!r})")
        value = value[part]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise KeyError(f"metric {dotted!r} is not a number: {value!r}")
    return float(value)


def _relative_change(direction: str, baseline: float, current: float) -> float:
    """How much worse ``current`` is than ``baseline`` (negative =
    improved), scaled so that ``change > threshold`` is exactly the
    documented trip point for either direction: ``current > baseline *
    (1 + threshold)`` when lower is better, ``current < baseline /
    (1 + threshold)`` when higher is better.  A zero/negative baseline
    cannot anchor a relative comparison and counts as no change."""
    if baseline <= 0:
        return 0.0
    if direction == "lower":
        return current / baseline - 1.0
    if current <= 0:
        return float("inf")
    return baseline / current - 1.0


def compare_reports(file_name: str, baseline: dict, current: dict,
                    metrics: dict[str, str],
                    threshold: float = DEFAULT_THRESHOLD,
                    ) -> list[MetricComparison]:
    """Compare one report's tracked ``metrics`` between two parsed runs.

    A metric missing from the *baseline* is skipped (new benchmarks have
    no history yet); one missing from the *current* run is itself a
    regression — the benchmark stopped reporting a guarded number.
    """
    comparisons = []
    for metric, direction in sorted(metrics.items()):
        try:
            base_value = metric_value(baseline, metric)
        except KeyError:
            comparisons.append(MetricComparison(
                file_name, metric, direction, None, None, None,
                regressed=False, note="no baseline value; skipped"))
            continue
        try:
            current_value = metric_value(current, metric)
        except KeyError as exc:
            comparisons.append(MetricComparison(
                file_name, metric, direction, base_value, None, None,
                regressed=True, note=f"missing from current run: {exc}"))
            continue
        change = _relative_change(direction, base_value, current_value)
        comparisons.append(MetricComparison(
            file_name, metric, direction, base_value, current_value,
            round(change, 4), regressed=change > threshold))
    return comparisons


def compare_dirs(baseline_dir: str | Path, current_dir: str | Path,
                 threshold: float = DEFAULT_THRESHOLD,
                 ) -> list[MetricComparison]:
    """Compare every tracked report present in ``baseline_dir`` against
    ``current_dir``.

    A tracked file absent from the baseline directory is skipped (nothing
    to regress against); a baseline file whose counterpart is missing
    from the current directory is a regression — the run stopped
    producing a guarded report.  Unparseable JSON on either side is a
    regression too (never silently passed over).
    """
    baseline_dir = Path(baseline_dir)
    current_dir = Path(current_dir)
    comparisons: list[MetricComparison] = []
    for file_name, metrics in sorted(TRACKED_METRICS.items()):
        baseline_path = baseline_dir / file_name
        if not baseline_path.exists():
            continue
        current_path = current_dir / file_name
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            comparisons.append(MetricComparison(
                file_name, "*", "-", None, None, None, regressed=True,
                note=f"baseline is not valid JSON: {exc}"))
            continue
        if not current_path.exists():
            comparisons.append(MetricComparison(
                file_name, "*", "-", None, None, None, regressed=True,
                note="report missing from current run"))
            continue
        try:
            current = json.loads(current_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            comparisons.append(MetricComparison(
                file_name, "*", "-", None, None, None, regressed=True,
                note=f"current report is not valid JSON: {exc}"))
            continue
        comparisons.extend(compare_reports(file_name, baseline, current,
                                           metrics, threshold))
    return comparisons


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def render_comparison(comparisons: list[MetricComparison],
                      threshold: float = DEFAULT_THRESHOLD) -> str:
    """The comparison as an ASCII table plus a one-line verdict."""
    rows = []
    for comparison in comparisons:
        if comparison.change is None:
            delta = "-"
        else:
            delta = f"{comparison.change * 100:+.1f}%"
        status = "REGRESSED" if comparison.regressed else "ok"
        rows.append([comparison.file, comparison.metric,
                     comparison.direction, _fmt(comparison.baseline),
                     _fmt(comparison.current), delta, status,
                     comparison.note])
    table = ascii_table(
        ("report", "metric", "better", "baseline", "current", "worse by",
         "status", "note"),
        rows,
        title=f"Benchmark regression check (threshold "
              f"{threshold * 100:.0f}%)",
    )
    regressed = [c for c in comparisons if c.regressed]
    if not comparisons:
        verdict = "no tracked reports found in the baseline directory"
    elif regressed:
        verdict = (f"FAIL: {len(regressed)} tracked metric(s) regressed "
                   f"beyond {threshold * 100:.0f}%")
    else:
        verdict = "PASS: no tracked metric regressed"
    return f"{table}\n{verdict}"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``benchmarks/check_regression.py`` and ``repro
    bench-diff`` both land here): prints the comparison table and returns
    1 when any tracked metric regressed, 0 otherwise."""
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json benchmark reports against "
                    "committed baselines; exit nonzero on a regression.",
    )
    parser.add_argument("baseline_dir",
                        help="directory holding the baseline BENCH_*.json "
                             "reports (e.g. benchmarks/baselines)")
    parser.add_argument("current_dir",
                        help="directory holding the run to check "
                             "(e.g. benchmarks/results)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed relative regression before failing "
                             f"(default {DEFAULT_THRESHOLD})")
    args = parser.parse_args(argv)
    comparisons = compare_dirs(args.baseline_dir, args.current_dir,
                               args.threshold)
    print(render_comparison(comparisons, args.threshold))
    return 1 if any(c.regressed for c in comparisons) else 0


if __name__ == "__main__":
    sys.exit(main())

"""Secondary indexes: exact hash index and inverted text index.

The hash index accelerates equality probes on one column.  The text index is
the substrate for entity recognition (query segmentation) and for the BANKS
baseline: it maps normalized tokens to the rows whose searchable text
contains them, and supports greedy longest-phrase lookup.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import IndexError_
from repro.relational.table import Table
from repro.utils.text import normalize

__all__ = ["HashIndex", "TextIndex"]


class HashIndex:
    """Exact-match index ``value -> [row_id]`` over one column of one table.

    Text values are normalized so lookups are case/accent-insensitive,
    matching the comparison semantics of the expression layer.
    """

    def __init__(self, table: Table, column: str):
        table.schema.column(column)
        self.table_name = table.schema.name
        self.column = column
        self._buckets: dict[object, list[int]] = {}
        for row_id, row in enumerate(table):
            value = row[column]
            if value is None:
                continue
            self._buckets.setdefault(self._key(value), []).append(row_id)

    @staticmethod
    def _key(value: object) -> object:
        if isinstance(value, str):
            return normalize(value)
        return value

    def lookup(self, value: object) -> list[int]:
        """Row ids whose column equals ``value`` (normalized for text)."""
        return list(self._buckets.get(self._key(value), ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def distinct_keys(self) -> int:
        return len(self._buckets)


class TextIndex:
    """Inverted index over the searchable text columns of many tables.

    Postings map a token to ``(table, column, row_id)`` triples.  The index
    also keeps full normalized values so that multi-token phrases ("george
    clooney") can be matched exactly — the paper's segmenter looks for the
    *largest* string overlap with entities in the database.
    """

    def __init__(self) -> None:
        self._postings: dict[str, set[tuple[str, str, int]]] = {}
        self._values: dict[str, set[tuple[str, str, int]]] = {}
        self._sources: list[tuple[str, str]] = []

    def add_table(self, table: Table, columns: Iterable[str] | None = None) -> int:
        """Index the given columns (default: all searchable); returns #rows."""
        schema = table.schema
        if columns is None:
            names = [column.name for column in schema.searchable_columns()]
        else:
            names = list(columns)
            for name in names:
                schema.column(name)
        indexed = 0
        for name in names:
            self._sources.append((schema.name, name))
        for row_id, row in enumerate(table):
            touched = False
            for name in names:
                value = row[name]
                if not isinstance(value, str) or not value:
                    continue
                touched = True
                location = (schema.name, name, row_id)
                norm = normalize(value)
                if norm:
                    self._values.setdefault(norm, set()).add(location)
                for token in norm.split():
                    self._postings.setdefault(token, set()).add(location)
            if touched:
                indexed += 1
        return indexed

    # -- queries ------------------------------------------------------------

    def rows_with_token(self, token: str) -> set[tuple[str, str, int]]:
        """Postings for one normalized token."""
        return set(self._postings.get(normalize(token), ()))

    def rows_with_phrase(self, phrase: str) -> set[tuple[str, str, int]]:
        """Rows whose full field value equals the normalized phrase."""
        return set(self._values.get(normalize(phrase), ()))

    def has_phrase(self, phrase: str) -> bool:
        return normalize(phrase) in self._values

    def vocabulary_size(self) -> int:
        return len(self._postings)

    @property
    def sources(self) -> list[tuple[str, str]]:
        """(table, column) pairs that were indexed."""
        return list(self._sources)

    def __contains__(self, token: str) -> bool:
        return normalize(token) in self._postings

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(normalize(token), ()))

    def validate(self) -> None:
        """Internal consistency: every phrase posting has token postings."""
        for phrase, locations in self._values.items():
            for token in phrase.split():
                token_postings = self._postings.get(token, set())
                if not locations <= token_postings:
                    raise IndexError_(
                        f"phrase {phrase!r} has postings missing from token {token!r}"
                    )

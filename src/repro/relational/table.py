"""Row storage for a single table, with type and key validation.

Rows are stored as dicts keyed by *unqualified* column names.  The algebra
layer qualifies them (``table.column``) when rows enter a pipeline, so that
joins of many tables never collide.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import IntegrityError, SchemaError, TypeMismatchError
from repro.relational.schema import TableSchema

__all__ = ["Table"]

Row = dict[str, object]


class Table:
    """An insert-only heap of validated rows plus a primary-key index."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: list[Row] = []
        self._pk_index: dict[object, int] = {}

    # -- mutation -----------------------------------------------------------

    def insert(self, values: Mapping[str, object]) -> int:
        """Validate and append one row; returns its 0-based row id."""
        row = self._validated(values)
        pk = self.schema.primary_key
        if pk is not None:
            key = row[pk]
            if key is None:
                raise IntegrityError(
                    f"{self.schema.name}: primary key {pk!r} may not be null"
                )
            if key in self._pk_index:
                raise IntegrityError(
                    f"{self.schema.name}: duplicate primary key {key!r}"
                )
            self._pk_index[key] = len(self._rows)
        self._rows.append(row)
        return len(self._rows) - 1

    def _validated(self, values: Mapping[str, object]) -> Row:
        unknown = set(values) - set(self.schema.column_names)
        if unknown:
            raise SchemaError(
                f"{self.schema.name}: unknown columns in insert: {sorted(unknown)}"
            )
        row: Row = {}
        for column in self.schema.columns:
            value = values.get(column.name)
            if value is None:
                if not column.nullable:
                    raise IntegrityError(
                        f"{self.schema.name}.{column.name} is not nullable"
                    )
                row[column.name] = None
                continue
            if not column.type.accepts(value):
                raise TypeMismatchError(
                    f"{self.schema.name}.{column.name}", column.type.value, value
                )
            # Normalize ints stored in float columns so comparisons behave.
            if column.type.name == "FLOAT" and isinstance(value, int):
                value = float(value)
            row[column.name] = value
        return row

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def row(self, row_id: int) -> Row:
        return self._rows[row_id]

    def by_primary_key(self, key: object) -> Row | None:
        """O(1) lookup through the primary-key index."""
        if self.schema.primary_key is None:
            raise IntegrityError(
                f"table {self.schema.name!r} has no primary key"
            )
        row_id = self._pk_index.get(key)
        return None if row_id is None else self._rows[row_id]

    def column_values(self, column_name: str) -> list[object]:
        """All values of one column, in row order (including nulls)."""
        self.schema.column(column_name)
        return [row[column_name] for row in self._rows]

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, {len(self._rows)} rows)"

"""In-memory relational engine.

This package is the "structured database" substrate of the reproduction:
a typed schema with primary/foreign keys, row storage with integrity
checking, secondary indexes (hash and inverted text), a relational-algebra
executor, a statistics catalog, and a SQL-subset front end (see
``repro.relational.sql``).

The engine is deliberately small but real: the qunit base expressions from
the paper are ordinary SQL views executed here, and the baselines (BANKS,
LCA/MLCA) consume the same tables through the graph/XML adapters.
"""

from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Plan,
    Project,
    Scan,
    Sort,
    execute,
)
from repro.relational.catalog import ColumnStatistics, StatisticsCatalog, TableStatistics
from repro.relational.database import Database
from repro.relational.expr import (
    And,
    ColumnRef,
    Comparison,
    Contains,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    Param,
)
from repro.relational.indexes import HashIndex, TextIndex
from repro.relational.io import load_database, save_database
from repro.relational.schema import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.relational.table import Table

__all__ = [
    "Database",
    "Table",
    "Schema",
    "TableSchema",
    "Column",
    "ColumnType",
    "ForeignKey",
    "Expression",
    "ColumnRef",
    "Literal",
    "Param",
    "Comparison",
    "And",
    "Or",
    "Not",
    "InList",
    "IsNull",
    "Contains",
    "Plan",
    "Scan",
    "Filter",
    "Project",
    "HashJoin",
    "Aggregate",
    "AggregateSpec",
    "Sort",
    "Limit",
    "Distinct",
    "execute",
    "HashIndex",
    "TextIndex",
    "StatisticsCatalog",
    "TableStatistics",
    "ColumnStatistics",
    "save_database",
    "load_database",
]

"""Recursive-descent parser for the SQL subset.

Also exposes :func:`split_return_clause` for the paper's qunit-definition
syntax, where a SELECT statement is followed by ``RETURN <template markup>``;
the template half is *not* SQL and is handed to the presentation layer
verbatim.
"""

from __future__ import annotations

import re

from repro.errors import SqlSyntaxError
from repro.relational.expr import (
    And,
    ColumnRef,
    Comparison,
    Contains,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    Param,
)
from repro.relational.sql.ast import (
    AggregateCall,
    ColumnItem,
    OrderItem,
    SelectStatement,
    StarItem,
    TableRef,
)
from repro.relational.sql.lexer import Token, tokenize

__all__ = ["parse_select", "split_return_clause"]

_AGGREGATES = ("count", "sum", "min", "max", "avg")
_RETURN_SPLIT = re.compile(r"\bRETURN\b", re.IGNORECASE)


def split_return_clause(text: str) -> tuple[str, str | None]:
    """Split ``SELECT ... RETURN <template>`` into (sql, template|None).

    Only a RETURN outside string literals splits; a movie titled
    "Return of the King" in a WHERE clause must not.
    """
    in_string: str | None = None
    index = 0
    while index < len(text):
        char = text[index]
        if in_string is not None:
            if char == in_string:
                in_string = None
            index += 1
            continue
        if char in ("'", '"'):
            in_string = char
            index += 1
            continue
        match = _RETURN_SPLIT.match(text, index)
        if match and _is_word_boundary(text, index, match.end()):
            return text[:index].strip(), text[match.end():].strip()
        index += 1
    return text.strip(), None


def _is_word_boundary(text: str, start: int, end: int) -> bool:
    before_ok = start == 0 or not (text[start - 1].isalnum() or text[start - 1] == "_")
    after_ok = end >= len(text) or not (text[end].isalnum() or text[end] == "_")
    return before_ok and after_ok


def parse_select(sql: str) -> SelectStatement:
    """Parse a SELECT statement; raises :class:`SqlSyntaxError` on failure."""
    return _Parser(sql).parse()


class _Parser:
    def __init__(self, sql: str):
        self._text = sql
        self._tokens = tokenize(sql)
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._current
        if not token.matches(kind, value):
            want = f"{kind} {value!r}" if value else kind
            raise SqlSyntaxError(
                f"expected {want}, found {token.kind} {token.value!r}",
                token.position, self._text,
            )
        return self._advance()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._current.matches(kind, value):
            return self._advance()
        return None

    # -- grammar -------------------------------------------------------------

    def parse(self) -> SelectStatement:
        self._expect("keyword", "select")
        distinct = bool(self._accept("keyword", "distinct"))
        select_items = self._select_list()
        self._expect("keyword", "from")
        from_tables = self._table_list()
        where = None
        if self._accept("keyword", "where"):
            where = self._condition()
        group_by: tuple[ColumnItem, ...] = ()
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by = tuple(self._column_list())
        order_by: tuple[OrderItem, ...] = ()
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by = tuple(self._order_list())
        limit: int | None = None
        if self._accept("keyword", "limit"):
            token = self._expect("number")
            limit = int(float(token.value))
            if limit < 0:
                raise SqlSyntaxError("LIMIT must be non-negative", token.position, self._text)
        self._expect("eof")
        return SelectStatement(
            select_items=tuple(select_items),
            from_tables=tuple(from_tables),
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _select_list(self) -> list[object]:
        items: list[object] = []
        while True:
            items.append(self._select_item())
            if not self._accept("comma"):
                return items

    def _select_item(self) -> object:
        if self._accept("star"):
            return StarItem()
        if self._current.kind == "keyword" and self._current.value in _AGGREGATES:
            return self._aggregate_call()
        column = self._column_item()
        output = self._optional_alias()
        if output:
            return ColumnItem(column.table, column.column, output)
        return column

    def _aggregate_call(self) -> AggregateCall:
        function = self._advance().value
        self._expect("lparen")
        argument: ColumnItem | None = None
        if self._accept("star"):
            if function != "count":
                raise SqlSyntaxError(
                    f"{function.upper()}(*) is not supported",
                    self._current.position, self._text,
                )
        else:
            argument = self._column_item()
        self._expect("rparen")
        output = self._optional_alias()
        return AggregateCall(function, argument, output)

    def _optional_alias(self) -> str | None:
        if self._accept("keyword", "as"):
            return self._expect("ident").value
        return None

    def _column_item(self) -> ColumnItem:
        first = self._expect("ident").value
        self._expect("dot")
        second = self._expect("ident").value
        return ColumnItem(first, second)

    def _column_list(self) -> list[ColumnItem]:
        columns = [self._column_item()]
        while self._accept("comma"):
            columns.append(self._column_item())
        return columns

    def _order_list(self) -> list[OrderItem]:
        items = [self._order_item()]
        while self._accept("comma"):
            items.append(self._order_item())
        return items

    def _order_item(self) -> OrderItem:
        column = self._column_item()
        descending = False
        if self._accept("keyword", "desc"):
            descending = True
        else:
            self._accept("keyword", "asc")
        return OrderItem(column, descending)

    def _table_list(self) -> list[TableRef]:
        tables = [self._table_ref()]
        while self._accept("comma"):
            tables.append(self._table_ref())
        return tables

    def _table_ref(self) -> TableRef:
        name = self._expect("ident").value
        if self._accept("keyword", "as"):
            return TableRef(name, self._expect("ident").value)
        if self._current.kind == "ident":
            return TableRef(name, self._advance().value)
        return TableRef(name)

    # -- conditions ----------------------------------------------------------

    def _condition(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self._accept("keyword", "or"):
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self._accept("keyword", "and"):
            left = And(left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self._accept("keyword", "not"):
            return Not(self._not_expr())
        return self._primary()

    def _primary(self) -> Expression:
        if self._accept("lparen"):
            inner = self._condition()
            self._expect("rparen")
            return inner
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._operand()
        if self._accept("keyword", "is"):
            negated = bool(self._accept("keyword", "not"))
            self._expect("keyword", "null")
            return IsNull(left, negated)
        if self._accept("keyword", "like"):
            token = self._expect("string")
            needle = token.value.strip("%")
            return Contains(left, Literal(needle))
        if self._accept("keyword", "in"):
            self._expect("lparen")
            values = [self._literal_value()]
            while self._accept("comma"):
                values.append(self._literal_value())
            self._expect("rparen")
            return InList(left, tuple(values))
        op_token = self._expect("op")
        right = self._operand()
        return Comparison(op_token.value, left, right)

    def _operand(self) -> Expression:
        token = self._current
        if token.kind == "ident":
            return ColumnRef(*self._split_column())
        if token.kind == "param":
            self._advance()
            return Param(token.value)
        if token.kind == "string":
            self._advance()
            # The paper writes parameters as quoted "$x"; honor that form.
            if token.value.startswith("$") and len(token.value) > 1:
                return Param(token.value[1:])
            return Literal(token.value)
        if token.kind == "number":
            self._advance()
            return Literal(_number(token.value))
        if token.kind == "keyword" and token.value == "null":
            self._advance()
            return Literal(None)
        raise SqlSyntaxError(
            f"expected an operand, found {token.kind} {token.value!r}",
            token.position, self._text,
        )

    def _split_column(self) -> tuple[str, str]:
        first = self._expect("ident").value
        self._expect("dot")
        second = self._expect("ident").value
        return first, second

    def _literal_value(self) -> object:
        token = self._current
        if token.kind == "string":
            self._advance()
            return token.value
        if token.kind == "number":
            self._advance()
            return _number(token.value)
        if token.kind == "keyword" and token.value == "null":
            self._advance()
            return None
        raise SqlSyntaxError(
            f"expected a literal, found {token.kind} {token.value!r}",
            token.position, self._text,
        )


def _number(text: str) -> object:
    if "." in text:
        return float(text)
    return int(text)

"""Compile a parsed SELECT statement to an executable algebra plan.

The compiler performs the textbook steps a small optimizer would:

1. validate every table/column reference against the schema;
2. split the WHERE conjunction into single-table predicates (pushed below
   the joins) and cross-table equality predicates (turned into hash joins);
3. build a join tree greedily over the connected join graph, falling back
   to FK metadata when the query author omitted a join predicate, and to a
   nested-loop product only as a last resort;
4. apply residual predicates, grouping/aggregation, distinct, order, limit.
"""

from __future__ import annotations

from repro.errors import PlanError, SqlSyntaxError, UnknownColumnError
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Plan,
    Project,
    Scan,
    Sort,
)
from repro.relational.expr import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
)
from repro.relational.sql.ast import (
    AggregateCall,
    ColumnItem,
    SelectStatement,
    StarItem,
    TableRef,
)

__all__ = ["compile_select"]


def compile_select(statement: SelectStatement, database) -> Plan:
    """Turn a validated AST into an executable plan."""
    bindings = _bind_tables(statement, database)
    _validate_references(statement, bindings, database)

    conjuncts = _split_conjunction(statement.where)
    single_table, join_preds, residual = _classify_predicates(conjuncts, bindings)

    plan = _build_join_tree(statement.from_tables, single_table, join_preds,
                            bindings, database)
    for predicate in residual:
        plan = Filter(plan, predicate)

    if statement.is_aggregate:
        plan = _apply_aggregation(statement, plan)
    else:
        plan = _apply_projection(statement, plan, bindings, database)

    if statement.distinct:
        plan = Distinct(plan)
    if statement.order_by:
        keys = tuple(item.column.qualified for item in statement.order_by)
        descending = statement.order_by[0].descending
        plan = Sort(plan, keys, descending)
    if statement.limit is not None:
        plan = Limit(plan, statement.limit)
    return plan


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def _bind_tables(statement: SelectStatement, database) -> dict[str, str]:
    """Map binding name (alias or table) -> real table name."""
    bindings: dict[str, str] = {}
    for ref in statement.from_tables:
        database.schema.table(ref.table)  # raises UnknownTableError
        if ref.binding in bindings:
            raise SqlSyntaxError(f"duplicate table binding {ref.binding!r}")
        bindings[ref.binding] = ref.table
    return bindings


def _validate_references(statement: SelectStatement, bindings: dict[str, str],
                         database) -> None:
    def check(item: ColumnItem) -> None:
        if item.table not in bindings:
            raise PlanError(
                f"column {item.qualified!r} references a table not in FROM "
                f"(bindings: {sorted(bindings)})"
            )
        schema = database.schema.table(bindings[item.table])
        if not schema.has_column(item.column):
            raise UnknownColumnError(schema.name, item.column,
                                     tuple(schema.column_names))

    for select_item in statement.select_items:
        if isinstance(select_item, ColumnItem):
            check(select_item)
        elif isinstance(select_item, AggregateCall) and select_item.argument:
            check(select_item.argument)
    for column in statement.group_by:
        check(column)
    for order in statement.order_by:
        check(order.column)
    if statement.where is not None:
        for qualified in statement.where.references():
            table, _, column = qualified.partition(".")
            check(ColumnItem(table, column))


# ---------------------------------------------------------------------------
# Predicate classification
# ---------------------------------------------------------------------------

def _split_conjunction(expression: Expression | None) -> list[Expression]:
    if expression is None:
        return []
    if isinstance(expression, And):
        return _split_conjunction(expression.left) + _split_conjunction(expression.right)
    return [expression]


def _tables_of(expression: Expression) -> set[str]:
    return {qualified.partition(".")[0] for qualified in expression.references()}


def _classify_predicates(
    conjuncts: list[Expression], bindings: dict[str, str]
) -> tuple[dict[str, list[Expression]], list[Comparison], list[Expression]]:
    """Partition into per-table filters, equi-join predicates, residual."""
    single_table: dict[str, list[Expression]] = {name: [] for name in bindings}
    joins: list[Comparison] = []
    residual: list[Expression] = []
    for predicate in conjuncts:
        tables = _tables_of(predicate)
        if len(tables) <= 1:
            if tables:
                single_table[next(iter(tables))].append(predicate)
            else:
                residual.append(predicate)  # constant predicate
            continue
        if (
            isinstance(predicate, Comparison)
            and predicate.op == "="
            and isinstance(predicate.left, ColumnRef)
            and isinstance(predicate.right, ColumnRef)
            and len(tables) == 2
        ):
            joins.append(predicate)
        else:
            residual.append(predicate)
    return single_table, joins, residual


# ---------------------------------------------------------------------------
# Join tree construction
# ---------------------------------------------------------------------------

def _build_join_tree(
    from_tables: tuple[TableRef, ...],
    single_table: dict[str, list[Expression]],
    join_preds: list[Comparison],
    bindings: dict[str, str],
    database,
) -> Plan:
    # Base access path per binding, with pushed-down filters.
    subplans: dict[str, Plan] = {}
    for ref in from_tables:
        plan: Plan = Scan(ref.table, ref.alias)
        for predicate in single_table.get(ref.binding, ()):
            plan = Filter(plan, predicate)
        subplans[ref.binding] = plan

    # Components: binding -> component id; merge as joins connect them.
    joined: dict[str, set[str]] = {name: {name} for name in subplans}
    plans: dict[str, Plan] = dict(subplans)
    pending = list(join_preds)

    def component_of(binding: str) -> str:
        for root, members in joined.items():
            if binding in members:
                return root
        raise PlanError(f"binding {binding!r} lost from join bookkeeping")

    progress = True
    while pending and progress:
        progress = False
        for predicate in list(pending):
            left_ref = predicate.left
            right_ref = predicate.right
            assert isinstance(left_ref, ColumnRef) and isinstance(right_ref, ColumnRef)
            left_root = component_of(left_ref.table)
            right_root = component_of(right_ref.table)
            if left_root == right_root:
                # Redundant join predicate inside one component: filter.
                plans[left_root] = Filter(plans[left_root], predicate)
                pending.remove(predicate)
                progress = True
                continue
            plans[left_root] = HashJoin(
                plans[left_root], plans[right_root],
                left_key=left_ref.qualified, right_key=right_ref.qualified,
            )
            joined[left_root] |= joined.pop(right_root)
            plans.pop(right_root)
            pending.remove(predicate)
            progress = True

    # Connect remaining components: try FK metadata, else cross product.
    roots = list(plans)
    while len(roots) > 1:
        left_root, right_root = roots[0], roots[1]
        fk_join = _fk_join_between(joined[left_root], joined[right_root],
                                   bindings, database)
        if fk_join is not None:
            left_key, right_key = fk_join
            plans[left_root] = HashJoin(
                plans[left_root], plans[right_root], left_key, right_key
            )
        else:
            plans[left_root] = NestedLoopJoin(
                plans[left_root], plans[right_root], Literal(True)
            )
        joined[left_root] |= joined.pop(right_root)
        plans.pop(right_root)
        roots = list(plans)

    return plans[roots[0]]


def _fk_join_between(
    left_bindings: set[str], right_bindings: set[str],
    bindings: dict[str, str], database,
) -> tuple[str, str] | None:
    """Find an FK-implied equi-join between two sets of bound tables."""
    for left_binding in sorted(left_bindings):
        for right_binding in sorted(right_bindings):
            condition = database.schema.join_condition(
                bindings[left_binding], bindings[right_binding]
            )
            if condition is not None:
                left_column, right_column = condition
                return (
                    f"{left_binding}.{left_column}",
                    f"{right_binding}.{right_column}",
                )
    return None


# ---------------------------------------------------------------------------
# Output shaping
# ---------------------------------------------------------------------------

def _apply_projection(statement: SelectStatement, plan: Plan,
                      bindings: dict[str, str], database) -> Plan:
    if any(isinstance(item, StarItem) for item in statement.select_items):
        if len(statement.select_items) != 1:
            raise SqlSyntaxError("SELECT * cannot be combined with other items")
        return plan  # all qualified columns pass through
    columns: list[str] = []
    renames: list[tuple[str, str]] = []
    for item in statement.select_items:
        assert isinstance(item, ColumnItem)
        if item.output_name:
            renames.append((item.output_name, item.qualified))
        else:
            columns.append(item.qualified)
    return Project(plan, tuple(columns), tuple(renames))


def _apply_aggregation(statement: SelectStatement, plan: Plan) -> Plan:
    keys = tuple(column.qualified for column in statement.group_by)
    specs: list[AggregateSpec] = []
    for item in statement.select_items:
        if isinstance(item, AggregateCall):
            specs.append(AggregateSpec(
                function=item.function,
                input=item.argument.qualified if item.argument else None,
                output=item.output_name or item.default_name,
            ))
        elif isinstance(item, ColumnItem):
            if item.qualified not in keys:
                raise SqlSyntaxError(
                    f"non-aggregated column {item.qualified!r} must appear in GROUP BY"
                )
        elif isinstance(item, StarItem):
            raise SqlSyntaxError("SELECT * cannot be combined with aggregates")
    return Aggregate(plan, keys, tuple(specs))

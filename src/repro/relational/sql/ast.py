"""AST nodes produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.expr import Expression

__all__ = [
    "TableRef",
    "StarItem",
    "ColumnItem",
    "AggregateCall",
    "OrderItem",
    "SelectStatement",
]


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause entry: table name plus optional alias."""

    table: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class StarItem:
    """``SELECT *`` — all columns of all FROM tables."""


@dataclass(frozen=True)
class ColumnItem:
    """``alias.column [AS name]`` in the select list."""

    table: str
    column: str
    output_name: str | None = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class AggregateCall:
    """``COUNT(*)`` / ``SUM(t.c)`` etc. in the select list."""

    function: str
    argument: ColumnItem | None
    output_name: str | None = None

    @property
    def default_name(self) -> str:
        if self.argument is None:
            return f"{self.function}_star"
        return f"{self.function}_{self.argument.table}_{self.argument.column}"


@dataclass(frozen=True)
class OrderItem:
    column: ColumnItem
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT query."""

    select_items: tuple[object, ...]  # StarItem | ColumnItem | AggregateCall
    from_tables: tuple[TableRef, ...]
    where: Expression | None = None
    group_by: tuple[ColumnItem, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return bool(self.group_by) or any(
            isinstance(item, AggregateCall) for item in self.select_items
        )

    def referenced_tables(self) -> list[str]:
        return [ref.table for ref in self.from_tables]

"""SQL-subset front end.

Supports the query shape the paper writes qunit base expressions in::

    SELECT person.name, movie.title
    FROM person, cast, movie
    WHERE cast.movie_id = movie.id
      AND cast.person_id = person.id
      AND movie.title = "$x"
    ORDER BY person.name LIMIT 10

plus ``SELECT DISTINCT``, ``COUNT/SUM/MIN/MAX/AVG`` with ``GROUP BY``,
``LIKE`` (contains), ``IN`` lists, ``IS [NOT] NULL``, table aliases, and
``$name`` parameters.  ``split_return_clause`` separates the paper's
``SELECT ... RETURN <template>`` qunit-definition syntax into its SQL and
template halves.
"""

from repro.relational.sql.ast import (
    AggregateCall,
    ColumnItem,
    SelectStatement,
    StarItem,
    TableRef,
)
from repro.relational.sql.compiler import compile_select
from repro.relational.sql.lexer import Token, tokenize
from repro.relational.sql.parser import parse_select, split_return_clause

__all__ = [
    "tokenize",
    "Token",
    "parse_select",
    "split_return_clause",
    "compile_select",
    "SelectStatement",
    "TableRef",
    "ColumnItem",
    "StarItem",
    "AggregateCall",
]


def run_sql(sql: str, database, params=None) -> list[dict[str, object]]:
    """Parse, compile and execute a SELECT statement; returns all rows."""
    from repro.relational.algebra import execute

    statement = parse_select(sql)
    plan = compile_select(statement, database)
    return list(execute(plan, database, params))

"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "select", "distinct", "from", "where", "and", "or", "not", "in",
    "like", "is", "null", "as", "order", "by", "group", "limit",
    "asc", "desc", "return", "count", "sum", "min", "max", "avg",
}

_PUNCTUATION = {
    "(": "lparen",
    ")": "rparen",
    ",": "comma",
    "*": "star",
    ".": "dot",
}

_OPERATOR_STARTS = "=<>!"


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` is keyword/ident/number/string/param/op/punct."""

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[char], char, index))
            index += 1
            continue
        if char in _OPERATOR_STARTS:
            two = text[index:index + 2]
            if two in ("<=", ">=", "!=", "<>"):
                value = "!=" if two == "<>" else two
                tokens.append(Token("op", value, index))
                index += 2
                continue
            if char in "=<>":
                tokens.append(Token("op", char, index))
                index += 1
                continue
            raise SqlSyntaxError(f"unexpected character {char!r}", index, text)
        if char in ("'", '"'):
            token, index = _read_string(text, index)
            tokens.append(token)
            continue
        if char == "$":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == index + 1:
                raise SqlSyntaxError("empty parameter name", index, text)
            tokens.append(Token("param", text[index + 1:end], index))
            index = end
            continue
        if char.isdigit() or (char == "-" and index + 1 < length and text[index + 1].isdigit()):
            end = index + 1
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # A dot is part of the number only if digits follow.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token("number", text[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            value = word.lower() if kind == "keyword" else word
            tokens.append(Token(kind, value, index))
            index = end
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", index, text)
    tokens.append(Token("eof", "", length))
    return tokens


def _read_string(text: str, start: int) -> tuple[Token, int]:
    """Read a quoted literal; returns the token and the index just past it."""
    quote = text[start]
    end = start + 1
    chunks: list[str] = []
    while end < len(text):
        char = text[end]
        if char == quote:
            if end + 1 < len(text) and text[end + 1] == quote:
                chunks.append(quote)
                end += 2
                continue
            return Token("string", "".join(chunks), start), end + 1
        chunks.append(char)
        end += 1
    raise SqlSyntaxError("unterminated string literal", start, text)

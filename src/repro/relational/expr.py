"""Scalar/predicate expression trees evaluated over qualified rows.

Rows reaching an expression are dicts keyed ``"table.column"`` (or an alias
prefix).  Expressions support parameters (``Param``) which must be bound via
a parameter mapping at evaluation time — this is how qunit base expressions
like ``movie.title = "$x"`` are instantiated per qunit instance.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import BindError, PlanError
from repro.utils.text import normalize

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "Param",
    "Comparison",
    "And",
    "Or",
    "Not",
    "InList",
    "IsNull",
    "Contains",
]

QualifiedRow = Mapping[str, object]
Params = Mapping[str, object]

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Expression:
    """Base class; subclasses implement :meth:`evaluate`."""

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        raise NotImplementedError

    def references(self) -> set[str]:
        """Qualified column names this expression reads."""
        return set()

    def param_names(self) -> set[str]:
        """Names of unbound parameters anywhere in the tree."""
        return set()


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a qualified column, e.g. ``ColumnRef("movie", "title")``."""

    table: str
    column: str

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}"

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        try:
            return row[self.qualified]
        except KeyError:
            raise PlanError(
                f"column {self.qualified!r} not present in row; "
                f"available: {sorted(row)}"
            ) from None

    def references(self) -> set[str]:
        return {self.qualified}

    def __str__(self) -> str:
        return self.qualified


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: object

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Param(Expression):
    """A named query parameter (``$name`` in SQL text)."""

    name: str

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        if params is None or self.name not in params:
            raise BindError(f"unbound parameter ${self.name}")
        return params[self.name]

    def param_names(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison with null-rejecting semantics (SQL-style)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PlanError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        left = self.left.evaluate(row, params)
        right = self.right.evaluate(row, params)
        if left is None or right is None:
            return False
        # Text equality is case/accent-insensitive: keyword search over the
        # database should not care about capitalization of stored values.
        if isinstance(left, str) and isinstance(right, str):
            left, right = normalize(left), normalize(right)
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError:
            return False

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def param_names(self) -> set[str]:
        return self.left.param_names() | self.right.param_names()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        return bool(self.left.evaluate(row, params)) and bool(self.right.evaluate(row, params))

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def param_names(self) -> set[str]:
        return self.left.param_names() | self.right.param_names()

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        return bool(self.left.evaluate(row, params)) or bool(self.right.evaluate(row, params))

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def param_names(self) -> set[str]:
        return self.left.param_names() | self.right.param_names()

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        return not bool(self.operand.evaluate(row, params))

    def references(self) -> set[str]:
        return self.operand.references()

    def param_names(self) -> set[str]:
        return self.operand.param_names()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class InList(Expression):
    """``expr IN (v1, v2, ...)`` with normalized text membership."""

    operand: Expression
    values: tuple[object, ...]

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        value = self.operand.evaluate(row, params)
        if value is None:
            return False
        if isinstance(value, str):
            norm = normalize(value)
            return any(isinstance(v, str) and normalize(v) == norm for v in self.values)
        return value in self.values

    def references(self) -> set[str]:
        return self.operand.references()

    def param_names(self) -> set[str]:
        return self.operand.param_names()

    def __str__(self) -> str:
        inner = ", ".join(str(Literal(v)) for v in self.values)
        return f"{self.operand} IN ({inner})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS NULL`` (or negated)."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        is_null = self.operand.evaluate(row, params) is None
        return not is_null if self.negated else is_null

    def references(self) -> set[str]:
        return self.operand.references()

    def param_names(self) -> set[str]:
        return self.operand.param_names()

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {suffix}"


@dataclass(frozen=True)
class Contains(Expression):
    """Substring containment over normalized text (SQL ``LIKE '%needle%'``)."""

    operand: Expression
    needle: Expression

    def evaluate(self, row: QualifiedRow, params: Params | None = None) -> object:
        haystack = self.operand.evaluate(row, params)
        needle = self.needle.evaluate(row, params)
        if not isinstance(haystack, str) or not isinstance(needle, str):
            return False
        return normalize(needle) in normalize(haystack)

    def references(self) -> set[str]:
        return self.operand.references() | self.needle.references()

    def param_names(self) -> set[str]:
        return self.operand.param_names() | self.needle.param_names()

    def __str__(self) -> str:
        return f"{self.operand} CONTAINS {self.needle}"

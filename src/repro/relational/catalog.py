"""Statistics catalog: cardinalities and value distributions per column.

Queriability scoring (Sec. 4.1 of the paper, following Jayapandian &
Jagadish) is computed from exactly these statistics, so the catalog is the
bridge between raw storage and qunit derivation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.table import Table

__all__ = ["ColumnStatistics", "TableStatistics", "StatisticsCatalog"]


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics of one column."""

    table: str
    column: str
    row_count: int
    null_count: int
    distinct_count: int
    avg_text_length: float
    is_id_like: bool
    searchable: bool

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    @property
    def distinct_ratio(self) -> float:
        """Distinct values over non-null values (1.0 = key-like)."""
        non_null = self.row_count - self.null_count
        return self.distinct_count / non_null if non_null else 0.0


@dataclass(frozen=True)
class TableStatistics:
    """Summary statistics of one table."""

    table: str
    row_count: int
    columns: tuple[ColumnStatistics, ...]

    def column(self, name: str) -> ColumnStatistics:
        for stats in self.columns:
            if stats.column == name:
                return stats
        raise KeyError(f"no statistics for column {self.table}.{name}")


class StatisticsCatalog:
    """Lazily computed, cached statistics for every table in a database."""

    def __init__(self, database) -> None:
        self._database = database
        self._cache: dict[str, TableStatistics] = {}

    def table(self, name: str) -> TableStatistics:
        if name not in self._cache:
            self._cache[name] = self._compute(self._database.table(name))
        return self._cache[name]

    def column(self, table: str, column: str) -> ColumnStatistics:
        return self.table(table).column(column)

    def all_tables(self) -> list[TableStatistics]:
        return [self.table(name) for name in self._database.schema.table_names]

    def total_rows(self) -> int:
        return sum(stats.row_count for stats in self.all_tables())

    def invalidate(self, table: str | None = None) -> None:
        """Drop cached stats (all, or one table) after data changes."""
        if table is None:
            self._cache.clear()
        else:
            self._cache.pop(table, None)

    @staticmethod
    def _compute(table: Table) -> TableStatistics:
        schema = table.schema
        row_count = len(table)
        column_stats = []
        for column in schema.columns:
            values = table.column_values(column.name)
            non_null = [value for value in values if value is not None]
            distinct: set[object] = set()
            text_lengths = 0
            text_count = 0
            for value in non_null:
                distinct.add(value)
                if isinstance(value, str):
                    text_lengths += len(value)
                    text_count += 1
            column_stats.append(ColumnStatistics(
                table=schema.name,
                column=column.name,
                row_count=row_count,
                null_count=row_count - len(non_null),
                distinct_count=len(distinct),
                avg_text_length=text_lengths / text_count if text_count else 0.0,
                is_id_like=schema.is_id_like(column.name),
                searchable=column.searchable,
            ))
        return TableStatistics(schema.name, row_count, tuple(column_stats))

"""Schema objects: column types, columns, tables, foreign keys.

A :class:`Schema` is a validated collection of :class:`TableSchema` objects.
Schemas know which columns are "id-like" (primary keys, foreign keys,
``*_id`` names) — a distinction the paper leans on: id plumbing is meaningful
to the storage layer but meaningless to a searcher, and qunit derivation must
treat it accordingly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError

__all__ = ["ColumnType", "Column", "ForeignKey", "TableSchema", "Schema"]


class ColumnType(enum.Enum):
    """Value domain of a column."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"

    def accepts(self, value: object) -> bool:
        """Whether a (non-null) Python value is valid for this type."""
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        return isinstance(value, bool)


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``searchable`` marks columns whose values are sensible targets for
    keyword matching (names, titles, descriptive text).  Derivation and the
    entity recognizer only index searchable columns.
    """

    name: str
    type: ColumnType
    nullable: bool = True
    searchable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign key ``table.column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


class TableSchema:
    """Schema of one table: ordered columns, primary key, foreign keys."""

    def __init__(self, name: str, columns: list[Column],
                 primary_key: str | None = None,
                 foreign_keys: list[ForeignKey] | None = None):
        if not name or not name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid table name {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        seen: set[str] = set()
        for column in columns:
            if column.name in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            seen.add(column.name)

        self.name = name
        self.columns = list(columns)
        self._by_name = {column.name: column for column in columns}
        self.primary_key = primary_key
        self.foreign_keys = list(foreign_keys or [])

        if primary_key is not None and primary_key not in self._by_name:
            raise SchemaError(
                f"primary key {primary_key!r} is not a column of table {name!r}"
            )
        for fk in self.foreign_keys:
            if fk.column not in self._by_name:
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of table {name!r}"
                )

    # -- lookup -------------------------------------------------------------

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(self.name, name, tuple(self._by_name)) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    # -- classification -----------------------------------------------------

    def is_id_like(self, column_name: str) -> bool:
        """Whether a column is id plumbing (PK, FK, or ``*_id``-named).

        The paper observes that "internal id fields are never really meant
        for search"; this predicate is how the rest of the system recognizes
        them.
        """
        self.column(column_name)
        if column_name == self.primary_key:
            return True
        if any(fk.column == column_name for fk in self.foreign_keys):
            return True
        return column_name == "id" or column_name.endswith("_id")

    def searchable_columns(self) -> list[Column]:
        return [column for column in self.columns if column.searchable]

    def value_columns(self) -> list[Column]:
        """Columns that carry user-meaningful values (non-id-like)."""
        return [column for column in self.columns if not self.is_id_like(column.name)]

    def foreign_key_for(self, column_name: str) -> ForeignKey | None:
        for fk in self.foreign_keys:
            if fk.column == column_name:
                return fk
        return None

    def __repr__(self) -> str:
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"


class Schema:
    """A validated database schema (multiple tables plus referential checks)."""

    def __init__(self, tables: list[TableSchema]):
        self._tables: dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self._tables:
                raise SchemaError(f"duplicate table {table.name!r}")
            self._tables[table.name] = table
        self._validate_foreign_keys()

    def _validate_foreign_keys(self) -> None:
        for table in self._tables.values():
            for fk in table.foreign_keys:
                target = self._tables.get(fk.ref_table)
                if target is None:
                    raise SchemaError(
                        f"foreign key {table.name}.{fk.column} references "
                        f"unknown table {fk.ref_table!r}"
                    )
                if not target.has_column(fk.ref_column):
                    raise SchemaError(
                        f"foreign key {table.name}.{fk.column} references "
                        f"unknown column {fk.ref_table}.{fk.ref_column}"
                    )

    # -- lookup -------------------------------------------------------------

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name, tuple(self._tables)) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    @property
    def tables(self) -> list[TableSchema]:
        return list(self._tables.values())

    # -- structure ----------------------------------------------------------

    def edges(self) -> list[tuple[str, str, ForeignKey]]:
        """All FK edges as ``(from_table, to_table, fk)`` triples."""
        result = []
        for table in self._tables.values():
            for fk in table.foreign_keys:
                result.append((table.name, fk.ref_table, fk))
        return result

    def neighbors(self, table_name: str) -> list[str]:
        """Tables connected to ``table_name`` by an FK in either direction."""
        self.table(table_name)
        connected: list[str] = []
        for source, target, _fk in self.edges():
            if source == table_name and target not in connected:
                connected.append(target)
            elif target == table_name and source not in connected:
                connected.append(source)
        return connected

    def join_condition(self, left: str, right: str) -> tuple[str, str] | None:
        """The FK equi-join columns between two tables, if directly joinable.

        Returns ``(left_column, right_column)`` or None.  When several FK
        paths exist the first declared one wins (deterministic).
        """
        for source, target, fk in self.edges():
            if source == left and target == right:
                return fk.column, fk.ref_column
            if source == right and target == left:
                return fk.ref_column, fk.column
        return None

    def __repr__(self) -> str:
        return f"Schema({', '.join(self._tables)})"

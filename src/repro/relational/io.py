"""Persistence: save/load a database to a directory of TSV files.

Layout::

    <dir>/schema.json      # tables, columns, types, keys
    <dir>/<table>.tsv      # header row + one line per tuple

Values are TSV-escaped (tab/newline/backslash) with ``\\N`` for NULL, the
conventions PostgreSQL's COPY uses, so dumps are greppable and diffable.
Loading validates against the embedded schema and re-checks foreign keys.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import DatasetError
from repro.relational.database import Database
from repro.relational.schema import Column, ColumnType, ForeignKey, Schema, TableSchema

__all__ = ["save_database", "load_database"]

_NULL = "\\N"


def save_database(database: Database, directory: str | pathlib.Path) -> pathlib.Path:
    """Write the database; returns the directory path."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / "schema.json").write_text(
        json.dumps(_schema_to_json(database), indent=2) + "\n"
    )
    for table_schema in database.schema.tables:
        table = database.table(table_schema.name)
        lines = ["\t".join(table_schema.column_names)]
        for row in table:
            lines.append("\t".join(
                _encode(row[name]) for name in table_schema.column_names
            ))
        (path / f"{table_schema.name}.tsv").write_text("\n".join(lines) + "\n")
    return path


def load_database(directory: str | pathlib.Path) -> Database:
    """Read a database previously written by :func:`save_database`."""
    path = pathlib.Path(directory)
    schema_file = path / "schema.json"
    if not schema_file.exists():
        raise DatasetError(f"no schema.json under {path}")
    spec = json.loads(schema_file.read_text())
    schema = _schema_from_json(spec)
    database = Database(schema, name=spec.get("name", "db"))
    for table_schema in schema.tables:
        table_file = path / f"{table_schema.name}.tsv"
        if not table_file.exists():
            raise DatasetError(f"missing table file {table_file}")
        lines = table_file.read_text().splitlines()
        if not lines:
            raise DatasetError(f"table file {table_file} is empty (no header)")
        header = lines[0].split("\t")
        if header != table_schema.column_names:
            raise DatasetError(
                f"{table_file}: header {header} does not match schema "
                f"columns {table_schema.column_names}"
            )
        for line_number, line in enumerate(lines[1:], start=2):
            cells = line.split("\t")
            if len(cells) != len(header):
                raise DatasetError(
                    f"{table_file}:{line_number}: expected {len(header)} "
                    f"cells, found {len(cells)}"
                )
            values = {
                name: _decode(cell, table_schema.column(name).type)
                for name, cell in zip(header, cells)
            }
            database.table(table_schema.name).insert(values)
    database.assert_consistent()
    return database


# ---------------------------------------------------------------------------
# schema (de)serialization
# ---------------------------------------------------------------------------

def _schema_to_json(database: Database) -> dict:
    return {
        "name": database.name,
        "tables": [
            {
                "name": table.name,
                "primary_key": table.primary_key,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.type.value,
                        "nullable": column.nullable,
                        "searchable": column.searchable,
                    }
                    for column in table.columns
                ],
                "foreign_keys": [
                    {
                        "column": fk.column,
                        "ref_table": fk.ref_table,
                        "ref_column": fk.ref_column,
                    }
                    for fk in table.foreign_keys
                ],
            }
            for table in database.schema.tables
        ],
    }


def _schema_from_json(spec: dict) -> Schema:
    tables = []
    for table_spec in spec["tables"]:
        columns = [
            Column(
                name=column["name"],
                type=ColumnType(column["type"]),
                nullable=column["nullable"],
                searchable=column["searchable"],
            )
            for column in table_spec["columns"]
        ]
        foreign_keys = [
            ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
            for fk in table_spec["foreign_keys"]
        ]
        tables.append(TableSchema(
            table_spec["name"], columns,
            primary_key=table_spec["primary_key"],
            foreign_keys=foreign_keys,
        ))
    return Schema(tables)


# ---------------------------------------------------------------------------
# value (de)serialization
# ---------------------------------------------------------------------------

def _encode(value: object) -> str:
    if value is None:
        return _NULL
    if isinstance(value, bool):
        return "true" if value else "false"
    text = str(value)
    return (text.replace("\\", "\\\\").replace("\t", "\\t")
            .replace("\n", "\\n").replace("\r", "\\r"))


def _decode(cell: str, column_type: ColumnType) -> object:
    if cell == _NULL:
        return None
    if column_type is ColumnType.INTEGER:
        return int(cell)
    if column_type is ColumnType.FLOAT:
        return float(cell)
    if column_type is ColumnType.BOOLEAN:
        if cell not in ("true", "false"):
            raise DatasetError(f"invalid boolean cell {cell!r}")
        return cell == "true"
    out = []
    index = 0
    while index < len(cell):
        char = cell[index]
        if char == "\\" and index + 1 < len(cell):
            escape = cell[index + 1]
            mapping = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}
            if escape in mapping:
                out.append(mapping[escape])
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)

"""The Database object: schema + tables + indexes + statistics.

A database owns its tables, enforces foreign keys on demand, builds and
caches secondary indexes, and exposes the statistics catalog.  Everything
downstream (graph builders, XML view, qunit derivation) starts from here.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import IntegrityError, UnknownTableError
from repro.relational.catalog import StatisticsCatalog
from repro.relational.indexes import HashIndex, TextIndex
from repro.relational.schema import Schema, TableSchema
from repro.relational.table import Table

__all__ = ["Database"]


class Database:
    """A collection of tables conforming to a :class:`Schema`."""

    def __init__(self, schema: Schema, name: str = "db"):
        self.name = name
        self.schema = schema
        self._tables: dict[str, Table] = {
            table.name: Table(table) for table in schema.tables
        }
        self._hash_indexes: dict[tuple[str, str], HashIndex] = {}
        self._text_index: TextIndex | None = None
        self.statistics = StatisticsCatalog(self)

    # -- data ---------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name, tuple(self._tables)) from None

    def insert(self, table_name: str, values: Mapping[str, object]) -> int:
        """Insert one row; invalidates cached statistics and indexes."""
        row_id = self.table(table_name).insert(values)
        self.statistics.invalidate(table_name)
        self._hash_indexes = {
            key: index for key, index in self._hash_indexes.items()
            if key[0] != table_name
        }
        self._text_index = None
        return row_id

    def insert_many(self, table_name: str, rows: Iterable[Mapping[str, object]]) -> int:
        """Insert many rows; returns the number inserted."""
        table = self.table(table_name)
        count = 0
        for values in rows:
            table.insert(values)
            count += 1
        if count:
            self.statistics.invalidate(table_name)
            self._hash_indexes = {
                key: index for key, index in self._hash_indexes.items()
                if key[0] != table_name
            }
            self._text_index = None
        return count

    def row_count(self, table_name: str) -> int:
        return len(self.table(table_name))

    def total_rows(self) -> int:
        return sum(len(table) for table in self._tables.values())

    # -- integrity ----------------------------------------------------------

    def check_foreign_keys(self) -> list[str]:
        """Return a list of violation messages (empty = consistent)."""
        violations: list[str] = []
        for table_schema in self.schema.tables:
            table = self.table(table_schema.name)
            for fk in table_schema.foreign_keys:
                target = self.table(fk.ref_table)
                if target.schema.primary_key == fk.ref_column:
                    exists = target.by_primary_key
                else:
                    referenced = set(target.column_values(fk.ref_column))
                    exists = lambda key, _ref=referenced: key in _ref  # noqa: E731
                for row_id, row in enumerate(table):
                    key = row[fk.column]
                    if key is None:
                        continue
                    if not exists(key):
                        violations.append(
                            f"{table_schema.name}[{row_id}].{fk.column}={key!r} "
                            f"has no match in {fk.ref_table}.{fk.ref_column}"
                        )
        return violations

    def assert_consistent(self) -> None:
        violations = self.check_foreign_keys()
        if violations:
            preview = "; ".join(violations[:5])
            raise IntegrityError(
                f"{len(violations)} foreign-key violations (first: {preview})"
            )

    # -- indexes ------------------------------------------------------------

    def hash_index(self, table_name: str, column: str) -> HashIndex:
        """Build (or fetch cached) a hash index on ``table.column``."""
        key = (table_name, column)
        if key not in self._hash_indexes:
            self._hash_indexes[key] = HashIndex(self.table(table_name), column)
        return self._hash_indexes[key]

    def text_index(self) -> TextIndex:
        """Build (or fetch cached) the inverted index over searchable text."""
        if self._text_index is None:
            index = TextIndex()
            for table in self._tables.values():
                if table.schema.searchable_columns():
                    index.add_table(table)
            self._text_index = index
        return self._text_index

    # -- convenience --------------------------------------------------------

    def lookup(self, table_name: str, column: str, value: object) -> list[dict[str, object]]:
        """Indexed equality lookup returning full rows."""
        index = self.hash_index(table_name, column)
        table = self.table(table_name)
        return [dict(table.row(row_id)) for row_id in index.lookup(value)]

    def table_schema(self, name: str) -> TableSchema:
        return self.schema.table(name)

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, {len(self._tables)} tables, "
            f"{self.total_rows()} rows)"
        )

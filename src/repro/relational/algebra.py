"""Relational-algebra plan operators and a pull-based executor.

Plans are immutable trees of operators.  ``execute(plan, database, params)``
yields qualified rows (dicts keyed ``alias.column``).  The operator set is
the minimum a real engine needs to run the paper's base expressions and the
baselines: scan (with aliasing), filter, project, hash equi-join, nested-loop
theta join fallback, aggregate with grouping, sort, limit, distinct.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import PlanError
from repro.relational.expr import Expression, Params

__all__ = [
    "Plan",
    "Scan",
    "Filter",
    "Project",
    "HashJoin",
    "NestedLoopJoin",
    "Aggregate",
    "AggregateSpec",
    "Sort",
    "Limit",
    "Distinct",
    "execute",
]

QualifiedRow = dict[str, object]


class Plan:
    """Base class for plan operators."""

    def children(self) -> tuple["Plan", ...]:
        return ()

    def output_columns(self, database: "Database") -> list[str]:  # noqa: F821
        """Qualified column names this operator produces, in order."""
        raise NotImplementedError


@dataclass(frozen=True)
class Scan(Plan):
    """Full scan of a base table, qualifying columns with ``alias``."""

    table: str
    alias: str | None = None

    @property
    def prefix(self) -> str:
        return self.alias or self.table

    def output_columns(self, database) -> list[str]:
        schema = database.schema.table(self.table)
        return [f"{self.prefix}.{column}" for column in schema.column_names]


@dataclass(frozen=True)
class Filter(Plan):
    """Keep rows for which ``predicate`` evaluates truthy."""

    child: Plan
    predicate: Expression

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, database) -> list[str]:
        return self.child.output_columns(database)


@dataclass(frozen=True)
class Project(Plan):
    """Keep only ``columns`` (qualified names), optionally renaming.

    ``renames`` maps output name -> input qualified name; plain ``columns``
    pass through under their own name.
    """

    child: Plan
    columns: tuple[str, ...]
    renames: tuple[tuple[str, str], ...] = ()

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, database) -> list[str]:
        return list(self.columns) + [out for out, _ in self.renames]


@dataclass(frozen=True)
class HashJoin(Plan):
    """Equi-join: build a hash table on the right child, probe with the left."""

    left: Plan
    right: Plan
    left_key: str
    right_key: str

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def output_columns(self, database) -> list[str]:
        return self.left.output_columns(database) + self.right.output_columns(database)


@dataclass(frozen=True)
class NestedLoopJoin(Plan):
    """Theta-join fallback for non-equi predicates (used rarely)."""

    left: Plan
    right: Plan
    predicate: Expression

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def output_columns(self, database) -> list[str]:
        return self.left.output_columns(database) + self.right.output_columns(database)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: ``function(input) AS output``.

    ``function`` is one of count/sum/min/max/avg; ``input`` is a qualified
    column or None for ``count(*)``.
    """

    function: str
    input: str | None
    output: str

    _FUNCTIONS = ("count", "sum", "min", "max", "avg")

    def __post_init__(self) -> None:
        if self.function not in self._FUNCTIONS:
            raise PlanError(f"unknown aggregate function {self.function!r}")
        if self.function != "count" and self.input is None:
            raise PlanError(f"aggregate {self.function} requires an input column")


@dataclass(frozen=True)
class Aggregate(Plan):
    """Group by ``keys`` (qualified columns) and compute ``aggregates``."""

    child: Plan
    keys: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, database) -> list[str]:
        return list(self.keys) + [spec.output for spec in self.aggregates]


@dataclass(frozen=True)
class Sort(Plan):
    """Order by qualified columns; ``descending`` applies to all keys."""

    child: Plan
    keys: tuple[str, ...]
    descending: bool = False

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, database) -> list[str]:
        return self.child.output_columns(database)


@dataclass(frozen=True)
class Limit(Plan):
    child: Plan
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise PlanError(f"limit must be non-negative, got {self.count}")

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, database) -> list[str]:
        return self.child.output_columns(database)


@dataclass(frozen=True)
class Distinct(Plan):
    child: Plan

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_columns(self, database) -> list[str]:
        return self.child.output_columns(database)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def execute(plan: Plan, database, params: Params | None = None) -> Iterator[QualifiedRow]:
    """Evaluate ``plan`` against ``database`` yielding qualified rows."""
    if isinstance(plan, Scan):
        yield from _execute_scan(plan, database)
    elif isinstance(plan, Filter):
        for row in execute(plan.child, database, params):
            if plan.predicate.evaluate(row, params):
                yield row
    elif isinstance(plan, Project):
        yield from _execute_project(plan, database, params)
    elif isinstance(plan, HashJoin):
        yield from _execute_hash_join(plan, database, params)
    elif isinstance(plan, NestedLoopJoin):
        yield from _execute_nested_loop(plan, database, params)
    elif isinstance(plan, Aggregate):
        yield from _execute_aggregate(plan, database, params)
    elif isinstance(plan, Sort):
        yield from _execute_sort(plan, database, params)
    elif isinstance(plan, Limit):
        yield from _execute_limit(plan, database, params)
    elif isinstance(plan, Distinct):
        yield from _execute_distinct(plan, database, params)
    else:
        raise PlanError(f"unknown plan operator {type(plan).__name__}")


def _execute_scan(plan: Scan, database) -> Iterator[QualifiedRow]:
    table = database.table(plan.table)
    prefix = plan.prefix
    for row in table:
        yield {f"{prefix}.{name}": value for name, value in row.items()}


def _execute_project(plan: Project, database, params) -> Iterator[QualifiedRow]:
    for row in execute(plan.child, database, params):
        out: QualifiedRow = {}
        for column in plan.columns:
            if column not in row:
                raise PlanError(
                    f"projected column {column!r} missing from row; "
                    f"available: {sorted(row)}"
                )
            out[column] = row[column]
        for output, source in plan.renames:
            if source not in row:
                raise PlanError(
                    f"renamed column {source!r} missing from row; "
                    f"available: {sorted(row)}"
                )
            out[output] = row[source]
        yield out


def _normalize_key(value: object) -> object:
    """Hash-join keys compare case-insensitively for text, exactly otherwise."""
    if isinstance(value, str):
        return value.lower()
    return value


def _execute_hash_join(plan: HashJoin, database, params) -> Iterator[QualifiedRow]:
    build: dict[object, list[QualifiedRow]] = {}
    for row in execute(plan.right, database, params):
        key = row.get(plan.right_key)
        if key is None:
            continue
        build.setdefault(_normalize_key(key), []).append(row)
    for left_row in execute(plan.left, database, params):
        key = left_row.get(plan.left_key)
        if key is None:
            continue
        for right_row in build.get(_normalize_key(key), ()):
            merged = dict(left_row)
            merged.update(right_row)
            yield merged


def _execute_nested_loop(plan: NestedLoopJoin, database, params) -> Iterator[QualifiedRow]:
    right_rows = list(execute(plan.right, database, params))
    for left_row in execute(plan.left, database, params):
        for right_row in right_rows:
            merged = dict(left_row)
            merged.update(right_row)
            if plan.predicate.evaluate(merged, params):
                yield merged


def _execute_aggregate(plan: Aggregate, database, params) -> Iterator[QualifiedRow]:
    groups: dict[tuple[object, ...], list[QualifiedRow]] = {}
    order: list[tuple[object, ...]] = []
    for row in execute(plan.child, database, params):
        key = tuple(row.get(column) for column in plan.keys)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not plan.keys and not groups:
        # Global aggregate over an empty input still yields one row.
        groups[()] = []
        order.append(())
    for key in order:
        rows = groups[key]
        out: QualifiedRow = dict(zip(plan.keys, key))
        for spec in plan.aggregates:
            out[spec.output] = _apply_aggregate(spec, rows)
        yield out


def _apply_aggregate(spec: AggregateSpec, rows: list[QualifiedRow]) -> object:
    if spec.function == "count":
        if spec.input is None:
            return len(rows)
        return sum(1 for row in rows if row.get(spec.input) is not None)
    values = [row[spec.input] for row in rows
              if row.get(spec.input) is not None]
    if not values:
        return None
    if spec.function == "sum":
        return sum(values)  # type: ignore[arg-type]
    if spec.function == "min":
        return min(values)  # type: ignore[type-var]
    if spec.function == "max":
        return max(values)  # type: ignore[type-var]
    return sum(values) / len(values)  # type: ignore[arg-type]


def _sort_key(value: object) -> tuple[int, object]:
    """Total order with None first, grouped by type to avoid TypeError."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))


def _execute_sort(plan: Sort, database, params) -> Iterator[QualifiedRow]:
    rows = list(execute(plan.child, database, params))
    rows.sort(
        key=lambda row: tuple(_sort_key(row.get(column)) for column in plan.keys),
        reverse=plan.descending,
    )
    yield from rows


def _execute_limit(plan: Limit, database, params) -> Iterator[QualifiedRow]:
    emitted = 0
    for row in execute(plan.child, database, params):
        if emitted >= plan.count:
            return
        emitted += 1
        yield row


def _execute_distinct(plan: Distinct, database, params) -> Iterator[QualifiedRow]:
    seen: set[tuple[tuple[str, object], ...]] = set()
    for row in execute(plan.child, database, params):
        fingerprint = tuple(sorted(row.items(), key=lambda item: item[0]))
        try:
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
        except TypeError:
            # Unhashable value: fall back to emitting (correctness over dedup).
            pass
        yield row

"""Queriability: how likely a schema element is to be used in a query.

Section 4.1 of the qunits paper derives qunits from "the concept of
queriability of a schema described in [15]" (Jayapandian & Jagadish,
*Automated Creation of a Forms-based Database Query Interface*), which
scores schema elements by the cardinality of the data they represent.

We reproduce that idea with two scores:

* **entity queriability** of a table: its share of the database's tuples
  (log-scaled, so fact tables don't drown everything), boosted by the
  fraction of its columns that carry searchable, user-meaningful values and
  damped for pure junction tables;
* **attribute queriability** of a column: how selective and meaningful the
  column is — id plumbing scores ~0, text columns score with their
  distinct-value ratio and coverage (non-null fraction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.schema_graph import SchemaGraph
from repro.relational.database import Database

__all__ = ["EntityQueriability", "AttributeQueriability", "QueriabilityModel"]


@dataclass(frozen=True)
class EntityQueriability:
    table: str
    score: float
    cardinality: int
    value_column_fraction: float
    is_junction: bool


@dataclass(frozen=True)
class AttributeQueriability:
    table: str
    column: str
    score: float
    distinct_ratio: float
    coverage: float
    is_id_like: bool


class QueriabilityModel:
    """Computes and ranks queriability scores for one database."""

    # Junction tables exist to connect entities; users rarely ask for them
    # by name, so their entity score is scaled down by this factor.
    JUNCTION_DAMPING = 0.25

    def __init__(self, database: Database):
        self.database = database
        self.schema_graph = SchemaGraph(database.schema)
        self._entities: dict[str, EntityQueriability] | None = None
        self._attributes: dict[tuple[str, str], AttributeQueriability] | None = None

    # -- entities -----------------------------------------------------------

    def entity(self, table: str) -> EntityQueriability:
        return self._entity_scores()[table]

    def ranked_entities(self) -> list[EntityQueriability]:
        """All tables, highest queriability first (ties by name)."""
        scores = self._entity_scores().values()
        return sorted(scores, key=lambda e: (-e.score, e.table))

    def top_entities(self, k: int) -> list[EntityQueriability]:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self.ranked_entities()[:k]

    def _entity_scores(self) -> dict[str, EntityQueriability]:
        if self._entities is not None:
            return self._entities
        stats = self.database.statistics
        total = max(1, stats.total_rows())
        scores: dict[str, EntityQueriability] = {}
        for table_schema in self.database.schema.tables:
            table_stats = stats.table(table_schema.name)
            cardinality = table_stats.row_count
            # log-scaled share of the database's tuples
            share = math.log1p(cardinality) / math.log1p(total)
            value_columns = table_schema.value_columns()
            fraction = len(value_columns) / max(1, len(table_schema.columns))
            searchable_bonus = 1.0 if table_schema.searchable_columns() else 0.5
            score = share * (0.5 + 0.5 * fraction) * searchable_bonus
            is_junction = self.schema_graph.is_junction(table_schema.name)
            if is_junction:
                score *= self.JUNCTION_DAMPING
            scores[table_schema.name] = EntityQueriability(
                table=table_schema.name,
                score=score,
                cardinality=cardinality,
                value_column_fraction=fraction,
                is_junction=is_junction,
            )
        self._entities = scores
        return scores

    # -- attributes ----------------------------------------------------------

    def attribute(self, table: str, column: str) -> AttributeQueriability:
        key = (table, column)
        return self._attribute_scores()[key]

    def ranked_attributes(self, table: str) -> list[AttributeQueriability]:
        """Columns of one table, highest queriability first."""
        self.database.schema.table(table)
        scores = [
            score for (t, _c), score in self._attribute_scores().items() if t == table
        ]
        return sorted(scores, key=lambda a: (-a.score, a.column))

    def _attribute_scores(self) -> dict[tuple[str, str], AttributeQueriability]:
        if self._attributes is not None:
            return self._attributes
        stats = self.database.statistics
        scores: dict[tuple[str, str], AttributeQueriability] = {}
        for table_schema in self.database.schema.tables:
            table_stats = stats.table(table_schema.name)
            for column in table_schema.columns:
                column_stats = table_stats.column(column.name)
                coverage = 1.0 - column_stats.null_fraction
                distinct_ratio = column_stats.distinct_ratio
                if table_schema.is_id_like(column.name):
                    score = 0.0
                else:
                    base = 0.6 * coverage + 0.4 * min(1.0, distinct_ratio)
                    if column.searchable:
                        base *= 1.5
                    score = base
                scores[(table_schema.name, column.name)] = AttributeQueriability(
                    table=table_schema.name,
                    column=column.name,
                    score=score,
                    distinct_ratio=distinct_ratio,
                    coverage=coverage,
                    is_id_like=table_schema.is_id_like(column.name),
                )
        self._attributes = scores
        return scores

    # -- neighbor expansion (the k2 of Sec. 4.1) -----------------------------

    def top_neighbors(self, table: str, k: int) -> list[str]:
        """The k most queriable tables joinable to ``table``.

        Junction tables are *traversed*, not reported: "cast" itself is
        uninteresting, but "person —cast— movie" makes movie a neighbor of
        person.  Ranking is by the neighbor's entity queriability.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.database.schema.table(table)
        reachable: set[str] = set()
        for neighbor in self.schema_graph.neighbors(table):
            if self.schema_graph.is_junction(neighbor):
                reachable.update(
                    far for far in self.schema_graph.neighbors(neighbor)
                    if far != table
                )
                reachable.add(neighbor)
            else:
                reachable.add(neighbor)
        reachable.discard(table)
        entities = self._entity_scores()
        ranked = sorted(reachable, key=lambda name: (-entities[name].score, name))
        return ranked[:k]

"""Schema graph: tables as nodes, foreign keys as undirected edges.

Used for neighbor expansion in qunit derivation and for finding join paths
between the tables a segmented query mentions.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import PlanError
from repro.relational.schema import ForeignKey, Schema

__all__ = ["SchemaGraph"]


class SchemaGraph:
    """An undirected multigraph over table names with FK edge payloads."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._graph = nx.MultiGraph()
        for table in schema.table_names:
            self._graph.add_node(table)
        for source, target, fk in schema.edges():
            self._graph.add_edge(source, target, fk=fk, source=source)

    # -- structure ----------------------------------------------------------

    @property
    def tables(self) -> list[str]:
        return list(self._graph.nodes)

    def degree(self, table: str) -> int:
        self.schema.table(table)
        return self._graph.degree(table)

    def neighbors(self, table: str) -> list[str]:
        self.schema.table(table)
        return sorted(self._graph.neighbors(table))

    def edges_between(self, left: str, right: str) -> list[ForeignKey]:
        """All FK payloads joining two adjacent tables."""
        if not self._graph.has_edge(left, right):
            return []
        return [data["fk"] for data in self._graph.get_edge_data(left, right).values()]

    # -- paths --------------------------------------------------------------

    def join_path(self, source: str, target: str) -> list[str]:
        """Shortest table path between two tables (inclusive).

        Raises :class:`PlanError` when the tables are not connected.
        """
        self.schema.table(source)
        self.schema.table(target)
        try:
            return nx.shortest_path(self._graph, source, target)
        except nx.NetworkXNoPath:
            raise PlanError(
                f"tables {source!r} and {target!r} are not join-connected"
            ) from None

    def join_plan(self, tables: list[str]) -> list[str]:
        """A connected table list covering all ``tables`` (a Steiner-ish
        expansion using pairwise shortest paths; deterministic)."""
        if not tables:
            return []
        covered = [tables[0]]
        for table in tables[1:]:
            if table in covered:
                continue
            best_path: list[str] | None = None
            for anchor in covered:
                path = self.join_path(anchor, table)
                if best_path is None or len(path) < len(best_path):
                    best_path = path
            assert best_path is not None
            for step in best_path:
                if step not in covered:
                    covered.append(step)
        return covered

    def is_connected(self, tables: list[str]) -> bool:
        """Whether the given tables induce a connected subproblem."""
        if len(tables) <= 1:
            return True
        try:
            plan = self.join_plan(list(tables))
        except PlanError:
            return False
        return set(tables) <= set(plan)

    def entity_tables(self) -> list[str]:
        """Heuristic "entity" tables: non-junction tables with searchable text.

        A junction (relationship) table is one whose non-id columns are
        few and whose degree is >= 2 — `cast`, `movie_genre` and friends.
        """
        entities = []
        for name in self.tables:
            table = self.schema.table(name)
            has_text = bool(table.searchable_columns())
            value_columns = table.value_columns()
            if has_text and len(value_columns) >= 1 and not self.is_junction(name):
                entities.append(name)
        return entities

    def is_junction(self, table_name: str) -> bool:
        """Tables that exist to relate other tables (mostly FK columns)."""
        table = self.schema.table(table_name)
        fk_columns = {fk.column for fk in table.foreign_keys}
        non_key = [
            column.name for column in table.columns
            if column.name not in fk_columns and column.name != table.primary_key
        ]
        return len(table.foreign_keys) >= 2 and len(non_key) <= 2

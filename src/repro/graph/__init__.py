"""Graph views of a relational database.

Two graphs matter to this reproduction:

* the **schema graph** (tables as nodes, FK edges) drives qunit derivation —
  expanding a top entity with its top neighbors is a walk here;
* the **data graph** (tuples as nodes, FK instances as edges) is the
  substrate BANKS searches for keyword spanning trees.

Queriability scoring (after Jayapandian & Jagadish, used by Sec. 4.1 of the
qunits paper) lives here too because it is a pure function of schema + stats.
"""

from repro.graph.data_graph import DataGraph, TupleNode
from repro.graph.queriability import (
    AttributeQueriability,
    EntityQueriability,
    QueriabilityModel,
)
from repro.graph.schema_graph import SchemaGraph

__all__ = [
    "SchemaGraph",
    "DataGraph",
    "TupleNode",
    "QueriabilityModel",
    "EntityQueriability",
    "AttributeQueriability",
]

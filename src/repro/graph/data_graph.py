"""Data graph: one node per tuple, one edge per foreign-key instance.

This is the structure the BANKS family searches: keyword query terms hit
tuple nodes (through the text index), and answers are subtrees connecting
one node per keyword.  Nodes carry enough back-references to recover the
original rows for presentation and scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.relational.database import Database

__all__ = ["TupleNode", "DataGraph"]


@dataclass(frozen=True, order=True)
class TupleNode:
    """Identity of one tuple in the database."""

    table: str
    row_id: int

    def __str__(self) -> str:
        return f"{self.table}[{self.row_id}]"


class DataGraph:
    """Undirected tuple graph with degree-derived edge weights.

    Following BANKS, edge weight grows with the log of the target's degree
    so that hub tuples (a genre shared by thousands of movies) are expensive
    to route through; node prestige is degree-based.
    """

    def __init__(self, database: Database):
        self.database = database
        self._graph = nx.Graph()
        self._build()

    def _build(self) -> None:
        import math

        for table_name in self.database.schema.table_names:
            table = self.database.table(table_name)
            for row_id in range(len(table)):
                self._graph.add_node(TupleNode(table_name, row_id))

        for table_schema in self.database.schema.tables:
            table = self.database.table(table_schema.name)
            for fk in table_schema.foreign_keys:
                target_index = self.database.hash_index(fk.ref_table, fk.ref_column)
                for row_id, row in enumerate(table):
                    key = row[fk.column]
                    if key is None:
                        continue
                    for target_row_id in target_index.lookup(key):
                        self._graph.add_edge(
                            TupleNode(table_schema.name, row_id),
                            TupleNode(fk.ref_table, target_row_id),
                        )

        # Edge weights after all edges exist (weights depend on final degrees).
        for left, right in self._graph.edges:
            weight = 1.0 + math.log1p(
                min(self._graph.degree(left), self._graph.degree(right))
            )
            self._graph.edges[left, right]["weight"] = weight

    # -- access -------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def degree(self, node: TupleNode) -> int:
        return self._graph.degree(node)

    def neighbors(self, node: TupleNode) -> list[TupleNode]:
        return sorted(self._graph.neighbors(node))

    def edge_weight(self, left: TupleNode, right: TupleNode) -> float:
        return self._graph.edges[left, right]["weight"]

    def prestige(self, node: TupleNode) -> float:
        """BANKS-style node prestige: proportional to degree."""
        degree = self._graph.degree(node)
        return 1.0 + float(degree)

    def row(self, node: TupleNode) -> dict[str, object]:
        return dict(self.database.table(node.table).row(node.row_id))

    def nodes_matching_keyword(self, keyword: str) -> set[TupleNode]:
        """Tuple nodes whose searchable text contains the keyword token."""
        index = self.database.text_index()
        return {
            TupleNode(table, row_id)
            for table, _column, row_id in index.rows_with_token(keyword)
        }

    def shortest_path(self, source: TupleNode, target: TupleNode) -> list[TupleNode]:
        return nx.shortest_path(self._graph, source, target, weight="weight")

    def shortest_path_length(self, source: TupleNode, target: TupleNode) -> float:
        return nx.shortest_path_length(self._graph, source, target, weight="weight")

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

"""Small text-normalization helpers shared by the IR engine and segmenter."""

from __future__ import annotations

import re
import unicodedata
from collections.abc import Iterator, Sequence

__all__ = [
    "normalize",
    "fold_whitespace",
    "ngrams",
    "sliding_windows",
    "to_identifier",
]

_NON_WORD = re.compile(r"[^a-z0-9']+")
_WHITESPACE = re.compile(r"\s+")


def normalize(text: str) -> str:
    """Lowercase, strip accents and collapse punctuation to single spaces.

    This is the canonical normalization applied before tokenization, entity
    matching and template extraction, so that "Amélie" and "amelie" compare
    equal everywhere.
    """
    decomposed = unicodedata.normalize("NFKD", text)
    ascii_text = decomposed.encode("ascii", "ignore").decode("ascii")
    lowered = ascii_text.lower()
    spaced = _NON_WORD.sub(" ", lowered)
    return fold_whitespace(spaced)


def fold_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and trim the ends."""
    return _WHITESPACE.sub(" ", text).strip()


def ngrams(tokens: Sequence[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield all contiguous ``n``-grams of ``tokens`` (empty if too short)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for start in range(len(tokens) - n + 1):
        yield tuple(tokens[start:start + n])


def sliding_windows(tokens: Sequence[str], max_n: int) -> Iterator[tuple[int, int, tuple[str, ...]]]:
    """Yield ``(start, end, gram)`` for every window of length 1..max_n.

    Longer windows are yielded first for each start position so greedy
    longest-match consumers can take the first hit.
    """
    if max_n <= 0:
        raise ValueError(f"max_n must be positive, got {max_n}")
    for start in range(len(tokens)):
        longest = min(max_n, len(tokens) - start)
        for length in range(longest, 0, -1):
            yield start, start + length, tuple(tokens[start:start + length])


def to_identifier(text: str) -> str:
    """Turn arbitrary text into a snake_case identifier."""
    norm = normalize(text).replace("'", "")
    ident = norm.replace(" ", "_")
    if not ident:
        return "unnamed"
    if ident[0].isdigit():
        ident = "n" + ident
    return ident

"""Shared utilities: deterministic RNG, text helpers, ASCII rendering, timing."""

from repro.utils.rng import DeterministicRng, zipf_weights
from repro.utils.text import (
    fold_whitespace,
    ngrams,
    normalize,
    sliding_windows,
    to_identifier,
)
from repro.utils.tables import ascii_bar_chart, ascii_table, format_float
from repro.utils.timing import Stopwatch

__all__ = [
    "DeterministicRng",
    "zipf_weights",
    "normalize",
    "fold_whitespace",
    "ngrams",
    "sliding_windows",
    "to_identifier",
    "ascii_table",
    "ascii_bar_chart",
    "format_float",
    "Stopwatch",
]

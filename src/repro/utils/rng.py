"""Deterministic random-number helpers.

All synthetic data in this reproduction must be reproducible bit-for-bit
across runs, so every stochastic component draws from a
:class:`DeterministicRng` seeded explicitly.  The class wraps
:class:`random.Random` and adds the distributions the generators need
(Zipf-like ranks, weighted choice without replacement, noisy counts).
"""

from __future__ import annotations

import math
import random
import zlib
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")

__all__ = ["DeterministicRng", "zipf_weights"]


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Return normalized Zipfian weights ``1/rank**exponent`` for ``n`` ranks.

    Rank 1 is the heaviest.  Raises ``ValueError`` for non-positive ``n``.
    """
    if n <= 0:
        raise ValueError(f"need a positive number of ranks, got {n}")
    raw = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class DeterministicRng:
    """A seeded RNG with the sampling utilities used by the data generators."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child stream identified by ``label``.

        Forking lets each generator component own its own stream so adding a
        new component never perturbs the draws of existing ones.  The child
        seed comes from CRC32, not ``hash()``: Python randomizes string
        hashes per process, which would silently break cross-run
        reproducibility.
        """
        child_seed = zlib.crc32(f"{self.seed}:{label}".encode()) & 0x7FFFFFFF
        return DeterministicRng(child_seed)

    # -- thin wrappers ------------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def shuffle(self, items: list[T]) -> None:
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self._random.sample(items, k)

    # -- distributions ------------------------------------------------------

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one item proportionally to ``weights``."""
        if len(items) != len(weights):
            raise ValueError(
                f"items ({len(items)}) and weights ({len(weights)}) differ in length"
            )
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choices(items, weights=weights, k=1)[0]

    def weighted_sample(self, items: Sequence[T], weights: Sequence[float], k: int) -> list[T]:
        """Sample ``k`` distinct items, probability proportional to weight.

        Uses the Efraimidis–Spirakis exponential-jitter method so the result
        is a true weighted sample without replacement.
        """
        if k < 0:
            raise ValueError(f"sample size must be non-negative, got {k}")
        if k > len(items):
            raise ValueError(f"sample size {k} exceeds population {len(items)}")
        keyed = []
        for item, weight in zip(items, weights):
            if weight <= 0:
                key = float("-inf")
            else:
                key = math.log(self._random.random()) / weight
            keyed.append((key, item))
        keyed.sort(key=lambda pair: pair[0], reverse=True)
        return [item for _, item in keyed[:k]]

    def zipf_rank(self, n: int, exponent: float = 1.0) -> int:
        """Draw a 0-based rank from a Zipf distribution over ``n`` ranks."""
        weights = zipf_weights(n, exponent)
        return self.weighted_choice(range(n), weights)

    def poisson(self, lam: float) -> int:
        """Draw from Poisson(lam) via Knuth's method (lam expected small)."""
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam}")
        if lam == 0:
            return 0
        threshold = math.exp(-lam)
        k = 0
        p = 1.0
        while True:
            p *= self._random.random()
            if p <= threshold:
                return k
            k += 1

    def noisy_count(self, mean: int, spread: float = 0.25, minimum: int = 0) -> int:
        """A count near ``mean`` with relative gaussian spread, clamped below."""
        drawn = int(round(self._random.gauss(mean, max(0.0, spread) * mean)))
        return max(minimum, drawn)

    def coin(self, probability: float = 0.5) -> bool:
        """Return True with the given probability."""
        return self._random.random() < probability

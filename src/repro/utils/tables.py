"""ASCII rendering for benchmark tables and figures.

The benchmark harness reports every reproduced table/figure as plain text so
results are inspectable in CI logs without plotting dependencies.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_table", "ascii_bar_chart", "format_float"]


def format_float(value: float, digits: int = 3) -> str:
    """Format a float compactly: trims trailing zeros but keeps one decimal."""
    text = f"{value:.{digits}f}".rstrip("0")
    if text.endswith("."):
        text += "0"
    return text


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str | None = None) -> str:
    """Render a left-aligned ASCII table with a header rule."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def ascii_bar_chart(labels: Sequence[str], values: Sequence[float],
                    width: int = 40, title: str | None = None,
                    max_value: float | None = None) -> str:
    """Render a horizontal bar chart (used to reproduce the paper's Fig. 3)."""
    if len(labels) != len(values):
        raise ValueError(
            f"labels ({len(labels)}) and values ({len(values)}) differ in length"
        )
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    top = max_value if max_value is not None else max(values, default=0.0)
    top = top if top > 0 else 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        filled = int(round(width * min(value, top) / top))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} | {bar.ljust(width)} {format_float(value)}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return format_float(value)
    return str(value)

"""Lightweight wall-clock timing for the experiment harness."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulating stopwatch usable as a context manager.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        lap = time.perf_counter() - self._started
        self._started = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    @property
    def mean_lap(self) -> float:
        return self.elapsed / len(self.laps) if self.laps else 0.0

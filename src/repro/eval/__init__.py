"""Evaluation harness reproducing Sec. 5 of the paper.

* :mod:`repro.eval.needs` — the information-need model: what a query type
  *means*, with the many-to-many need↔query mapping of Table 1;
* :mod:`repro.eval.relevance` — simulated raters on the Table 2 scale
  (0 / 0.5 / 1.0), the Mechanical-Turk stand-in;
* :mod:`repro.eval.userstudy` — the five-user study behind Table 1;
* :mod:`repro.eval.harness` — the Figure 3 result-quality experiment
  comparing qunit engines against BANKS / LCA / MLCA;
* :mod:`repro.eval.figures` — ASCII renderings of every table and figure.
"""

from repro.eval.harness import ResultQualityExperiment, ResultQualityReport
from repro.eval.needs import InformationNeed, NeedModel
from repro.eval.relevance import Rating, SimulatedRater, SimulatedRaterPool
from repro.eval.userstudy import UserStudySimulator

__all__ = [
    "InformationNeed",
    "NeedModel",
    "Rating",
    "SimulatedRater",
    "SimulatedRaterPool",
    "UserStudySimulator",
    "ResultQualityExperiment",
    "ResultQualityReport",
]

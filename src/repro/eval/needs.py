"""Information needs: what a keyword query is actually asking for.

Table 1 of the paper establishes that the need↔query mapping is
many-to-many: "[title]" alone may mean the movie summary, its cast, related
movies or its soundtrack, depending on the user.  The :class:`NeedModel`
encodes that mapping: every typed template carries a *distribution* over
information needs, and each simulated rater samples their personal intent
from it.  A need's gold standard is the corresponding expert qunit
instance — the same role imdb.com's pages played for the paper's raters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.answer import Atom
from repro.core.collection import QunitCollection
from repro.core.search.segmentation import SegmentedQuery
from repro.errors import EvaluationError
from repro.utils.rng import DeterministicRng

__all__ = ["InformationNeed", "NeedModel"]


@dataclass(frozen=True)
class InformationNeed:
    """One information need, answered by one expert qunit definition.

    ``gold_definition`` None marks needs the database cannot answer
    (posters, recommendations) — present in real logs, scored 0 for every
    system, exactly like the paper's "don't know" column.
    """

    name: str
    gold_definition: str | None
    description: str = ""


# The catalogue of needs (rows of Table 1, mapped onto the expert set).
NEEDS: dict[str, InformationNeed] = {
    need.name: need
    for need in [
        InformationNeed("movie_summary", "movie_main_page",
                        "the summary page of a movie"),
        InformationNeed("cast", "movie_full_credits", "the cast of a movie"),
        InformationNeed("filmography", "person_filmography",
                        "all movies of a person"),
        InformationNeed("person_profile", "person_main_page",
                        "who a person is and what they did"),
        InformationNeed("coactorship", "coactors",
                        "finding connections between two actors"),
        InformationNeed("posters", None, "posters of a movie (not in schema)"),
        InformationNeed("related_movies", None,
                        "movies similar to this one (not in schema)"),
        InformationNeed("awards", "movie_awards", "awards of a movie"),
        InformationNeed("person_awards", "person_awards", "awards of a person"),
        InformationNeed("movies_of_period", "movies_by_year",
                        "movies from a period"),
        InformationNeed("charts", "top_charts", "top/chart listings"),
        InformationNeed("recommendations", None,
                        "personalized recommendations (not in schema)"),
        InformationNeed("soundtracks", "movie_soundtrack",
                        "the soundtrack of a movie"),
        InformationNeed("trivia", "movie_trivia", "trivia about a movie"),
        InformationNeed("box_office", "movie_box_office",
                        "box-office numbers of a movie"),
        InformationNeed("plot", "movie_plot", "the plot of a movie"),
        InformationNeed("movie_year", "movie_main_page",
                        "when a movie was released"),
        InformationNeed("genre_listing", "genre_movies", "movies of a genre"),
        InformationNeed("biography", "person_biography",
                        "the biography of a person"),
        InformationNeed("locations", "movie_locations",
                        "where a movie was filmed"),
    ]
}


# Template → need distribution.  Weights follow Table 1's vote counts where
# the paper gives them (e.g. the "[title]" column: summary 2, cast 1,
# related 1, soundtrack 1 of 5 users) and sensible defaults elsewhere.
_TEMPLATE_NEEDS: list[tuple[tuple[str, ...], list[tuple[str, float]]]] = [
    (("[movie.title]",), [
        ("movie_summary", 0.40), ("cast", 0.20), ("related_movies", 0.20),
        ("soundtracks", 0.20),
    ]),
    (("[person.name]",), [
        ("filmography", 0.40), ("person_profile", 0.35), ("coactorship", 0.25),
    ]),
    (("[movie.title]", "cast"), [("cast", 1.0)]),
    (("[movie.title]", "plot"), [("plot", 1.0)]),
    (("[movie.title]", "soundtrack"), [("soundtracks", 1.0)]),
    (("[movie.title]", "box office"), [("box_office", 1.0)]),
    (("[movie.title]", "award"), [("awards", 1.0)]),
    (("[movie.title]", "trivia"), [("trivia", 1.0)]),
    (("[movie.title]", "quotes"), [("trivia", 1.0)]),
    (("[movie.title]", "location"), [("locations", 1.0)]),
    (("[movie.title]", "movie.release_year"), [("movie_year", 1.0)]),
    (("[movie.title]", "movie.rating"), [("movie_summary", 1.0)]),
    (("[movie.title]", "posters"), [("posters", 1.0)]),
    (("[movie.title]", "recommendations"), [("recommendations", 1.0)]),
    (("[person.name]", "movie"), [("filmography", 1.0)]),
    (("[person.name]", "filmography"), [("filmography", 1.0)]),
    (("[person.name]", "award"), [("person_awards", 1.0)]),
    (("[person.name]", "biography"), [("biography", 1.0)]),
    (("[person.name]", "cast"), [("coactorship", 0.6), ("filmography", 0.4)]),
    (("[person.name]", "[role_type.role]"), [
        ("person_profile", 0.7), ("filmography", 0.3),
    ]),
    (("[person.name]", "[movie.title]"), [
        ("movie_summary", 0.5), ("cast", 0.5),
    ]),
    (("[person.name]", "[genre.name]"), [("filmography", 1.0)]),
    (("[genre.name]", "movie"), [("genre_listing", 1.0)]),
    (("[genre.name]",), [("genre_listing", 1.0)]),
    (("[movie.release_year]",), [("movies_of_period", 1.0)]),
    (("movie", "[movie.release_year]"), [("movies_of_period", 1.0)]),
]


class NeedModel:
    """Maps typed queries to need distributions and gold-standard content."""

    def __init__(self, expert_collection: QunitCollection):
        self.collection = expert_collection

    # -- need distributions ----------------------------------------------------------

    def distribution(self, segmented: SegmentedQuery) -> list[tuple[InformationNeed, float]]:
        """The need distribution of one segmented query.

        Matching ignores free-text segments and segment order; complex
        (aggregate) queries map to charts; unmatched shapes fall back to
        the bare-entity distributions.
        """
        if any(segment.is_aggregate for segment in segmented.segments):
            return [(NEEDS["charts"], 1.0)]
        parts = frozenset(
            segment.placeholder() for segment in segmented.segments
            if segment.placeholder() != "[freetext]"
        )
        for template_parts, weighted in _TEMPLATE_NEEDS:
            if frozenset(template_parts) == parts:
                return [(NEEDS[name], weight) for name, weight in weighted]
        # Fall back on the dominant entity's bare-entity distribution.
        if "[movie.title]" in parts:
            return self.distribution_for_parts(("[movie.title]",))
        if "[person.name]" in parts:
            return self.distribution_for_parts(("[person.name]",))
        if "[genre.name]" in parts:
            return self.distribution_for_parts(("[genre.name]",))
        return []

    @staticmethod
    def distribution_for_parts(parts: tuple[str, ...]) -> list[tuple[InformationNeed, float]]:
        for template_parts, weighted in _TEMPLATE_NEEDS:
            if frozenset(template_parts) == frozenset(parts):
                return [(NEEDS[name], weight) for name, weight in weighted]
        raise EvaluationError(f"no need distribution for {parts!r}")

    def sample_need(self, segmented: SegmentedQuery,
                    rng: DeterministicRng) -> InformationNeed | None:
        distribution = self.distribution(segmented)
        if not distribution:
            return None
        needs = [need for need, _weight in distribution]
        weights = [weight for _need, weight in distribution]
        return rng.weighted_choice(needs, weights)

    # -- gold standards ---------------------------------------------------------------

    def gold_atoms(self, need: InformationNeed,
                   segmented: SegmentedQuery) -> frozenset[Atom] | None:
        """Content atoms of the need's gold qunit instance for this query.

        None when the need is unanswerable, the definition's parameter
        cannot be bound from the query, or the gold instance is empty
        (the database has no data for it).
        """
        if need.gold_definition is None:
            return None
        definition = self.collection.definition(need.gold_definition)
        params: dict[str, object] = {}
        for binder in definition.binders:
            bound = False
            for segment in segmented.entities():
                if segment.table == binder.table and segment.column == binder.column:
                    params[binder.param] = segment.value
                    bound = True
                    break
            if not bound:
                return None
        instance = self.collection.materialize(need.gold_definition, params)
        if instance.is_empty:
            return None
        return instance.atoms()

    def answerable(self, segmented: SegmentedQuery) -> bool:
        """Whether at least one need of this query has a non-empty gold."""
        for need, _weight in self.distribution(segmented):
            if self.gold_atoms(need, segmented) is not None:
                return True
        return False

"""ASCII renderings of every reproduced table and figure.

Benchmarks call these so each `pytest benchmarks/` run prints the artifacts
next to their paper targets.
"""

from __future__ import annotations

from repro.datasets.querylog.analysis import LogStatistics
from repro.eval.relevance import SCALE
from repro.eval.userstudy import PAPER_SUMMARY, UserStudyResult
from repro.utils.tables import ascii_table, format_float

__all__ = [
    "render_table1",
    "render_table2",
    "render_sec52_statistics",
    "PAPER_SEC52_TARGETS",
]

#: The in-text numbers of Sec. 5.2 (measured over distinct queries).
PAPER_SEC52_TARGETS = {
    "total_queries": 98_549,
    "unique_queries": 46_901,
    "movie_related_fraction": 0.93,
    "single_entity": 0.36,       # "at least 36%"
    "entity_attribute": 0.20,
    "multi_entity": 0.02,        # "approximately 2%"
    "complex": 0.02,             # "less than 2%"
}


def render_table1(result: UserStudyResult) -> str:
    """The simulated Table 1 plus the aggregate comparison with the paper."""
    matrix = result.render()
    singles = result.single_entity_queries()
    under = result.underspecified_single_entity()
    summary = ascii_table(
        ("aggregate", "paper", "simulated"),
        [
            ("total queries", PAPER_SUMMARY["total_queries"], result.total_queries),
            ("single-entity queries", PAPER_SUMMARY["single_entity_queries"],
             len(singles)),
            ("underspecified single-entity",
             PAPER_SUMMARY["underspecified_single_entity"], len(under)),
            ("need<->query mapping", "many-to-many",
             "many-to-many" if result.is_many_to_many() else "NOT many-to-many"),
        ],
        title="Table 1 aggregates: paper vs simulation",
    )
    return f"{matrix}\n\n{summary}"


def render_table2() -> str:
    """Table 2: the survey options (reproduced verbatim by the rater model)."""
    rows = [(format_float(score, 1), label) for score, label in SCALE]
    return ascii_table(("score", "rating"), rows, title="Table 2: Survey Options")


def render_sec52_statistics(stats: LogStatistics) -> str:
    """Side-by-side: paper's Sec. 5.2 numbers vs the synthetic log."""
    rows = [
        ("total queries", PAPER_SEC52_TARGETS["total_queries"],
         stats.total_queries),
        ("unique queries", PAPER_SEC52_TARGETS["unique_queries"],
         stats.unique_queries),
        ("movie-related (unique)",
         f"~{PAPER_SEC52_TARGETS['movie_related_fraction']:.0%}",
         f"{stats.movie_related_fraction:.1%}"),
        ("single entity", f">={PAPER_SEC52_TARGETS['single_entity']:.0%}",
         f"{stats.fraction('single_entity'):.1%}"),
        ("entity attribute", f"{PAPER_SEC52_TARGETS['entity_attribute']:.0%}",
         f"{stats.fraction('entity_attribute'):.1%}"),
        ("multi entity", f"~{PAPER_SEC52_TARGETS['multi_entity']:.0%}",
         f"{stats.fraction('multi_entity'):.1%}"),
        ("complex / aggregate", f"<{PAPER_SEC52_TARGETS['complex']:.0%}",
         f"{stats.fraction('complex'):.1%}"),
    ]
    return ascii_table(("statistic", "paper", "synthetic log"), rows,
                       title="Sec. 5.2: query-log statistics")

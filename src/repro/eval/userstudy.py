"""Simulation of the paper's five-user study (Table 1, Sec. 5.1).

Five users, each naming five movie information needs and the keyword query
they would type for each.  The paper's headline observations:

* the need↔query mapping is many-to-many (the same need is expressed many
  ways; the same query form serves several needs);
* 10 of the 25 queries were single-entity, 8 of those underspecified.

We simulate users as (need preference x formulation habit) samplers whose
distributions encode Table 1's cells, then measure the same aggregates on
the simulated matrix.  ``PAPER_SUMMARY`` records the paper's numbers for
side-by-side reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import DeterministicRng
from repro.utils.tables import ascii_table

__all__ = ["UserStudySimulator", "UserStudyResult", "PAPER_SUMMARY"]

#: The aggregates the paper reports for Table 1.
PAPER_SUMMARY = {
    "users": 5,
    "needs_per_user": 5,
    "total_queries": 25,
    "single_entity_queries": 10,
    "underspecified_single_entity": 8,
}

# Query-type columns exactly as in Table 1.
QUERY_TYPES = (
    "[title]",
    "[title] box office",
    "[actor] [award] [year]",
    "[actor]",
    "[actor] [genre]",
    "[title] ost",
    "[title] cast",
    "[title] [freetext]",
    "movie [freetext]",
    "[title] year",
    "[title] posters",
    "[title] plot",
    "don't know",
)

_SINGLE_ENTITY_TYPES = frozenset({"[title]", "[actor]"})

# Information-need rows with (popularity, formulation distribution).
# Formulations lean on the cells Table 1 shows (e.g. soundtracks appear as
# "[title] ost" and as a bare "[title]").
NEED_PROFILES: dict[str, tuple[float, tuple[tuple[str, float], ...]]] = {
    "movie summary": (1.0, (("[title]", 0.45), ("[title] [freetext]", 0.2),
                            ("movie [freetext]", 0.15), ("[title] year", 0.1),
                            ("don't know", 0.1))),
    "cast": (0.8, (("[title] cast", 0.55), ("[title]", 0.25),
                   ("[title] [freetext]", 0.2))),
    "filmography": (0.8, (("[actor]", 0.7), ("[actor] [genre]", 0.3))),
    "coactorship": (0.6, (("[actor]", 0.45), ("[title] cast", 0.3),
                          ("don't know", 0.25))),
    "posters": (0.3, (("[title] posters", 0.6), ("[title]", 0.4))),
    "related movies": (0.4, (("[title]", 0.6), ("don't know", 0.4))),
    "awards": (0.5, (("[actor] [award] [year]", 0.5), ("[title]", 0.3),
                     ("don't know", 0.2))),
    "movies of period": (0.4, (("[actor] [award] [year]", 0.25),
                               ("movie [freetext]", 0.4),
                               ("[title] year", 0.35))),
    "charts / lists": (0.4, (("movie [freetext]", 0.55), ("[title]", 0.2),
                             ("don't know", 0.25))),
    "recommendations": (0.4, (("movie [freetext]", 0.4), ("don't know", 0.6))),
    "soundtracks": (0.4, (("[title] ost", 0.55), ("[title]", 0.45))),
    "trivia": (0.4, (("[title] [freetext]", 0.45), ("[title] plot", 0.3),
                     ("don't know", 0.25))),
    "box office": (0.5, (("[title] box office", 0.6),
                         ("[title] [freetext]", 0.2), ("don't know", 0.2))),
}

# Needs whose bare-entity formulation is *not* underspecified (the single
# entity fully determines the default answer a user with this need wants).
_DEFAULT_NEED_FOR_TYPE = {
    "[title]": "movie summary",
    "[actor]": "filmography",
}


@dataclass(frozen=True)
class UserStudyResult:
    """The simulated Table 1."""

    cells: tuple[tuple[str, str, str], ...]  # (need, query_type, user_label)

    @property
    def total_queries(self) -> int:
        return len(self.cells)

    def single_entity_queries(self) -> list[tuple[str, str, str]]:
        return [cell for cell in self.cells if cell[1] in _SINGLE_ENTITY_TYPES]

    def underspecified_single_entity(self) -> list[tuple[str, str, str]]:
        """Single-entity queries whose need is not the type's default —
        the user could have written a better query by adding predicates."""
        return [
            (need, query_type, user) for need, query_type, user
            in self.single_entity_queries()
            if _DEFAULT_NEED_FOR_TYPE.get(query_type) != need
        ]

    def needs_per_query_type(self) -> dict[str, set[str]]:
        mapping: dict[str, set[str]] = {}
        for need, query_type, _user in self.cells:
            mapping.setdefault(query_type, set()).add(need)
        return mapping

    def query_types_per_need(self) -> dict[str, set[str]]:
        mapping: dict[str, set[str]] = {}
        for need, query_type, _user in self.cells:
            mapping.setdefault(need, set()).add(query_type)
        return mapping

    def is_many_to_many(self) -> bool:
        """The paper's core observation about need↔query mapping."""
        some_type_serves_many = any(
            len(needs) >= 2 for needs in self.needs_per_query_type().values()
        )
        some_need_expressed_many_ways = any(
            len(types) >= 2 for types in self.query_types_per_need().values()
        )
        return some_type_serves_many and some_need_expressed_many_ways

    def render(self) -> str:
        """ASCII rendering in the layout of Table 1."""
        used_types = [qt for qt in QUERY_TYPES
                      if any(cell[1] == qt for cell in self.cells)]
        headers = ["info. need"] + used_types
        rows = []
        for need in NEED_PROFILES:
            entries = {
                query_type: ",".join(sorted(
                    user for n, qt, user in self.cells
                    if n == need and qt == query_type
                ))
                for query_type in used_types
            }
            if any(entries.values()):
                rows.append([need] + [entries[qt] for qt in used_types])
        return ascii_table(headers, rows,
                           title="Information Needs vs Keyword Queries (simulated)")


class UserStudySimulator:
    """Samples the five-user study."""

    def __init__(self, seed: int = 31):
        self.seed = seed

    def run(self, n_users: int = 5, needs_per_user: int = 5) -> UserStudyResult:
        if n_users <= 0 or needs_per_user <= 0:
            raise ValueError("need positive user and need counts")
        if needs_per_user > len(NEED_PROFILES):
            raise ValueError(
                f"needs_per_user {needs_per_user} exceeds the "
                f"{len(NEED_PROFILES)}-need catalogue"
            )
        rng = DeterministicRng(self.seed)
        labels = [chr(ord("a") + i) for i in range(n_users)]
        cells: list[tuple[str, str, str]] = []
        need_names = list(NEED_PROFILES)
        popularity = [NEED_PROFILES[name][0] for name in need_names]
        for label in labels:
            user_rng = rng.fork(f"user-{label}")
            chosen = user_rng.weighted_sample(need_names, popularity,
                                              needs_per_user)
            for need in sorted(chosen):
                _pop, formulations = NEED_PROFILES[need]
                query_type = user_rng.weighted_choice(
                    [qt for qt, _w in formulations],
                    [w for _qt, w in formulations],
                )
                cells.append((need, query_type, label))
        return UserStudyResult(cells=tuple(cells))

"""Deterministic query paraphrasing for the hybrid-retrieval eval.

The Qunits paper's central retrieval scenario is the query whose
*phrasing* misses the decorated instance text — the user asks for the
concept, not the exact keywords the qunit document happens to contain.
To measure how much the hybrid (lexical + char-n-gram vector) strategy
recovers of what pure lexical retrieval loses, ``BENCH_hybrid.json``
needs queries that are *lexically broken but visually close* to their
clean originals.

:func:`paraphrase_query` produces exactly that: every sufficiently long
token is perturbed by one seeded character-level edit (adjacent-swap,
double, or drop), so the edited token no longer equals any index term —
killing the inverted-index match — while most of its character n-grams
survive, keeping the hashing embedder's cosine similarity high.  The
perturbation is a pure function of ``(query, seed)`` (the RNG forks off
:class:`~repro.utils.rng.DeterministicRng`), so the eval set is
reproducible across runs and machines.
"""

from __future__ import annotations

from repro.utils.rng import DeterministicRng

__all__ = ["perturb_token", "paraphrase_query", "MIN_PERTURB_LENGTH"]

#: Tokens shorter than this pass through unmodified: a one-character
#: edit on a 3-letter word leaves too few shared n-grams for *any*
#: embedder to recover, which would measure noise, not retrieval.
MIN_PERTURB_LENGTH = 4


def perturb_token(token: str, rng: DeterministicRng) -> str:
    """One seeded character-level edit of ``token``.

    Picks uniformly among swapping two adjacent interior characters,
    doubling one character, and dropping one interior character.  The
    edit position avoids the first character, which both keeps the edit
    visually plausible (typos cluster word-internally) and preserves the
    token's leading n-grams.  Tokens shorter than
    :data:`MIN_PERTURB_LENGTH` are returned unchanged.
    """
    if len(token) < MIN_PERTURB_LENGTH:
        return token
    kind = rng.choice(("swap", "double", "drop"))
    if kind == "swap":
        i = rng.randint(1, len(token) - 2)
        return token[:i] + token[i + 1] + token[i] + token[i + 2:]
    if kind == "double":
        i = rng.randint(1, len(token) - 1)
        return token[:i] + token[i] + token[i:]
    i = rng.randint(1, len(token) - 2)
    return token[:i] + token[i + 1:]


def paraphrase_query(query: str, seed: int = 0) -> str:
    """The lexically-broken paraphrase of ``query``.

    Every whitespace token of length >= :data:`MIN_PERTURB_LENGTH` gets
    one character edit from its own forked RNG stream, so perturbing one
    token never changes how another is perturbed and the result is a
    pure function of ``(query, seed)``.
    """
    rng = DeterministicRng(seed).fork(query)
    return " ".join(perturb_token(token, rng.fork(f"{i}:{token}"))
                    for i, token in enumerate(query.split()))

"""The Figure 3 experiment: result quality across search systems.

Rebuilds the paper's Sec. 5.3 study end to end on the synthetic substrates:

1. generate the database, the query log and the evidence corpus;
2. derive qunit collections four ways (expert, schema+data, query-log
   rollup, external evidence) and build the three baselines (BANKS,
   XML-LCA, XML-MLCA) over the same data;
3. draw the 25-query workload from the log's top typed templates;
4. have a 20-rater panel judge each system's best answer per query on the
   Table 2 scale, each rater under their own sampled information need;
5. report mean relevance per system — the bars of Figure 3 — plus the
   inter-rater agreement statistic.

"Theoretical max" is the paper's ceiling: a hypothetical system whose
every answer every rater scores 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.answer import Answer, Atom, atom
from repro.baselines import (
    BanksSearch,
    DiscoverSearch,
    ObjectRankSearch,
    XmlLcaSearch,
    XmlMlcaSearch,
)
from repro.core import QunitCollection, UtilityModel
from repro.core.derivation import (
    ExternalEvidenceDeriver,
    FormBasedDeriver,
    QueryLogDeriver,
    SchemaDataDeriver,
    imdb_expert_qunits,
)
from repro.core.search import QunitSearchEngine
from repro.datasets.evidence import generate_wiki_corpus
from repro.datasets.imdb import generate_imdb
from repro.datasets.querylog import QueryLogAnalyzer, QueryLogGenerator
from repro.errors import EvaluationError
from repro.eval.needs import NeedModel
from repro.eval.relevance import SimulatedRaterPool
from repro.graph.data_graph import DataGraph
from repro.ir.metrics import majority_agreement, mean
from repro.utils.rng import DeterministicRng
from repro.utils.tables import ascii_bar_chart, ascii_table
from repro.xmlview import build_xml_view
from repro.xmlview.index import TreeTextIndex

__all__ = ["ResultQualityExperiment", "ResultQualityReport", "SystemScore"]

THEORETICAL_MAX = "theoretical-max"


@dataclass(frozen=True)
class SystemScore:
    """One bar of Figure 3."""

    system: str
    mean_score: float
    per_query: tuple[float, ...]


@dataclass(frozen=True)
class ResultQualityReport:
    """The full Figure 3 reproduction."""

    scores: tuple[SystemScore, ...]
    queries: tuple[str, ...]
    agreement_per_query: tuple[float, ...]
    n_raters: int

    def mean_of(self, system: str) -> float:
        for score in self.scores:
            if score.system == system:
                return score.mean_score
        raise EvaluationError(f"no score for system {system!r}")

    def ordering(self) -> list[str]:
        """Systems from worst to best mean score."""
        return [score.system
                for score in sorted(self.scores, key=lambda s: s.mean_score)]

    @property
    def high_agreement_fraction(self) -> float:
        """Fraction of queries whose winning answer had >= 80% majority
        (the paper: "a third of the questions having an 80% or higher...")."""
        if not self.agreement_per_query:
            return 0.0
        high = sum(1 for value in self.agreement_per_query if value >= 0.8)
        return high / len(self.agreement_per_query)

    def render(self, width: int = 40) -> str:
        ordered = sorted(self.scores, key=lambda s: s.mean_score)
        chart = ascii_bar_chart(
            [score.system for score in ordered],
            [score.mean_score for score in ordered],
            width=width,
            title="Figure 3: Comparing Result Quality against Traditional Methods",
            max_value=1.0,
        )
        footer = (
            f"\n({len(self.queries)} queries, {self.n_raters} raters; "
            f"{self.high_agreement_fraction:.0%} of queries reached an 80%+ "
            f"rater majority)"
        )
        return chart + footer

    def render_table(self) -> str:
        rows = [
            (score.system, score.mean_score)
            for score in sorted(self.scores, key=lambda s: -s.mean_score)
        ]
        return ascii_table(("system", "mean relevance"), rows)


class ResultQualityExperiment:
    """Builds every system once, then runs the rated comparison."""

    def __init__(self, scale: float = 0.3, seed: int = 7, n_raters: int = 20,
                 n_queries: int = 25, max_instances: int | None = 150,
                 k1: int = 4, k2: int = 3):
        self.scale = scale
        self.seed = seed
        self.n_raters = n_raters
        self.n_queries = n_queries
        self.max_instances = max_instances
        self.k1 = k1
        self.k2 = k2
        self._built = False

    # -- construction -----------------------------------------------------------

    def setup(self) -> None:
        """Generate data and build all systems (idempotent)."""
        if self._built:
            return
        self.database = generate_imdb(scale=self.scale, seed=self.seed)
        log_generator = QueryLogGenerator(self.database, seed=self.seed + 1)
        self.log = log_generator.generate(log_generator.recommended_unique())
        self.analyzer = QueryLogAnalyzer(self.database)
        self.template_frequencies = self.analyzer.template_frequencies(self.log)
        self.pages = generate_wiki_corpus(self.database, seed=self.seed + 2)

        utility = UtilityModel(self.database)
        self.collections: dict[str, QunitCollection] = {}
        self.engines: dict[str, QunitSearchEngine] = {}

        expert_defs = imdb_expert_qunits()
        self._register("expert", expert_defs)

        schema_defs = SchemaDataDeriver(self.database, self.k1, self.k2).derive()
        self._register("schema_data",
                       utility.assign(schema_defs, self.template_frequencies))

        log_defs = QueryLogDeriver(self.database).derive(self.log.as_list())
        self._register("query_log", log_defs)

        evidence_defs = ExternalEvidenceDeriver(self.database).derive(self.pages)
        self._register("external", evidence_defs)

        forms_defs = FormBasedDeriver(self.database, k1=self.k1,
                                      relations_per_entity=self.k2).derive()
        self._register("forms",
                       utility.assign(forms_defs, self.template_frequencies))

        self.data_graph = DataGraph(self.database)
        self.banks = BanksSearch(self.data_graph)
        self.discover = DiscoverSearch(self.database)
        self.objectrank = ObjectRankSearch(self.data_graph)
        xml_root = build_xml_view(self.database)
        tree_index = TreeTextIndex(xml_root)
        self.lca = XmlLcaSearch(xml_root, tree_index)
        self.mlca = XmlMlcaSearch(xml_root, tree_index)

        self.need_model = NeedModel(self.collections["expert"])
        self.workload = self.analyzer.benchmark_workload(self.log)[: self.n_queries]
        if not self.workload:
            raise EvaluationError("workload construction yielded no queries")
        self._built = True

    def _register(self, flavor: str, definitions) -> None:
        collection = QunitCollection(
            self.database, definitions,
            max_instances_per_definition=self.max_instances,
        )
        self.collections[flavor] = collection
        self.engines[flavor] = QunitSearchEngine(collection, flavor=flavor)

    # -- systems under test --------------------------------------------------------

    def systems(self) -> dict[str, object]:
        """name -> object with a ``best(query) -> Answer`` method."""
        self.setup()
        under_test: dict[str, object] = {
            "banks": self.banks,
            "discover": self.discover,
            "objectrank": self.objectrank,
            "xml-lca": self.lca,
            "xml-mlca": self.mlca,
        }
        for flavor, engine in self.engines.items():
            under_test[engine.system_name] = engine
        return under_test

    # -- the experiment ---------------------------------------------------------------

    def _rater_golds(self, query_index: int, segmented,
                     pool: SimulatedRaterPool) -> list[frozenset[Atom] | None]:
        """Per-rater gold standards for one workload query (deterministic
        in (seed, query index, rater index) so every system is judged
        against identical intents)."""
        rng_root = DeterministicRng(self.seed + 4)
        golds: list[frozenset[Atom] | None] = []
        for rater_index in range(len(pool.raters)):
            rater_rng = rng_root.fork(f"q{query_index}-r{rater_index}")
            need = self.need_model.sample_need(segmented, rater_rng)
            golds.append(
                None if need is None
                else self.need_model.gold_atoms(need, segmented)
            )
        return golds

    def evaluate_system(self, system, name: str | None = None,
                        pool: SimulatedRaterPool | None = None) -> SystemScore:
        """Score a single system against the shared workload and rater
        panel — the building block the ablation benchmarks sweep."""
        self.setup()
        pool = pool or SimulatedRaterPool(self.n_raters, seed=self.seed + 3)
        per_query: list[float] = []
        for query_index, benchmark_query in enumerate(self.workload):
            segmented = self.engines["expert"].segment(benchmark_query.query)
            golds = self._rater_golds(query_index, segmented, pool)
            query_atoms = self._query_atoms(segmented)
            answer = system.best(benchmark_query.query)
            ratings = [rater.rate(answer, gold, query_atoms)
                       for rater, gold in zip(pool.raters, golds)]
            per_query.append(mean([rating.score for rating in ratings]))
        system_name = name or getattr(system, "system_name",
                                      getattr(system, "SYSTEM_NAME", "system"))
        return SystemScore(system=system_name, mean_score=mean(per_query),
                           per_query=tuple(per_query))

    def run(self) -> ResultQualityReport:
        self.setup()
        systems = self.systems()
        pool = SimulatedRaterPool(self.n_raters, seed=self.seed + 3)
        per_system_scores: dict[str, list[float]] = {
            name: [] for name in systems
        }
        per_system_scores[THEORETICAL_MAX] = []
        agreement_per_query: list[float] = []

        for query_index, benchmark_query in enumerate(self.workload):
            segmented = self.engines["expert"].segment(benchmark_query.query)
            query_atoms = self._query_atoms(segmented)
            # Each rater samples a personal intent for this query.
            golds = self._rater_golds(query_index, segmented, pool)

            query_ratings: dict[str, list] = {}
            for name, system in systems.items():
                answer = system.best(benchmark_query.query)  # type: ignore[attr-defined]
                ratings = [
                    rater.rate(answer, gold, query_atoms)
                    for rater, gold in zip(pool.raters, golds)
                ]
                query_ratings[name] = ratings
                per_system_scores[name].append(
                    mean([rating.score for rating in ratings])
                )
            per_system_scores[THEORETICAL_MAX].append(1.0)

            winner = max(query_ratings,
                         key=lambda name: mean([r.score for r in query_ratings[name]]))
            # Agreement counts the modal *survey option* (Table 2 label),
            # the granularity the paper's raters actually answered at.
            agreement_per_query.append(
                majority_agreement([r.label for r in query_ratings[winner]])
            )

        scores = tuple(
            SystemScore(system=name, mean_score=mean(values),
                        per_query=tuple(values))
            for name, values in sorted(per_system_scores.items())
        )
        return ResultQualityReport(
            scores=scores,
            queries=tuple(item.query for item in self.workload),
            agreement_per_query=tuple(agreement_per_query),
            n_raters=self.n_raters,
        )

    @staticmethod
    def _query_atoms(segmented) -> frozenset[Atom]:
        """Atoms the query itself already states (for "no information above
        the query" judgments)."""
        atoms = set()
        for segment in segmented.entities():
            if segment.table and segment.column and segment.value is not None:
                atoms.add(atom(segment.table, segment.column, segment.value))
        return frozenset(atoms)

"""Simulated relevance raters on the paper's Table 2 scale.

The paper sourced 20 Mechanical Turk users who rated each answer:

====== =============================================
score  rating
====== =============================================
0      provides incorrect information
0      provides no information above the query
0.5    provides correct, but incomplete information
0.5    provides correct, but excessive information
1.0    provides correct information
====== =============================================

Our raters measure an answer's content against the gold standard of the
rater's sampled information need:

* **recall** of gold atoms decides correct vs incomplete vs incorrect;
* **precision** decides excessive (right content buried in junk);
* an answer whose content adds nothing beyond the query string itself is
  "no information above the query";
* per-rater threshold jitter reproduces human disagreement (the paper saw
  ≥80% majorities on only about a third of the questions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.answer import Answer, Atom
from repro.ir.metrics import majority_agreement, mean
from repro.utils.rng import DeterministicRng

__all__ = ["Rating", "SimulatedRater", "SimulatedRaterPool", "SCALE"]

# The Table 2 scale: (score, label).
SCALE: tuple[tuple[float, str], ...] = (
    (0.0, "provides incorrect information"),
    (0.0, "provides no information above the query"),
    (0.5, "provides correct, but incomplete information"),
    (0.5, "provides correct, but excessive information"),
    (1.0, "provides correct information"),
)


@dataclass(frozen=True)
class Rating:
    """One rater's judgment of one answer."""

    score: float
    label: str

    def __post_init__(self) -> None:
        if (self.score, self.label) not in SCALE:
            raise ValueError(f"rating {self.score}/{self.label!r} is not on the scale")


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


class SimulatedRater:
    """One rater with personal leniency thresholds."""

    def __init__(self, rng: DeterministicRng):
        # Personal thresholds, jittered around the population means.  The
        # spreads are tuned so the panel reproduces the paper's agreement
        # regime (roughly a third of questions reach an 80%+ majority).
        self.recall_correct = _clamp(rng.gauss(0.70, 0.13), 0.45, 0.95)
        self.recall_partial = _clamp(rng.gauss(0.25, 0.10), 0.05, 0.50)
        self.precision_floor = _clamp(rng.gauss(0.20, 0.10), 0.03, 0.50)
        # Occasional attention slip: the rater misreads one grade step.
        self._rng = rng
        self.slip_probability = _clamp(rng.gauss(0.08, 0.03), 0.0, 0.20)

    def rate(self, answer: Answer, gold: frozenset[Atom] | None,
             query_atoms: frozenset[Atom] = frozenset()) -> Rating:
        """Judge one answer against one gold standard."""
        rating = self._deliberate(answer, gold, query_atoms)
        if self._rng.coin(self.slip_probability):
            rating = self._slip(rating)
        return rating

    def _deliberate(self, answer: Answer, gold: frozenset[Atom] | None,
                    query_atoms: frozenset[Atom]) -> Rating:
        if answer.is_empty:
            return Rating(0.0, "provides no information above the query")
        if gold is None:
            # The need cannot be met by any database content; whatever the
            # system returned is beside the point.
            return Rating(0.0, "provides incorrect information")
        overlap = answer.atoms & gold
        recall = len(overlap) / len(gold) if gold else 0.0
        precision = len(overlap) / len(answer.atoms) if answer.atoms else 0.0

        if recall < self.recall_partial:
            return Rating(0.0, "provides incorrect information")
        # The answer adds nothing beyond what the user already typed.
        if answer.atoms <= query_atoms:
            return Rating(0.0, "provides no information above the query")
        if recall < self.recall_correct:
            return Rating(0.5, "provides correct, but incomplete information")
        if precision < self.precision_floor:
            return Rating(0.5, "provides correct, but excessive information")
        return Rating(1.0, "provides correct information")

    def _slip(self, rating: Rating) -> Rating:
        """Move one step on the scale (attention noise)."""
        if rating.score == 1.0:
            return Rating(0.5, "provides correct, but incomplete information")
        if rating.score == 0.5:
            return Rating(1.0, "provides correct information") \
                if self._rng.coin(0.5) else Rating(0.0, "provides incorrect information")
        return Rating(0.5, "provides correct, but incomplete information")


class SimulatedRaterPool:
    """The 20-user panel: rates answers, aggregates scores and agreement."""

    def __init__(self, n_raters: int = 20, seed: int = 97):
        if n_raters <= 0:
            raise ValueError(f"need a positive rater count, got {n_raters}")
        root = DeterministicRng(seed)
        self.raters = [SimulatedRater(root.fork(f"rater-{i}"))
                       for i in range(n_raters)]

    def __len__(self) -> int:
        return len(self.raters)

    def rate(self, answer: Answer, gold: frozenset[Atom] | None,
             query_atoms: frozenset[Atom] = frozenset()) -> list[Rating]:
        return [rater.rate(answer, gold, query_atoms) for rater in self.raters]

    @staticmethod
    def mean_score(ratings: list[Rating]) -> float:
        return mean([rating.score for rating in ratings])

    @staticmethod
    def agreement(ratings: list[Rating]) -> float:
        """Fraction of raters voting for the modal score."""
        return majority_agreement([rating.score for rating in ratings])

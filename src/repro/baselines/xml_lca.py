"""XML keyword-search baselines: SLCA ("LCA") and MLCA retrieval.

Both return the complete subtree rooted at the chosen ancestor — the result
demarcation rule the paper criticizes ("including the complete sub-tree
rooted at the least common ancestor of matching nodes... often including
both too much unwanted information and too little desired information").
Faithfully reproducing that failure mode is the point: it is what the
simulated raters react to in the Figure 3 experiment.

Ranking: smaller result subtrees first (the most specific containing
element), ties by document order — the XRank-flavoured preference for
deeper, tighter answers.
"""

from __future__ import annotations

from repro.answer import Answer
from repro.xmlview.index import TreeTextIndex
from repro.xmlview.operators import mlca, slca
from repro.xmlview.tree import XmlNode

__all__ = ["XmlLcaSearch", "XmlMlcaSearch"]


class XmlLcaSearch:
    """Smallest-LCA keyword retrieval over an XML view."""

    SYSTEM_NAME = "xml-lca"
    _operator = staticmethod(slca)

    def __init__(self, root: XmlNode, index: TreeTextIndex | None = None):
        self.root = root
        self.index = index or TreeTextIndex(root)

    def search(self, query: str, limit: int = 3) -> list[Answer]:
        match_sets = self.index.match_sets(query)
        if not match_sets or any(not matches for matches in match_sets):
            return []
        ancestors = self._operator(self.root, match_sets)
        ranked = sorted(ancestors, key=lambda node: (node.size(), node.dewey))
        answers = []
        for node in ranked[:limit]:
            answers.append(Answer(
                system=self.SYSTEM_NAME,
                atoms=node.subtree_atoms(),
                text=node.subtree_text(),
                score=1.0 / (1.0 + node.size()),
                provenance=(
                    ("tag", node.tag),
                    ("dewey", node.dewey),
                    ("subtree_size", node.size()),
                ),
            ))
        return answers

    def best(self, query: str) -> Answer:
        answers = self.search(query, limit=1)
        return answers[0] if answers else Answer.empty(self.SYSTEM_NAME)


class XmlMlcaSearch(XmlLcaSearch):
    """Meaningful-LCA retrieval (Schema-Free XQuery's MLCA operator)."""

    SYSTEM_NAME = "xml-mlca"
    _operator = staticmethod(mlca)

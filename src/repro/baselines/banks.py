"""BANKS: keyword search as minimal spanning trees over the data graph.

Implements backward expanding search (Bhalotia et al., ICDE 2002):

1. map each keyword to the set of tuple nodes containing it;
2. run a shortest-path expansion *backwards* from every keyword's node set
   (multi-source Dijkstra per keyword over FK edges, whose weights penalize
   high-degree hubs);
3. any node reached from **all** keyword sets is a candidate *root*; its
   answer tree is the union of the shortest paths from the root to the
   nearest match of each keyword;
4. trees are ranked by node prestige of the root divided by total tree
   weight, and the top-k distinct trees are returned.

The answer content is every tuple in the tree — the paper's critique is
precisely that such trees chain through junction tuples (too much plumbing)
while leaving referenced values unresolved (too little content); this
implementation faithfully has those properties.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


from repro.answer import Answer, atom
from repro.graph.data_graph import DataGraph, TupleNode
from repro.ir.analysis import Analyzer

__all__ = ["BanksSearch", "BanksTree"]


@dataclass(frozen=True)
class BanksTree:
    """One candidate answer: a root plus the union of its keyword paths."""

    root: TupleNode
    nodes: frozenset[TupleNode]
    weight: float
    score: float


class BanksSearch:
    """Keyword search over a :class:`~repro.graph.data_graph.DataGraph`."""

    SYSTEM_NAME = "banks"

    def __init__(self, data_graph: DataGraph, max_expansion: int = 20000):
        self.data_graph = data_graph
        self.analyzer = Analyzer(remove_stopwords=False, stem=False)
        self.max_expansion = max_expansion

    # -- public API -----------------------------------------------------------

    def search(self, query: str, limit: int = 3) -> list[Answer]:
        """Top-``limit`` answer trees for a keyword query."""
        trees = self.search_trees(query, limit)
        return [self._to_answer(tree) for tree in trees]

    def best(self, query: str) -> Answer:
        answers = self.search(query, limit=1)
        return answers[0] if answers else Answer.empty(self.SYSTEM_NAME)

    def search_trees(self, query: str, limit: int = 3) -> list[BanksTree]:
        keywords = self.analyzer.raw_tokens(query)
        if not keywords:
            return []
        match_sets = [self.data_graph.nodes_matching_keyword(k) for k in keywords]
        if any(not matches for matches in match_sets):
            return []
        # Single keyword: each matching tuple is its own (rooted) answer.
        if len(match_sets) == 1:
            trees = [
                BanksTree(node, frozenset([node]), 0.0,
                          self.data_graph.prestige(node))
                for node in match_sets[0]
            ]
            trees.sort(key=lambda tree: (-tree.score, tree.root))
            return trees[:limit]
        return self._backward_expand(match_sets, limit)

    # -- core algorithm ---------------------------------------------------------

    def _backward_expand(self, match_sets: list[set[TupleNode]],
                         limit: int) -> list[BanksTree]:
        graph = self.data_graph.graph
        n_keywords = len(match_sets)
        # distances[i]: node -> (distance from keyword i's nearest match)
        distances: list[dict[TupleNode, float]] = [{} for _ in range(n_keywords)]
        parents: list[dict[TupleNode, TupleNode | None]] = [{} for _ in range(n_keywords)]

        # One multi-source Dijkstra per keyword, budgeted.
        for i, matches in enumerate(match_sets):
            heap: list[tuple[float, TupleNode, TupleNode | None]] = [
                (0.0, node, None) for node in sorted(matches)
            ]
            heapq.heapify(heap)
            expanded = 0
            while heap and expanded < self.max_expansion:
                dist, node, parent = heapq.heappop(heap)
                if node in distances[i]:
                    continue
                distances[i][node] = dist
                parents[i][node] = parent
                expanded += 1
                for neighbor in graph.neighbors(node):
                    if neighbor not in distances[i]:
                        weight = graph.edges[node, neighbor]["weight"]
                        heapq.heappush(heap, (dist + weight, neighbor, node))

        # Candidate roots: reached from every keyword.
        candidates = set(distances[0])
        for i in range(1, n_keywords):
            candidates &= set(distances[i])
        if not candidates:
            return []

        trees = []
        for root in candidates:
            nodes: set[TupleNode] = {root}
            total = 0.0
            for i in range(n_keywords):
                total += distances[i][root]
                step: TupleNode | None = root
                while step is not None and parents[i].get(step) is not None:
                    nodes.add(parents[i][step])  # type: ignore[arg-type]
                    step = parents[i][step]
                nodes.add(root)
            score = self.data_graph.prestige(root) / (1.0 + total)
            trees.append(BanksTree(root, frozenset(nodes), total, score))

        trees.sort(key=lambda tree: (-tree.score, tree.root))
        # Deduplicate by node set (different roots can induce the same tree).
        unique: list[BanksTree] = []
        seen: set[frozenset[TupleNode]] = set()
        for tree in trees:
            if tree.nodes in seen:
                continue
            seen.add(tree.nodes)
            unique.append(tree)
            if len(unique) >= limit:
                break
        return unique

    # -- answer construction -----------------------------------------------------

    def _to_answer(self, tree: BanksTree) -> Answer:
        atoms = set()
        text_parts: list[str] = []
        for node in sorted(tree.nodes):
            schema = self.data_graph.database.schema.table(node.table)
            row = self.data_graph.row(node)
            for column in schema.value_columns():
                value = row[column.name]
                if value is None:
                    continue
                atoms.add(atom(node.table, column.name, value))
                text_parts.append(str(value))
        return Answer(
            system=self.SYSTEM_NAME,
            atoms=frozenset(atoms),
            text=" ".join(text_parts),
            score=tree.score,
            provenance=(
                ("root", str(tree.root)),
                ("tree_size", len(tree.nodes)),
                ("tree_weight", tree.weight),
            ),
        )

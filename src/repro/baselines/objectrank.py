"""ObjectRank-style keyword search: authority transfer on the data graph.

The third ranking family the paper discusses (Balmin, Hristidis &
Papakonstantinou, VLDB 2004): "combines tuple-level PageRank from a
pre-computed data graph with keyword matching."  Implementation:

1. a *global* PageRank over the tuple graph (the authority prior);
2. per query, a *keyword-specific* personalized PageRank seeded at the
   tuples containing each keyword, idf-weighted so rare terms dominate;
3. tuples are ranked by the product of keyword authority and global
   authority, AND-filtered to tuples reachable from every keyword.

The answer is the top tuple with its own foreign keys resolved to text
(ObjectRank returns *objects*, not join trees) — typically "too little
desired information" for multi-fact needs, which is precisely where the
paper positions ranking-centric systems.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.answer import Answer, atom
from repro.graph.data_graph import DataGraph, TupleNode
from repro.ir.analysis import Analyzer

__all__ = ["ObjectRankSearch"]


class ObjectRankSearch:
    """Authority-based keyword search over one database."""

    SYSTEM_NAME = "objectrank"

    def __init__(self, data_graph: DataGraph, damping: float = 0.85,
                 max_iterations: int = 300):
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        self.data_graph = data_graph
        self.damping = damping
        self.max_iterations = max_iterations
        self.analyzer = Analyzer(remove_stopwords=False, stem=False)
        self._global_rank: dict[TupleNode, float] | None = None

    # -- authority ------------------------------------------------------------------

    def global_rank(self) -> dict[TupleNode, float]:
        """The query-independent authority prior (cached)."""
        if self._global_rank is None:
            graph = self.data_graph.graph
            if graph.number_of_nodes() == 0:
                self._global_rank = {}
            else:
                self._global_rank = nx.pagerank(
                    graph, alpha=self.damping,
                    max_iter=self.max_iterations, weight=None,
                )
        return self._global_rank

    def keyword_rank(self, keyword: str) -> dict[TupleNode, float]:
        """Personalized PageRank seeded at the keyword's matching tuples."""
        matches = self.data_graph.nodes_matching_keyword(keyword)
        if not matches:
            return {}
        personalization = {node: 1.0 for node in matches}
        return nx.pagerank(
            self.data_graph.graph, alpha=self.damping,
            personalization=personalization,
            max_iter=self.max_iterations, weight=None,
        )

    # -- search ----------------------------------------------------------------------

    def search(self, query: str, limit: int = 3) -> list[Answer]:
        keywords = self.analyzer.raw_tokens(query)
        if not keywords:
            return []
        per_keyword: list[dict[TupleNode, float]] = []
        for keyword in keywords:
            ranks = self.keyword_rank(keyword)
            if not ranks:
                return []  # AND semantics
            per_keyword.append(ranks)

        # idf weighting: rare keywords carry more authority mass.
        total_nodes = max(1, self.data_graph.node_count)
        weights = []
        for keyword in keywords:
            df = len(self.data_graph.nodes_matching_keyword(keyword))
            weights.append(math.log((total_nodes + 1) / (df + 0.5)))

        threshold = 1e-9
        combined: dict[TupleNode, float] = {}
        prior = self.global_rank()
        for node in per_keyword[0]:
            score = 0.0
            reachable_from_all = True
            for ranks, weight in zip(per_keyword, weights):
                value = ranks.get(node, 0.0)
                if value <= threshold:
                    reachable_from_all = False
                    break
                score += weight * value
            if reachable_from_all:
                combined[node] = score * (1.0 + prior.get(node, 0.0))

        ranked = sorted(combined.items(),
                        key=lambda item: (-item[1], item[0]))
        return [self._to_answer(node, score)
                for node, score in ranked[:limit]]

    def best(self, query: str) -> Answer:
        answers = self.search(query, limit=1)
        return answers[0] if answers else Answer.empty(self.SYSTEM_NAME)

    # -- answers --------------------------------------------------------------------

    def _to_answer(self, node: TupleNode, score: float) -> Answer:
        database = self.data_graph.database
        schema = database.schema.table(node.table)
        row = self.data_graph.row(node)
        atoms = set()
        text_parts: list[str] = []
        for column in schema.value_columns():
            value = row[column.name]
            if value is None:
                continue
            atoms.add(atom(node.table, column.name, value))
            text_parts.append(str(value))
        # Resolve the object's own references (an object page shows the
        # names behind its foreign keys, not the ids).
        for fk in schema.foreign_keys:
            key = row[fk.column]
            if key is None:
                continue
            for ref_row in database.lookup(fk.ref_table, fk.ref_column, key):
                for column in database.schema.table(fk.ref_table).searchable_columns():
                    value = ref_row[column.name]
                    if value is None:
                        continue
                    atoms.add(atom(fk.ref_table, column.name, value))
                    text_parts.append(str(value))
        return Answer(
            system=self.SYSTEM_NAME,
            atoms=frozenset(atoms),
            text=" ".join(text_parts),
            score=score,
            provenance=(("object", str(node)),),
        )

"""Baseline keyword-search systems the paper compares qunits against.

* :class:`BanksSearch` — BANKS [Bhalotia et al., ICDE 2002]: backward
  expanding search over the tuple data graph, returning minimal keyword
  spanning trees of joined tuples.
* :class:`DiscoverSearch` — DISCOVER/DBXplorer-style candidate networks:
  per-table keyword tuple sets joined through minimal schema-graph trees.
* :class:`XmlLcaSearch` — XRank-flavoured retrieval: the smallest XML
  element (SLCA) containing all keywords, returned with its whole subtree.
* :class:`XmlMlcaSearch` — Schema-Free XQuery's *meaningful* LCA, which
  filters coincidental ancestors.

All three consume the same database (through the data-graph and XML-view
adapters) and emit :class:`~repro.answer.Answer` objects so the evaluation
harness can score every system identically.
"""

from repro.baselines.banks import BanksSearch
from repro.baselines.discover import DiscoverSearch
from repro.baselines.objectrank import ObjectRankSearch
from repro.baselines.xml_lca import XmlLcaSearch, XmlMlcaSearch

__all__ = [
    "BanksSearch",
    "DiscoverSearch",
    "ObjectRankSearch",
    "XmlLcaSearch",
    "XmlMlcaSearch",
]

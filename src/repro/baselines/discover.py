"""DISCOVER/DBXplorer-style keyword search: candidate networks of tuple sets.

The second family of relational keyword-search systems the paper cites
(Agrawal et al.'s DBXplorer, Hristidis & Papakonstantinou's DISCOVER):

1. for each keyword, compute per-table *tuple sets* — the rows of each
   table whose text contains the keyword;
2. enumerate *candidate networks*: minimal join trees (via the schema
   graph) that connect one tuple set per keyword, possibly through "free"
   connector tables, up to a maximum network size;
3. execute each network with the keyword restrictions pushed into the
   joins; results are joined tuple trees ranked by network size (smaller
   joins first — the standard DISCOVER ranking).

Like BANKS, the answers exhibit the paper's diagnosed failure modes: the
result is the raw join tree, junction plumbing included, references
unresolved unless their table happens to be in the network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.answer import Answer, atom
from repro.errors import PlanError
from repro.graph.schema_graph import SchemaGraph
from repro.ir.analysis import Analyzer
from repro.relational.database import Database

__all__ = ["DiscoverSearch", "CandidateNetwork"]


@dataclass(frozen=True)
class CandidateNetwork:
    """One join tree: ordered tables plus per-table row restrictions."""

    tables: tuple[str, ...]
    restrictions: tuple[tuple[str, frozenset[int]], ...]

    @property
    def size(self) -> int:
        return len(self.tables)

    def restriction_for(self, table: str) -> frozenset[int] | None:
        for name, rows in self.restrictions:
            if name == table:
                return rows
        return None


class DiscoverSearch:
    """Candidate-network keyword search over one database."""

    SYSTEM_NAME = "discover"

    def __init__(self, database: Database, max_network_size: int = 5,
                 max_assignments: int = 64, max_results_per_network: int = 5):
        self.database = database
        self.schema_graph = SchemaGraph(database.schema)
        self.analyzer = Analyzer(remove_stopwords=False, stem=False)
        self.max_network_size = max_network_size
        self.max_assignments = max_assignments
        self.max_results_per_network = max_results_per_network

    # -- public API -----------------------------------------------------------

    def search(self, query: str, limit: int = 3) -> list[Answer]:
        keywords = self.analyzer.raw_tokens(query)
        if not keywords:
            return []
        tuple_sets = [self._tuple_sets(keyword) for keyword in keywords]
        if any(not sets for sets in tuple_sets):
            return []  # AND semantics: every keyword must match somewhere
        networks = self._candidate_networks(tuple_sets)
        answers: list[Answer] = []
        for network in networks:
            for assignment in self._execute(network):
                answers.append(self._to_answer(network, assignment))
                if len(answers) >= limit * 4:
                    break
            if len(answers) >= limit * 4:
                break
        answers.sort(key=lambda a: (-a.score, a.text))
        deduped: list[Answer] = []
        seen: set[frozenset] = set()
        for answer in answers:
            if answer.atoms in seen:
                continue
            seen.add(answer.atoms)
            deduped.append(answer)
            if len(deduped) >= limit:
                break
        return deduped

    def best(self, query: str) -> Answer:
        answers = self.search(query, limit=1)
        return answers[0] if answers else Answer.empty(self.SYSTEM_NAME)

    # -- tuple sets --------------------------------------------------------------

    def _tuple_sets(self, keyword: str) -> dict[str, set[int]]:
        """table -> row ids whose searchable text contains the keyword."""
        sets: dict[str, set[int]] = {}
        for table, _column, row_id in self.database.text_index().rows_with_token(keyword):
            sets.setdefault(table, set()).add(row_id)
        return sets

    # -- candidate network enumeration ----------------------------------------------

    def _candidate_networks(
        self, tuple_sets: list[dict[str, set[int]]]
    ) -> list[CandidateNetwork]:
        """Smallest-first networks covering all keywords."""
        candidate_tables = [sorted(sets) for sets in tuple_sets]
        networks: list[CandidateNetwork] = []
        seen: set[tuple] = set()
        assignments = itertools.islice(
            itertools.product(*candidate_tables), self.max_assignments
        )
        for assignment in assignments:
            needed = sorted(set(assignment))
            try:
                plan = self.schema_graph.join_plan(list(needed))
            except PlanError:
                continue
            if len(plan) > self.max_network_size:
                continue
            restrictions: dict[str, set[int]] = {}
            for keyword_index, table in enumerate(assignment):
                rows = tuple_sets[keyword_index][table]
                if table in restrictions:
                    restrictions[table] &= rows  # one table, many keywords
                else:
                    restrictions[table] = set(rows)
            if any(not rows for rows in restrictions.values()):
                continue
            network = CandidateNetwork(
                tables=tuple(plan),
                restrictions=tuple(sorted(
                    (table, frozenset(rows))
                    for table, rows in restrictions.items()
                )),
            )
            key = (network.tables, network.restrictions)
            if key in seen:
                continue
            seen.add(key)
            networks.append(network)
        networks.sort(key=lambda n: (n.size, n.tables))
        return networks

    # -- execution ----------------------------------------------------------------------

    def _execute(self, network: CandidateNetwork) -> list[dict[str, int]]:
        """Join the network; returns table -> row_id assignments."""
        first = network.tables[0]
        partial: list[dict[str, int]] = [
            {first: row_id} for row_id in self._rows_of(network, first)
        ]
        joined = [first]
        for table in network.tables[1:]:
            condition = self._join_to_any(table, joined)
            if condition is None:
                return []  # disconnected (shouldn't happen via join_plan)
            anchor, anchor_column, table_column = condition
            index = self.database.hash_index(table, table_column)
            allowed = network.restriction_for(table)
            grown: list[dict[str, int]] = []
            for binding in partial:
                anchor_row = self.database.table(anchor).row(binding[anchor])
                key = anchor_row[anchor_column]
                if key is None:
                    continue
                for row_id in index.lookup(key):
                    if allowed is not None and row_id not in allowed:
                        continue
                    new_binding = dict(binding)
                    new_binding[table] = row_id
                    grown.append(new_binding)
                    if len(grown) >= self.max_results_per_network * 50:
                        break
            partial = grown
            joined.append(table)
            if not partial:
                return []
        return partial[: self.max_results_per_network]

    def _rows_of(self, network: CandidateNetwork, table: str) -> list[int]:
        allowed = network.restriction_for(table)
        if allowed is not None:
            return sorted(allowed)
        return list(range(len(self.database.table(table))))

    def _join_to_any(self, table: str,
                     joined: list[str]) -> tuple[str, str, str] | None:
        """(anchor table, anchor column, new-table column) linking ``table``
        to an already-joined table."""
        for anchor in joined:
            condition = self.database.schema.join_condition(anchor, table)
            if condition is not None:
                anchor_column, table_column = condition
                return anchor, anchor_column, table_column
        return None

    # -- answers ---------------------------------------------------------------------------

    def _to_answer(self, network: CandidateNetwork,
                   assignment: dict[str, int]) -> Answer:
        atoms = set()
        text_parts: list[str] = []
        for table_name in sorted(assignment):
            row_id = assignment[table_name]
            schema = self.database.schema.table(table_name)
            row = self.database.table(table_name).row(row_id)
            for column in schema.value_columns():
                value = row[column.name]
                if value is None:
                    continue
                atoms.add(atom(table_name, column.name, value))
                text_parts.append(str(value))
        return Answer(
            system=self.SYSTEM_NAME,
            atoms=frozenset(atoms),
            text=" ".join(text_parts),
            score=1.0 / network.size,
            provenance=(
                ("network", network.tables),
                ("network_size", network.size),
            ),
        )

"""Exception hierarchy for the qunits reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems raise
the most specific subclass that applies; constructors accept a human-readable
message plus optional structured context kept on the instance for
programmatic inspection.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "UnknownTableError",
    "UnknownColumnError",
    "IntegrityError",
    "TypeMismatchError",
    "QueryError",
    "SqlSyntaxError",
    "PlanError",
    "BindError",
    "IndexError_",
    "SnapshotError",
    "TemplateError",
    "DerivationError",
    "SegmentationError",
    "EvaluationError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------

class SchemaError(ReproError):
    """A schema definition is invalid or violated."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the schema."""

    def __init__(self, table: str, known: tuple[str, ...] = ()):
        self.table = table
        self.known = known
        hint = f" (known tables: {', '.join(sorted(known))})" if known else ""
        super().__init__(f"unknown table {table!r}{hint}")


class UnknownColumnError(SchemaError):
    """A referenced column does not exist on its table."""

    def __init__(self, table: str, column: str, known: tuple[str, ...] = ()):
        self.table = table
        self.column = column
        self.known = known
        hint = f" (known columns: {', '.join(sorted(known))})" if known else ""
        super().__init__(f"unknown column {table}.{column}{hint}")


class IntegrityError(ReproError):
    """A primary-key or foreign-key constraint was violated."""


class TypeMismatchError(ReproError):
    """A value does not conform to its column's declared type."""

    def __init__(self, column: str, expected: str, value: object):
        self.column = column
        self.expected = expected
        self.value = value
        super().__init__(
            f"column {column!r} expects {expected}, got {type(value).__name__}: {value!r}"
        )


class QueryError(ReproError):
    """A query could not be evaluated."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} at position {position}: ...{snippet!r}..."
        super().__init__(message)


class PlanError(QueryError):
    """A logical plan is malformed or cannot be executed."""


class BindError(QueryError):
    """A query parameter was missing or superfluous at bind time."""


class IndexError_(ReproError):
    """An index was used inconsistently with its definition."""


class SnapshotError(ReproError):
    """A persisted snapshot could not be written or read back.

    Raised for unserializable content at save time and, at load time, for
    missing/truncated files, checksum mismatches, and unknown format
    versions (see :mod:`repro.ir.persist` for the file format).
    """


# ---------------------------------------------------------------------------
# Qunit core
# ---------------------------------------------------------------------------

class TemplateError(ReproError):
    """A conversion-expression template is malformed or cannot be rendered."""


class DerivationError(ReproError):
    """A qunit derivation strategy could not produce definitions."""


class SegmentationError(ReproError):
    """A keyword query could not be segmented."""


# ---------------------------------------------------------------------------
# Evaluation / datasets
# ---------------------------------------------------------------------------

class EvaluationError(ReproError):
    """The evaluation harness was misconfigured or produced no data."""


class DatasetError(ReproError):
    """A synthetic dataset could not be generated or loaded."""

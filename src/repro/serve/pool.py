"""A bounded LRU pool of live :class:`~repro.ir.retrieval.Searcher`\\ s.

Searchers are expensive to lose: each one accumulates an index snapshot,
per-(scorer, term) contribution arrays, an LRU result cache, and — for
the sharded flat searcher — a partition plus executor.  They are also
unbounded to keep: identity-keyed scorers (see
:meth:`~repro.ir.scoring.Scorer.cache_key`) would otherwise grow a
per-collection cache without limit in a long-running server.

:class:`SearcherPool` is the compromise the collection hands the query
pipeline: searchers are cached per ``(index name, scorer parameters)``
key, reused in LRU order, and the least-recently-used one is *closed*
(releasing any shard executor it owns) when the pool overflows.  The
pool owns searcher lifecycle so the pipeline's execute stage can grab
the same warm searcher for every query of a batch without knowing how
the collection builds them.

Concurrent batches share the pool, so eviction must not close a
searcher out from under a batch still dispatching to it: callers that
hold a searcher across yield points **pin** it with :meth:`acquire` and
:meth:`release`.  A pinned searcher evicted at ``max_size`` (or swept
by :meth:`close`) is *retired* — dropped from the pool but kept open —
and actually closed only when its last lease is released.  This is the
lifecycle seam the asyncio serving front end shuts shard workers down
through: draining releases the last leases, and only then do executors
die.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable

from repro.ir.retrieval import Searcher

__all__ = ["SearcherPool"]


class SearcherPool:
    """Bounded LRU cache of searchers, keyed by caller-chosen keys.

    ``max_size`` bounds the pool; overflow evicts the least recently
    used searcher — closing it immediately when unpinned, deferring the
    close to the final :meth:`release` when leases are outstanding.
    :meth:`close` sweeps every pooled searcher the same way (idempotent
    — pools are also context managers).
    """

    def __init__(self, max_size: int = 64):
        """An empty pool holding at most ``max_size`` searchers.

        Raises:
            ValueError: when ``max_size`` < 1.
        """
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self._searchers: OrderedDict[Hashable, Searcher] = OrderedDict()
        #: Outstanding leases per live searcher (id -> count).
        self._leases: dict[int, int] = {}
        #: Searchers evicted (or swept by :meth:`close`) while leased:
        #: kept open until their last lease is released.
        self._retired: dict[int, Searcher] = {}

    def get(self, key: Hashable,
            factory: Callable[[], Searcher]) -> Searcher:
        """The pooled searcher for ``key``, building it on first use.

        The searcher is *not* pinned: a later overflow may evict and
        close it.  Callers that hold the reference across other pool
        traffic (e.g. for a whole batch) should use :meth:`acquire`.

        Args:
            key: identity of the searcher (e.g. ``(definition name,
                scorer cache key)``); must be hashable.
            factory: zero-argument builder invoked only on a pool miss.

        Returns:
            The cached (or freshly built) searcher, marked most
            recently used.
        """
        searcher = self._searchers.get(key)
        if searcher is None:
            searcher = factory()
            self._searchers[key] = searcher
            while len(self._searchers) > self.max_size:
                _key, evicted = self._searchers.popitem(last=False)
                self._retire(evicted)
        else:
            self._searchers.move_to_end(key)
        return searcher

    def acquire(self, key: Hashable,
                factory: Callable[[], Searcher]) -> Searcher:
        """:meth:`get`, but pinned: the searcher stays open — even if
        evicted at ``max_size`` or swept by :meth:`close` — until the
        matching :meth:`release`.  Leases nest (acquire twice, release
        twice)."""
        searcher = self.get(key, factory)
        sid = id(searcher)
        self._leases[sid] = self._leases.get(sid, 0) + 1
        return searcher

    def release(self, searcher: Searcher) -> None:
        """Return one :meth:`acquire` lease.

        Dropping the last lease of a searcher that was evicted (or
        swept by :meth:`close`) in the meantime finally closes it; a
        still-pooled searcher just becomes evictable again.

        Raises:
            ValueError: when ``searcher`` has no outstanding lease.
        """
        sid = id(searcher)
        count = self._leases.get(sid)
        if count is None:
            raise ValueError("release() without a matching acquire()")
        if count > 1:
            self._leases[sid] = count - 1
            return
        del self._leases[sid]
        retired = self._retired.pop(sid, None)
        if retired is not None:
            retired.close()

    def _retire(self, searcher: Searcher) -> None:
        """Drop one searcher from the pool: close it now when unpinned,
        else park it until its last lease is released."""
        sid = id(searcher)
        if self._leases.get(sid, 0) > 0:
            self._retired[sid] = searcher
        else:
            searcher.close()

    def searchers(self) -> list[Searcher]:
        """The pooled searchers, least recently used first."""
        return list(self._searchers.values())

    def outstanding_leases(self) -> int:
        """Total :meth:`acquire` leases not yet released, across live
        and retired searchers — the serving front end's drain check:
        zero means no in-flight batch can still be dispatching into a
        searcher, so executors are safe to shut down."""
        return sum(self._leases.values())

    def invalidate(self) -> None:
        """Retire every pooled searcher so the next :meth:`get` or
        :meth:`acquire` rebuilds through its factory (idempotent).

        This is the generation-swap seam: when a
        :class:`~repro.core.store.CollectionWriter` commit swaps a
        collection's snapshots, it invalidates the pool so freshly built
        searchers see the new generation — while searchers pinned by
        in-flight batches stay open (and keep serving the old
        generation's snapshots, bounds, and caches) until their last
        :meth:`release`.  Entries are dropped, not kept: handing a
        closed searcher back out would depend on it lazily self-healing,
        a contract a future searcher with a terminal ``close()`` would
        silently break.
        """
        for searcher in self._searchers.values():
            self._retire(searcher)
        self._searchers.clear()

    def close(self) -> None:
        """Close and evict every pooled searcher (idempotent); the pool
        stays usable — a later :meth:`get` rebuilds via its factory.
        Same sweep as :meth:`invalidate`: searchers with outstanding
        :meth:`acquire` leases are retired instead of closed, and the
        close lands on their final :meth:`release`.
        """
        self.invalidate()

    def __len__(self) -> int:
        return len(self._searchers)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._searchers

    def __enter__(self) -> "SearcherPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""A bounded LRU pool of live :class:`~repro.ir.retrieval.Searcher`\\ s.

Searchers are expensive to lose: each one accumulates an index snapshot,
per-(scorer, term) contribution arrays, an LRU result cache, and — for
the sharded flat searcher — a partition plus executor.  They are also
unbounded to keep: identity-keyed scorers (see
:meth:`~repro.ir.scoring.Scorer.cache_key`) would otherwise grow a
per-collection cache without limit in a long-running server.

:class:`SearcherPool` is the compromise the collection hands the query
pipeline: searchers are cached per ``(index name, scorer parameters)``
key, reused in LRU order, and the least-recently-used one is *closed*
(releasing any shard executor it owns) when the pool overflows.  The
pool owns searcher lifecycle so the pipeline's execute stage can grab
the same warm searcher for every query of a batch without knowing how
the collection builds them.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable

from repro.ir.retrieval import Searcher

__all__ = ["SearcherPool"]


class SearcherPool:
    """Bounded LRU cache of searchers, keyed by caller-chosen keys.

    ``max_size`` bounds the pool; overflow closes and evicts the least
    recently used searcher.  :meth:`close` shuts down every pooled
    searcher (idempotent — pools are also context managers).
    """

    def __init__(self, max_size: int = 64):
        """An empty pool holding at most ``max_size`` searchers.

        Raises:
            ValueError: when ``max_size`` < 1.
        """
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self._searchers: OrderedDict[Hashable, Searcher] = OrderedDict()

    def get(self, key: Hashable,
            factory: Callable[[], Searcher]) -> Searcher:
        """The pooled searcher for ``key``, building it on first use.

        Args:
            key: identity of the searcher (e.g. ``(definition name,
                scorer cache key)``); must be hashable.
            factory: zero-argument builder invoked only on a pool miss.

        Returns:
            The cached (or freshly built) searcher, marked most
            recently used.
        """
        searcher = self._searchers.get(key)
        if searcher is None:
            searcher = factory()
            self._searchers[key] = searcher
            while len(self._searchers) > self.max_size:
                _key, evicted = self._searchers.popitem(last=False)
                evicted.close()
        else:
            self._searchers.move_to_end(key)
        return searcher

    def searchers(self) -> list[Searcher]:
        """The pooled searchers, least recently used first."""
        return list(self._searchers.values())

    def close(self) -> None:
        """Close and evict every pooled searcher (idempotent); the pool
        stays usable — a later :meth:`get` rebuilds via its factory.

        Entries are dropped, not kept: handing a closed searcher back
        out would depend on it lazily self-healing, a contract a future
        searcher with a terminal ``close()`` would silently break.
        """
        for searcher in self._searchers.values():
            searcher.close()
        self._searchers.clear()

    def __len__(self) -> int:
        return len(self._searchers)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._searchers

    def __enter__(self) -> "SearcherPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

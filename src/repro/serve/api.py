"""The unified serving API: typed requests in, typed responses out.

Every way of asking the engine a question — the in-process façade
(:meth:`~repro.core.search.engine.QunitSearchEngine.execute`), the
asyncio HTTP front end (:mod:`repro.serve.server`), and the CLI — speaks
one pair of types:

- :class:`SearchRequest` — the query plus its serving envelope (result
  limit, whether the caller wants the pipeline trace, which client is
  asking, how long it is willing to wait).
- :class:`SearchResponse` — the ranked answers plus the serving
  *outcome*: the optional explanation, per-stage timings, and the
  cache/admission flags a load client needs to measure whether caching
  actually pays.

The four historical engine entry points (``search``, ``search_many``,
``search_with_explanation``, ``search_many_with_explanations``) survive
as thin deprecated wrappers over this path; see the engine module.

Both types round-trip through plain JSON-able dicts (:meth:`to_dict` /
:meth:`from_dict`) — that dict form *is* the HTTP wire format, and the
answer serialization is lossless (system, score, text, atoms, and
provenance all survive), so results served over HTTP compare equal to
in-process results field by field (property-tested in
``tests/test_serve_server.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.answer import Answer
from repro.ir.wand import STRATEGIES
from repro.serve.explain import SearchExplanation, StageTiming

__all__ = [
    "SearchRequest",
    "SearchResponse",
    "answer_to_dict",
    "answer_from_dict",
    "explanation_to_dict",
    "explanation_from_dict",
    "requests_to_dicts",
    "requests_from_dicts",
    "responses_to_dicts",
    "responses_from_dicts",
]


@dataclass(frozen=True)
class SearchRequest:
    """One typed search request — the unit every serving layer accepts.

    ``query`` is the raw keyword string.  ``limit`` bounds the answer
    list.  ``explain`` asks for the full pipeline trace in the response
    (the trace is computed either way; the flag only controls whether it
    is returned, which matters on the wire).  ``client_id`` names the
    requesting client for per-client quotas and repetition measurement
    (``None`` = anonymous, which shares one quota bucket).  ``timeout``
    is the seconds the caller is willing to wait end to end — enforced
    by the HTTP server's queue (a request that cannot be answered in
    time gets a 504), ignored by the in-process path where there is no
    queue to wait in.  ``strategy`` overrides the engine's configured
    retrieval strategy for this request only (one of
    :data:`repro.ir.wand.STRATEGIES`, e.g. ``"hybrid"``; ``None`` = the
    engine default).
    """

    query: str
    limit: int = 5
    explain: bool = False
    client_id: str | None = None
    timeout: float | None = None
    strategy: str | None = None

    def __post_init__(self) -> None:
        """Validate at construction, not mid-pipeline."""
        if not isinstance(self.query, str):
            raise ValueError(f"query must be a string, got {self.query!r}")
        if not isinstance(self.limit, int) or isinstance(self.limit, bool) \
                or self.limit < 0:
            raise ValueError(
                f"limit must be a non-negative integer, got {self.limit!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive or None, got {self.timeout!r}")
        if self.client_id is not None and not isinstance(self.client_id, str):
            raise ValueError(
                f"client_id must be a string or None, got {self.client_id!r}")
        if self.strategy is not None and self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES} or None, "
                f"got {self.strategy!r}")

    def to_dict(self) -> dict:
        """The JSON-able wire form (defaults elided for compactness)."""
        data: dict = {"query": self.query, "limit": self.limit}
        if self.explain:
            data["explain"] = True
        if self.client_id is not None:
            data["client_id"] = self.client_id
        if self.timeout is not None:
            data["timeout"] = self.timeout
        if self.strategy is not None:
            data["strategy"] = self.strategy
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SearchRequest":
        """Parse a wire-form dict (the HTTP request body).

        Raises:
            ValueError: on non-dict input, unknown keys, or any field
                failing the constructor's validation.
        """
        if not isinstance(data, dict):
            raise ValueError(f"request body must be a JSON object, "
                             f"got {type(data).__name__}")
        known = {"query", "limit", "explain", "client_id", "timeout",
                 "strategy"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)} "
                             f"(known: {sorted(known)})")
        if "query" not in data:
            raise ValueError("request is missing the required 'query' field")
        timeout = data.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ValueError(f"timeout must be a number, got {timeout!r}")
        return cls(
            query=data["query"],
            limit=data.get("limit", 5),
            explain=bool(data.get("explain", False)),
            client_id=data.get("client_id"),
            timeout=float(timeout) if timeout is not None else None,
            strategy=data.get("strategy"),
        )


@dataclass(frozen=True)
class SearchResponse:
    """One typed search result: answers plus the serving outcome.

    ``answers`` are the ranked :class:`~repro.answer.Answer` objects.
    ``explanation`` is the pipeline trace when the request asked for it
    (``None`` otherwise).  ``timings`` are the per-stage wall times of
    the batch that served this query (empty when the result came from
    the cache or admission short-circuited it).  ``cached`` marks a
    result served from the pipeline result cache; ``admitted`` is false
    when admission control rejected the query without running the
    pipeline.  ``client_id`` echoes the request's.
    """

    query: str
    answers: tuple[Answer, ...]
    explanation: SearchExplanation | None = None
    timings: tuple[StageTiming, ...] = ()
    cached: bool = False
    admitted: bool = True
    client_id: str | None = None

    def to_dict(self) -> dict:
        """The JSON-able wire form (the HTTP response body)."""
        data: dict = {
            "query": self.query,
            "answers": [answer_to_dict(answer) for answer in self.answers],
            "timings": [{"stage": timing.stage, "seconds": timing.seconds}
                        for timing in self.timings],
            "cached": self.cached,
            "admitted": self.admitted,
        }
        if self.explanation is not None:
            data["explanation"] = explanation_to_dict(self.explanation)
        if self.client_id is not None:
            data["client_id"] = self.client_id
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SearchResponse":
        """Reconstruct a response from its wire form.

        Raises:
            ValueError: on non-dict input or missing required fields.
        """
        if not isinstance(data, dict):
            raise ValueError(f"response body must be a JSON object, "
                             f"got {type(data).__name__}")
        try:
            answers = tuple(answer_from_dict(entry)
                            for entry in data["answers"])
            query = data["query"]
        except KeyError as exc:
            raise ValueError(f"response is missing field {exc}") from exc
        explanation = data.get("explanation")
        return cls(
            query=query,
            answers=answers,
            explanation=(explanation_from_dict(explanation)
                         if explanation is not None else None),
            timings=tuple(StageTiming(entry["stage"], entry["seconds"])
                          for entry in data.get("timings", ())),
            cached=bool(data.get("cached", False)),
            admitted=bool(data.get("admitted", True)),
            client_id=data.get("client_id"),
        )


def requests_to_dicts(requests) -> list[dict]:
    """A whole batch of requests in wire form — the payload of one
    ``batch`` frame on the worker protocol (:mod:`repro.serve.workers`)."""
    return [request.to_dict() for request in requests]


def requests_from_dicts(payload) -> list[SearchRequest]:
    """Parse a batch of wire-form requests.

    Raises:
        ValueError: when the payload is not a list, or any entry fails
            :meth:`SearchRequest.from_dict` validation.
    """
    if not isinstance(payload, list):
        raise ValueError(f"batch payload must be a JSON array, "
                         f"got {type(payload).__name__}")
    return [SearchRequest.from_dict(entry) for entry in payload]


def responses_to_dicts(responses) -> list[dict]:
    """A whole batch of responses in wire form — the payload of one
    ``result`` frame on the worker protocol."""
    return [response.to_dict() for response in responses]


def responses_from_dicts(payload) -> list[SearchResponse]:
    """Parse a batch of wire-form responses.

    Raises:
        ValueError: when the payload is not a list, or any entry fails
            :meth:`SearchResponse.from_dict` validation.
    """
    if not isinstance(payload, list):
        raise ValueError(f"result payload must be a JSON array, "
                         f"got {type(payload).__name__}")
    return [SearchResponse.from_dict(entry) for entry in payload]


def answer_to_dict(answer: Answer) -> dict:
    """Lossless JSON-able form of one :class:`~repro.answer.Answer`.

    Atoms are sorted (they live in a frozenset) so two equal answers
    always serialize identically; provenance order is preserved (it is
    meaningful — branding appends to it).
    """
    return {
        "system": answer.system,
        "score": answer.score,
        "text": answer.text,
        "atoms": sorted(list(atom) for atom in answer.atoms),
        "provenance": [[key, value] for key, value in answer.provenance],
    }


def _freeze(value):
    """Rebuild nested sequences as tuples: JSON has no tuple type, so
    provenance values that left as tuples arrive as lists — freezing
    them restores the exact form the pipeline builds (and keeps frozen
    answers hashable)."""
    if isinstance(value, list):
        return tuple(_freeze(entry) for entry in value)
    return value


def answer_from_dict(data: dict) -> Answer:
    """Reconstruct an :class:`~repro.answer.Answer` from its wire form.

    Raises:
        ValueError: on missing fields or malformed atoms.
    """
    try:
        atoms = frozenset(
            (str(table), str(column), str(value))
            for table, column, value in data["atoms"])
        provenance = tuple((str(key), _freeze(value))
                           for key, value in data["provenance"])
        return Answer(system=data["system"], atoms=atoms,
                      text=data["text"], score=data["score"],
                      provenance=provenance)
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed answer payload: {exc!r}") from exc


def explanation_to_dict(explanation: SearchExplanation) -> dict:
    """JSON-able form of one pipeline trace."""
    return {
        "query": explanation.query,
        "template": explanation.template,
        "query_class": explanation.query_class,
        "candidates": [[name, score, rejected]
                       for name, score, rejected in explanation.candidates],
        "answers": list(explanation.answers),
        "strategy": explanation.strategy,
        "plan": list(explanation.plan),
        "stages": [{"stage": timing.stage, "seconds": timing.seconds}
                   for timing in explanation.stages],
        "cache_hits": explanation.cache_hits,
        "cache_misses": explanation.cache_misses,
        "shard_tasks": explanation.shard_tasks,
        "shard_tasks_skipped": explanation.shard_tasks_skipped,
        "generation": explanation.generation,
        "lazy_loads": explanation.lazy_loads,
        "bloom_skips": explanation.bloom_skips,
        "notes": list(explanation.notes),
    }


def explanation_from_dict(data: dict) -> SearchExplanation:
    """Reconstruct a :class:`~repro.serve.explain.SearchExplanation`.

    Raises:
        ValueError: on missing fields.
    """
    try:
        return SearchExplanation(
            query=data["query"],
            template=data["template"],
            query_class=data["query_class"],
            candidates=tuple((name, score, bool(rejected))
                             for name, score, rejected
                             in data["candidates"]),
            answers=tuple(data["answers"]),
            strategy=data.get("strategy", "auto"),
            plan=tuple(data.get("plan", ())),
            stages=tuple(StageTiming(entry["stage"], entry["seconds"])
                         for entry in data.get("stages", ())),
            cache_hits=data.get("cache_hits", 0),
            cache_misses=data.get("cache_misses", 0),
            shard_tasks=data.get("shard_tasks", 0),
            shard_tasks_skipped=data.get("shard_tasks_skipped", 0),
            generation=data.get("generation"),
            lazy_loads=data.get("lazy_loads", 0),
            bloom_skips=data.get("bloom_skips", 0),
            notes=tuple(data.get("notes", ())),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed explanation payload: {exc!r}") from exc

"""Pipeline traces: what the staged serving path did to one query.

:class:`SearchExplanation` is the per-query trace the pipeline's
assemble stage emits and ``repro search --explain`` renders.  Compared
to the original engine's trace it additionally carries the *decisions*
and *instrumentation* of the staged pipeline: the query plan, the
strategy the df-skew cost model chose for flat retrieval, per-stage
wall times, result-cache hits/misses, and shard routing counts — and
its ``candidates`` include the definitions *rejected* below the match
threshold (with a ``rejected`` flag) so a trace shows why a definition
lost, not just who won.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SearchExplanation", "StageTiming"]


@dataclass(frozen=True)
class StageTiming:
    """Wall time of one pipeline stage.

    Stages are batch-native, so the time is the *batch's* — every query
    served by the same :meth:`~repro.serve.pipeline.QueryPipeline.run`
    call reports the same stage timings.
    """

    stage: str
    seconds: float


@dataclass(frozen=True)
class SearchExplanation:
    """Full pipeline trace for one query.

    ``candidates`` entries are ``(definition name, match score,
    rejected)`` triples — ``rejected`` is true for definitions scored
    below the engine's match threshold, which earlier builds silently
    dropped from the trace.  ``plan`` holds one human-readable line per
    planned retrieval task; ``strategy`` is the concrete strategy the
    cost model resolved for flat retrieval.  The retrieval counters are
    deltas measured across the batch's execute stage:
    ``cache_hits``/``cache_misses`` sum over every searcher the batch
    dispatched to (flat and per-definition), while the shard task
    counts come from the flat searcher — the only sharded one (all
    zero when the batch never dispatched retrieval at all).

    Live-collection observability: ``generation`` is the snapshot
    generation the collection served this query from (``"<hex>"``, or
    ``"<hex>+N"`` after N journal transactions; ``None`` for a
    never-persisted collection) — watching it change across queries is
    how an online-ingestion swap shows up per query.  ``lazy_loads``
    counts snapshot files a lazily-loaded collection mmap'd *during
    this batch's execute stage* (0 once warm), and ``bloom_skips``
    counts the planned definition tasks this query's Bloom filters
    pruned — for a still-lazy definition that's a load avoided
    entirely, not just a search.
    """

    query: str
    template: str
    query_class: str
    candidates: tuple[tuple[str, float, bool], ...]
    answers: tuple[str, ...]                    # instance ids, ranked
    strategy: str = "auto"
    plan: tuple[str, ...] = ()
    stages: tuple[StageTiming, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    shard_tasks: int = 0
    shard_tasks_skipped: int = 0
    generation: str | None = None
    lazy_loads: int = 0
    bloom_skips: int = 0
    notes: tuple[str, ...] = ()

    def render(self) -> str:
        """The trace as indented text (the ``--explain`` CLI output)."""
        lines = [f"template : {self.template}  ({self.query_class})"]
        if self.stages:
            timings = "  ".join(f"{timing.stage} {timing.seconds * 1e3:.1f}ms"
                                for timing in self.stages)
            lines.append(f"stages   : {timings}")
        if self.plan:
            lines.append("plan     :")
            for step, line in enumerate(self.plan, start=1):
                lines.append(f"  {step}. {line}")
        if self.candidates:
            lines.append("candidates:")
            for name, score, rejected in self.candidates:
                verdict = "  (rejected: below min match score)" if rejected \
                    else ""
                lines.append(f"  {score:>7.4f}  {name}{verdict}")
        lines.append(
            f"retrieval: strategy={self.strategy}  "
            f"cache {self.cache_hits} hit / {self.cache_misses} miss  "
            f"shard tasks {self.shard_tasks} run / "
            f"{self.shard_tasks_skipped} skipped")
        lines.append(
            f"snapshot : generation={self.generation or '-'}  "
            f"lazy loads {self.lazy_loads}  "
            f"bloom skips {self.bloom_skips}")
        for note in self.notes:
            lines.append(f"note     : {note}")
        return "\n".join(lines)

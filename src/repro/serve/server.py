"""The asyncio HTTP serving front end over one qunit search engine.

:class:`SearchServer` puts the staged pipeline behind a network
boundary without giving up its batch-native economics: concurrent
requests from independent connections meet in a
:class:`~repro.serve.batcher.MicroBatcher`, each micro-batch drains
through a single :meth:`~repro.core.search.engine.QunitSearchEngine.
execute` call, and the admission line in front of the queue is a
per-client token bucket (:class:`~repro.serve.batcher.ClientQuotas`).

The wire protocol is deliberately small — HTTP/1.1 with JSON bodies,
spoken directly over ``asyncio.start_server`` (no web framework in the
dependency set, and none needed for four routes):

- ``POST /search`` — one :class:`~repro.serve.api.SearchRequest` dict
  in, one :class:`~repro.serve.api.SearchResponse` dict out.
- ``POST /search/batch`` — ``{"requests": [...]}`` in, ``{"responses":
  [...]}`` out; the batch is submitted as one unit (it may be merged
  with other clients' requests but never split below the caller's
  grouping by the queue bound).
- ``GET /healthz`` — liveness.
- ``GET /stats`` — serving counters (batches, batch occupancy, quota
  rejections, result-cache hits/stores, and — with a worker pool —
  per-worker batches, occupancy, restarts, and generation).

Failure surface: 400 malformed JSON or request fields, 404/405 unknown
routes, 429 + ``Retry-After`` for quota exhaustion *and* queue
backpressure, 503 while shutting down, 504 when a request's own
``timeout`` elapses in the queue.

Lifecycle is the point of the design: :meth:`SearchServer.start` pins
the flat searcher through the collection's lease API
(:meth:`~repro.core.collection.QunitCollection.acquire_searcher`), so
shard executors spawn once at startup and pool churn can never close
them mid-serving; :meth:`SearchServer.close` stops accepting, drains
in-flight batches, releases the lease, and only then closes the
collection (shard workers die last).

With a prefork worker tier (pass a
:class:`~repro.serve.workers.WorkerPool`), the front end keeps exactly
this shape — sockets, admission, quotas, micro-batching — but each
closed batch is dispatched to a worker *process* over the framed pipe
protocol instead of running in the local thread executor.  The local
engine then serves only as the collection handle (for ingestion and
generation-swap notification): no flat-searcher lease is pinned here,
pipeline execution happens in the workers, and every committed
generation swap is broadcast to them so reads stay rank-identical
across the swap.  A crashed worker surfaces as at most one retried
batch; a batch that cannot be retried answers 503.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

from repro.core.search.engine import QunitSearchEngine
from repro.serve.api import SearchRequest
from repro.serve.batcher import (
    ClientQuotas,
    MicroBatcher,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.workers import WorkerCrashed, WorkerError, WorkerPool

__all__ = ["ServerConfig", "SearchServer"]

MAX_BODY_BYTES = 1 << 20  # 1 MiB: far above any sane batch of queries
MAX_HEADER_BYTES = 16 << 10


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the serving front end.

    ``window``/``max_batch`` shape micro-batches (seconds the batch
    stays open after its first request; requests per batch at most);
    ``queue_limit`` bounds waiting requests (backpressure);
    ``quota_rate``/``quota_burst`` configure per-client token buckets
    (``quota_rate=None`` disables quotas entirely).
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off the server
    window: float = 0.002
    max_batch: int = 32
    queue_limit: int = 256
    quota_rate: float | None = None
    quota_burst: float = 20.0

    def __post_init__(self) -> None:
        """Validate at construction, not at first request."""
        if self.quota_rate is not None and self.quota_rate <= 0:
            raise ValueError(
                f"quota_rate must be positive or None, got {self.quota_rate}")


class _HttpError(Exception):
    """An error the handler answers with a specific status code."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class SearchServer:
    """One engine behind an asyncio HTTP front end.

    Use as an async context manager, or call :meth:`start` /
    :meth:`close` explicitly.  The bound address is :attr:`address`
    (useful with the default ephemeral port).
    """

    def __init__(self, engine: QunitSearchEngine,
                 config: ServerConfig | None = None,
                 workers: WorkerPool | None = None):
        """Wrap ``engine``; nothing starts until :meth:`start`.

        Args:
            engine: the in-process engine — the batch executor when no
                worker pool is given, otherwise the collection handle
                whose generation swaps are broadcast to the pool.
            config: front-end knobs (:class:`ServerConfig`).
            workers: optional prefork worker pool
                (:class:`~repro.serve.workers.WorkerPool`); when given,
                batches are dispatched to worker processes and pipeline
                concurrently instead of running in-process.
        """
        self.engine = engine
        self.config = config or ServerConfig()
        self.workers = workers
        if workers is not None:
            self.batcher = MicroBatcher(
                window=self.config.window,
                max_batch=self.config.max_batch,
                queue_limit=self.config.queue_limit,
                async_runner=workers.execute)
        else:
            self.batcher = MicroBatcher(
                engine.execute, window=self.config.window,
                max_batch=self.config.max_batch,
                queue_limit=self.config.queue_limit)
        self.quotas = (ClientQuotas(self.config.quota_rate,
                                    self.config.quota_burst)
                       if self.config.quota_rate is not None else None)
        self._server: asyncio.base_events.Server | None = None
        self._flat_lease = None
        self._closing = False
        #: Request counters by outcome, for ``/stats``.
        self.requests = 0
        self.rejected = 0
        self.timeouts = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and warm the serving path.

        The flat searcher is acquired (pinned) here — shard executors
        spawn at startup, not on the first query, and the pool cannot
        close them while the server lives.
        """
        loop = asyncio.get_running_loop()
        if self.workers is not None:
            # Pipeline execution lives in the worker processes: they
            # pin their own searchers, so the front end holds no lease.
            # What it does own is swap propagation — every committed
            # ingestion generation swap on the local collection handle
            # is broadcast to the pool (the hook fires on whatever
            # thread committed, hence the threadsafe hop to the loop).
            await self.workers.start()
            pool = self.workers

            def _notify() -> None:
                if self._closing or loop.is_closed():
                    return
                try:
                    loop.call_soon_threadsafe(
                        lambda: loop.create_task(
                            pool.broadcast_generation()))
                except RuntimeError:
                    pass  # loop closed between the check and the call

            self.engine.collection.subscribe_invalidation(_notify)
        else:
            # Searcher construction may build indexes / spawn executors;
            # keep it off the event loop like every other pipeline call.
            self._flat_lease = await loop.run_in_executor(
                None, self.engine.collection.acquire_searcher, None,
                self.engine.scorer)
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); raises before :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def close(self) -> None:
        """Graceful shutdown, in dependency order: stop accepting,
        drain queued requests through the batcher (mid-batch requests
        complete), release the flat-searcher lease, then close the
        collection — shard workers die only after the last batch that
        could touch them has finished."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.close()
        if self.workers is not None:
            # Dispatched batches have drained above; now the worker
            # processes can go.
            await self.workers.close()
        if self._flat_lease is not None:
            self.engine.collection.release_searcher(self._flat_lease)
            self._flat_lease = None
        self.engine.collection.close()

    async def __aenter__(self) -> "SearchServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve one keep-alive connection until EOF or error."""
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    return  # clean EOF between requests
                except _HttpError as exc:
                    await self._respond(writer, exc.status,
                                        {"error": str(exc)}, exc.headers,
                                        close=True)
                    return
                if request is None:
                    return
                method, path, body = request
                try:
                    status, payload, headers = \
                        await self._route(method, path, body)
                except _HttpError as exc:
                    status, payload, headers = \
                        exc.status, {"error": str(exc)}, exc.headers
                await self._respond(writer, status, payload, headers)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            ) -> tuple[str, str, bytes] | None:
        """Parse one HTTP/1.1 request; ``None`` on immediate EOF.

        Raises:
            _HttpError: on malformed request lines or oversized
                headers/bodies.
            asyncio.IncompleteReadError: on EOF mid-request.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers too large") from None
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "headers too large")
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, headers: dict[str, str] | None = None,
                       close: bool = False) -> None:
        """Write one JSON response (keep-alive unless ``close``)."""
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: " + ("close" if close else "keep-alive"),
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes,
                     ) -> tuple[int, dict, dict]:
        """Dispatch one request; returns (status, payload, headers).

        Raises:
            _HttpError: for every non-200 outcome.
        """
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET")
            return 200, {"status": "ok"}, {}
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "use GET")
            return 200, self.stats(), {}
        if path == "/search":
            if method != "POST":
                raise _HttpError(405, "use POST")
            request = self._parse_request(self._parse_json(body))
            response = await self._submit(request)
            return 200, response.to_dict(), {}
        if path == "/search/batch":
            if method != "POST":
                raise _HttpError(405, "use POST")
            data = self._parse_json(body)
            if not isinstance(data, dict) or \
                    not isinstance(data.get("requests"), list):
                raise _HttpError(
                    400, "batch body must be {\"requests\": [...]}")
            requests = [self._parse_request(entry)
                        for entry in data["requests"]]
            responses = await asyncio.gather(
                *(self._submit(request) for request in requests))
            return 200, {"responses": [response.to_dict()
                                       for response in responses]}, {}
        raise _HttpError(404, f"no route {path!r}")

    @staticmethod
    def _parse_json(body: bytes):
        """Decode a JSON body or answer 400."""
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"malformed JSON body: {exc}") from None

    @staticmethod
    def _parse_request(data) -> SearchRequest:
        """A validated :class:`SearchRequest` or a 400."""
        try:
            return SearchRequest.from_dict(data)
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from None

    async def _submit(self, request: SearchRequest):
        """Run one request through quota → queue → batcher.

        Raises:
            _HttpError: 429 on quota/backpressure, 503 when closing,
                504 when the request's timeout elapses queued.
        """
        self.requests += 1
        if self.quotas is not None:
            retry_after = self.quotas.try_admit(request.client_id)
            if retry_after > 0:
                self.rejected += 1
                raise _HttpError(
                    429, f"client quota exhausted; retry in "
                         f"{retry_after:.2f}s",
                    {"Retry-After": f"{max(retry_after, 0.01):.2f}"})
        try:
            return await self.batcher.submit(request)
        except ServerOverloaded as exc:
            self.rejected += 1
            raise _HttpError(
                429, str(exc),
                {"Retry-After": f"{exc.retry_after:.2f}"}) from None
        except ServerClosed:
            raise _HttpError(503, "server is shutting down") from None
        except WorkerCrashed as exc:
            # The batch's worker died and the one retry found no healthy
            # peer (or died too): the caller may safely resend.
            raise _HttpError(503, str(exc)) from None
        except WorkerError as exc:
            # Deterministic engine failure — retrying elsewhere would
            # fail identically, so it surfaces as a server error.
            raise _HttpError(500, str(exc)) from None
        except asyncio.TimeoutError:
            self.timeouts += 1
            raise _HttpError(
                504, f"request did not complete within "
                     f"{request.timeout}s") from None

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Serving counters: requests by outcome, batch occupancy, and
        the pipeline result cache's hit/store counters when enabled."""
        batches = self.batcher.batches
        data = {
            "requests": self.requests,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "batches": batches,
            "served": self.batcher.served,
            "mean_batch_size": (self.batcher.served / batches
                                if batches else 0.0),
        }
        if self.quotas is not None:
            data["quota_rejections"] = self.quotas.rejections
        if self.workers is not None:
            data["workers"] = self.workers.stats()
        else:
            data["searcher_leases"] = \
                self.engine.collection.searcher_pool.outstanding_leases()
        for middleware in self.engine.pipeline.middleware:
            if hasattr(middleware, "hits") and hasattr(middleware, "stores"):
                data["result_cache"] = {
                    "hits": middleware.hits,
                    "misses": middleware.misses,
                    "stores": middleware.stores,
                    "store_rejections": middleware.store_rejections,
                }
        return data

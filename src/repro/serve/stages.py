"""The five batch-native stages of the query pipeline.

Each stage processes a whole batch of
:class:`~repro.serve.pipeline.QueryContext` objects at once:

1. :class:`SegmentStage` — type every query against the schema
   vocabulary (:meth:`~repro.core.search.segmentation.QuerySegmenter.
   segment_many`).
2. :class:`MatchStage` — score every definition against every typed
   query (:meth:`~repro.core.search.matcher.QunitMatcher.match_many`).
3. :class:`PlanStage` — decide each query's retrieval work up front: a
   :class:`~repro.serve.plan.QueryPlan` of materialize/definition/flat
   tasks, with the flat strategy resolved by the df-skew cost model
   against snapshot statistics and definition tasks Bloom-pruned.
4. :class:`ExecuteStage` — run every plan *batched*: the per-query
   execution logic is written once as a generator that yields retrieval
   requests, and the stage drives all generators in lockstep rounds,
   grouping concurrent requests per (target index, fetch size) into
   single :meth:`~repro.ir.retrieval.Searcher.search_many` calls — so a
   sharded executor receives one task per shard per *round*, not per
   query.  Because :meth:`search_many` is property-tested identical to
   mapped :meth:`search`, the batched execution is answer-identical to
   the sequential path by construction.
5. :class:`AssembleStage` — free-text re-ranking, explanation
   assembly.

Stages never import the collection/matcher modules at runtime (type
references only), which keeps ``repro.core.collection`` free to import
:mod:`repro.serve.pool`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.ir.wand import resolve_strategy
from repro.serve.explain import SearchExplanation
from repro.serve.plan import PlannedTask, QueryPlan

if TYPE_CHECKING:  # circular-import-free type references only
    from repro.answer import Answer
    from repro.ir.retrieval import Searcher, SearchHit
    from repro.serve.pipeline import QueryContext, QueryPipeline

__all__ = [
    "PipelineStage",
    "SegmentStage",
    "MatchStage",
    "PlanStage",
    "ExecuteStage",
    "AssembleStage",
]


class PipelineStage:
    """One batch-native step of the query pipeline.

    Subclasses set :attr:`name` (the label in stage timings and
    ``--explain`` traces) and implement :meth:`run`, mutating the
    contexts in place.  Stages hold no per-query state, so one stage
    instance serves every batch of its pipeline.
    """

    name = "stage"

    def run(self, contexts: "list[QueryContext]",
            pipeline: "QueryPipeline") -> None:
        """Process one batch of query contexts (in place)."""
        raise NotImplementedError


class SegmentStage(PipelineStage):
    """Type every query of the batch against the schema vocabulary."""

    name = "segment"

    def run(self, contexts, pipeline) -> None:
        """Fill ``ctx.segmented`` for the whole batch in one call."""
        segmented = pipeline.segmenter.segment_many(
            [ctx.query for ctx in contexts])
        for ctx, result in zip(contexts, segmented):
            ctx.segmented = result


class MatchStage(PipelineStage):
    """Score every qunit definition against every typed query."""

    name = "match"

    def run(self, contexts, pipeline) -> None:
        """Fill ``ctx.matches`` (ranked definition matches) batch-wide."""
        definitions = list(pipeline.collection.definitions.values())
        matched = pipeline.matcher.match_many(
            [ctx.segmented for ctx in contexts], definitions)
        for ctx, matches in zip(contexts, matched):
            ctx.matches = matches


class PlanStage(PipelineStage):
    """Decide each query's retrieval work before any of it runs.

    Match tasks cover every definition match at or above the engine's
    match threshold, in rank order: fully-bound matches become
    ``materialize`` tasks, partially-bound ones ``definition`` tasks —
    pruned (``bloom_skipped``) when the definition's term Bloom filter
    proves no query term has postings in its index.  The flat backfill
    task's strategy is resolved here by the df-skew cost model against
    the flat snapshot's statistics (the planner, not the scorer, owns
    the routing decision the ROADMAP asked for).
    """

    name = "plan"

    def run(self, contexts, pipeline) -> None:
        """Fill ``ctx.plan`` for the whole batch."""
        collection = pipeline.collection
        analyzer = collection.analyzer
        # Resolve against the flat snapshot's statistics when it already
        # exists (always, after the first backfilling query); planning
        # must never *build* the flat index — a fully-bound query may
        # finish without it.  Without stats, resolve_strategy falls back
        # to the length-only rule here and the execute-time retrieve()
        # still applies the full cost model in-shard.
        snapshot = collection.peek_global_snapshot()
        min_score = pipeline.config.min_match_score
        # Baseline for the explanation's lazy-load delta: snapshot files
        # a lazily-loaded collection mmaps between here and assembly are
        # this batch's demand loads.
        lazy_loads_before = getattr(collection, "lazy_loads", None)
        for ctx in contexts:
            ctx.lazy_loads_before = lazy_loads_before
            strategy = pipeline.strategy_for(ctx)
            terms = tuple(analyzer.tokens(ctx.query))
            tasks: list[PlannedTask] = []
            for match in ctx.matches:
                if match.score < min_score:
                    break  # matches are rank-sorted; the rest scored lower
                name = match.definition.name
                if match.fully_bound:
                    tasks.append(PlannedTask(
                        kind="materialize", definition=name, match=match))
                    continue
                bloom = collection.definition_bloom(name)
                skipped = bloom is not None and \
                    not bloom.might_match_any(terms)
                tasks.append(PlannedTask(
                    kind="definition", definition=name, match=match,
                    strategy=resolve_strategy(
                        strategy, list(terms),
                        collection.peek_definition_snapshot(name)),
                    bloom_skipped=skipped))
            flat = PlannedTask(
                kind="flat",
                strategy=resolve_strategy(strategy, list(terms), snapshot),
            )
            ctx.plan = QueryPlan(query=ctx.query, terms=terms,
                                 limit=ctx.limit, tasks=tuple(tasks),
                                 flat=flat)


@dataclass
class _Request:
    """One pending retrieval call a query's executor generator needs."""

    target: str | None  # None = the flat collection-wide index
    query: str
    fetch: int
    strategy: str  # effective (request override or pipeline default)


class ExecuteStage(PipelineStage):
    """Run every query's plan, with retrieval batched across queries.

    Per-query semantics are the generator :meth:`_drive` — a direct
    port of the sequential engine loop (match tasks in rank order until
    the limit fills, then flat backfill, with geometric fetch-widening
    around already-seen documents).  The stage drives all generators in
    lockstep rounds; each round's outstanding requests are grouped by
    (target index, fetch size) and dispatched as one ``search_many``
    per group, so the sharded flat executor sees one task per shard per
    round instead of per query.
    """

    name = "execute"

    def run(self, contexts, pipeline) -> None:
        """Execute the batch's plans; fills ``ctx.answers`` and the
        batch-level retrieval counters in ``ctx.retrieval_stats``."""
        # Instrumentation is captured lazily at each searcher's first
        # dispatch of the batch (asking for the flat searcher up front
        # would build the flat index even for batches of fully-bound
        # queries that never need it — the laziness the pre-pipeline
        # engine had).  Cache counters cover *every* searcher the batch
        # touched, flat and per-definition; shard-routing counters exist
        # only on the flat searcher (definition indexes stay serial).
        watched: dict[int, tuple] = {}  # id -> (searcher, hits0, misses0)
        flat = None
        routing_before: dict = {}
        # One pool lease per target for the length of the batch: a batch
        # touching more searcher keys than the pool holds used to evict
        # (and close) the flat searcher mid-batch, dropping its shard
        # executors out from under later rounds.  Leased searchers stay
        # open even if evicted; the finally block returns every lease.
        leases: dict[str | None, Searcher] = {}

        drivers: list[list] = []  # [ctx, generator, pending request]
        for ctx in contexts:
            generator = self._drive(ctx, pipeline)
            try:
                request = generator.send(None)
            except StopIteration:
                continue
            drivers.append([ctx, generator, request])
        try:
            while drivers:
                # Group by (target, fetch, strategy): a batch mixing
                # per-request strategy overrides dispatches one
                # search_many per distinct strategy, so every query
                # still runs under exactly the strategy it asked for.
                groups: dict[tuple[str | None, int, str], list[list]] = {}
                for row in drivers:
                    request = row[2]
                    groups.setdefault(
                        (request.target, request.fetch, request.strategy),
                        []).append(row)
                drivers = []
                for (target, fetch, strategy), rows in groups.items():
                    searcher = leases.get(target)
                    if searcher is None:
                        searcher = pipeline.acquire_for(target)
                        leases[target] = searcher
                    if id(searcher) not in watched:
                        watched[id(searcher)] = (searcher,
                                                 searcher.cache_hits,
                                                 searcher.cache_misses,
                                                 searcher.hybrid_fallbacks)
                    if target is None and flat is None:
                        flat = searcher
                        routing_before = dict(flat.routing_stats or {})
                    for row in rows:
                        row[0].executed_targets.add(target)
                    hit_lists = searcher.search_many(
                        [row[2].query for row in rows], fetch,
                        strategy=strategy,
                        vector_weight=pipeline.config.hybrid_vector_weight,
                        rrf_k=pipeline.config.hybrid_rrf_k)
                    for row, hits in zip(rows, hit_lists):
                        try:
                            row[2] = row[1].send(hits)
                        except StopIteration:
                            continue
                        drivers.append(row)

            stats = self._batch_stats(watched, flat, routing_before)
        finally:
            for searcher in leases.values():
                pipeline.release_searcher(searcher)
        for ctx in contexts:
            ctx.retrieval_stats = dict(stats)

    @staticmethod
    def _batch_stats(watched: dict, flat, routing_before: dict) -> dict:
        """The batch-level retrieval counters from the watched searchers."""
        stats: dict = {}
        if watched:
            stats["cache_hits"] = sum(
                searcher.cache_hits - hits0
                for searcher, hits0, _m, _f in watched.values())
            stats["cache_misses"] = sum(
                searcher.cache_misses - misses0
                for searcher, _h, misses0, _f in watched.values())
            fallbacks = sum(
                searcher.hybrid_fallbacks - fallbacks0
                for searcher, _h, _m, fallbacks0 in watched.values())
            if fallbacks:
                stats["hybrid_fallbacks"] = fallbacks
        if flat is not None:
            # The batch lease keeps the flat searcher alive even if the
            # pool evicted it, but a defensive fallback to the before-
            # counters keeps the deltas at zero (not negative) should
            # its shard set ever vanish.
            routing_after = dict(flat.routing_stats or routing_before)
            tasks_delta = routing_after.get("shard_tasks", 0) - \
                routing_before.get("shard_tasks", 0)
            skipped_delta = routing_after.get("shard_tasks_skipped", 0) - \
                routing_before.get("shard_tasks_skipped", 0)
            stats["shard_tasks"] = max(0, tasks_delta - skipped_delta)
            stats["shard_tasks_skipped"] = max(0, skipped_delta)
        return stats

    # -- per-query execution (exact port of the sequential engine loop) -----

    def _drive(self, ctx, pipeline):
        """Generator running one query's plan; yields :class:`_Request`
        and receives the corresponding hit list.  Sets ``ctx.answers``
        (pre-rerank) before finishing."""
        limit = ctx.limit
        collection = pipeline.collection
        strategy = pipeline.strategy_for(ctx)
        answers: list[Answer] = []
        seen: set[str] = set()
        for task in ctx.plan.tasks:
            if len(answers) >= limit:
                break
            match = task.match
            if task.kind == "materialize":
                instance = collection.materialize(task.definition,
                                                  match.bound_params)
                if instance.is_empty or instance.instance_id in seen:
                    continue
                seen.add(instance.instance_id)
                answers.append(pipeline.brand(
                    instance.to_answer(score=match.score), instance))
                continue
            if task.bloom_skipped:
                continue  # provably no postings: retrieval would return []
            budget = limit - len(answers)
            hits = yield from self._fresh_hits(task.definition, ctx.query,
                                               budget, seen, strategy)
            for hit in hits:
                seen.add(hit.doc_id)
                instance = collection.instance(hit.doc_id)
                combined = match.score * (1.0 - 1.0 / (2.0 + hit.score))
                answers.append(pipeline.brand(
                    instance.to_answer(score=combined), instance))

        # Structural matches may under-fill the result list (few
        # instances, heavy dedup); backfill the remainder from flat IR
        # retrieval so a query with one fully-bound match still returns
        # `limit` answers (bounded by the configured backfill budget).
        if len(answers) < limit:
            budget = limit - len(answers)
            if pipeline.config.backfill_budget is not None:
                budget = min(budget, pipeline.config.backfill_budget)
            hits = yield from self._fresh_hits(None, ctx.query, budget, seen,
                                               strategy)
            for hit in hits:
                seen.add(hit.doc_id)
                instance = collection.instance(hit.doc_id)
                answers.append(pipeline.brand(
                    instance.to_answer(score=hit.score), instance))
        ctx.answers = answers

    def _fresh_hits(self, target: str | None, query: str, budget: int,
                    seen: set[str], strategy: str):
        """Generator sub-routine: the top ``budget`` hits from ``target``
        whose ids are not in ``seen``, retrieved under ``strategy``.

        Fetches with headroom and keeps widening geometrically until the
        budget is met or the index is exhausted, so a pile-up of
        already-seen documents at the top of the ranking can never
        starve lower-ranked fresh hits out of the result list.
        """
        if budget <= 0:
            return []
        fetch = budget + len(seen)
        while True:
            hits: list[SearchHit] = yield _Request(target, query, fetch,
                                                   strategy)
            fresh = [hit for hit in hits if hit.doc_id not in seen]
            if len(fresh) >= budget or len(hits) < fetch:
                return fresh[:budget]
            fetch *= 2


class AssembleStage(PipelineStage):
    """Free-text re-ranking and explanation assembly.

    Mixed text + structure (the paper's Sec. 7 extension): free-text
    residue that the structural pipeline could not type re-ranks the
    candidate answers by how well their *content* covers it.  The
    explanation carries the plan, the resolved strategy, the rejected
    candidates, and the execute stage's retrieval counters; the
    pipeline patches in the final stage timings after this stage's own
    clock stops.
    """

    name = "assemble"

    def run(self, contexts, pipeline) -> None:
        """Re-rank and build ``ctx.explanation`` for the whole batch."""
        for ctx in contexts:
            ctx.answers = self._apply_freetext_rerank(
                ctx.segmented, ctx.answers, ctx.limit, pipeline)
            self._finalize_strategy(ctx, pipeline)
            ctx.explanation = self._explanation(ctx, pipeline)

    def _finalize_strategy(self, ctx, pipeline) -> None:
        """Re-resolve strategies for the retrieval tasks this query
        *actually dispatched*, so the trace reports what ran.

        On a cold live collection the plan stage had no snapshot
        statistics (it must not build an index), so it labeled tasks
        with the length-only resolution — but the retrieval itself,
        having just built its index, resolved the full df-skew model.
        Resolution is deterministic per snapshot, so recomputing here
        yields exactly the executed choice.  Tasks the query never
        dispatched (limit filled earlier, Bloom-skipped) keep their
        planning-time label — for them any strategy is hypothetical.
        """
        collection = pipeline.collection
        strategy = pipeline.strategy_for(ctx)
        terms = list(ctx.plan.terms)
        executed = ctx.executed_targets
        changed = False
        flat_strategy = ctx.plan.flat.strategy
        if None in executed:
            flat_strategy = resolve_strategy(
                strategy, terms, collection.peek_global_snapshot())
            changed = flat_strategy != ctx.plan.flat.strategy
        tasks = []
        for task in ctx.plan.tasks:
            if task.kind == "definition" and task.definition in executed:
                resolved = resolve_strategy(
                    strategy, terms,
                    collection.peek_definition_snapshot(task.definition))
                if resolved != task.strategy:
                    task = replace(task, strategy=resolved)
                    changed = True
            tasks.append(task)
        if changed:
            ctx.plan = replace(ctx.plan, tasks=tuple(tasks),
                               flat=replace(ctx.plan.flat,
                                            strategy=flat_strategy))

    def _apply_freetext_rerank(self, segmented, answers, limit, pipeline):
        """Coverage re-rank against the query's untyped free-text terms."""
        analyzer = pipeline.collection.analyzer
        free_terms: list[str] = []
        for segment in segmented.freetext():
            for token in segment.tokens:
                free_terms.extend(analyzer.tokens(token))
        if not free_terms or not answers:
            return answers
        unique_terms = set(free_terms)
        adjusted: list[Answer] = []
        for answer in answers:
            text_terms = set(analyzer.tokens(answer.text))
            coverage = len(unique_terms & text_terms) / len(unique_terms)
            adjusted.append(replace(
                answer, score=answer.score * (0.55 + 0.45 * coverage)))
        adjusted.sort(key=lambda a: (-a.score, str(a.meta("instance_id", ""))))
        return adjusted[:limit]

    def _explanation(self, ctx, pipeline) -> SearchExplanation:
        """The query's trace: all above-threshold candidates plus the
        best rejected ones (flagged), the plan, and retrieval counters."""
        min_score = pipeline.config.min_match_score
        # Matches are rank-sorted, so above-threshold candidates form a
        # prefix; show all of them plus the best rejected ones (flagged)
        # so the trace explains why a definition lost, not just who won.
        used = sum(1 for match in ctx.matches if match.score >= min_score)
        shown = ctx.matches[:used + pipeline.config.candidate_limit]
        stats = ctx.retrieval_stats
        collection = pipeline.collection
        lazy_loads = 0
        if ctx.lazy_loads_before is not None:
            lazy_loads = max(0, getattr(collection, "lazy_loads", 0) -
                             ctx.lazy_loads_before)
        notes: list[str] = []
        fallbacks = stats.get("hybrid_fallbacks", 0)
        if fallbacks:
            notes.append(
                f"hybrid: no vector extents available — {fallbacks} "
                f"search(es) in this batch served lexical results")
        return SearchExplanation(
            query=ctx.query,
            template=ctx.segmented.template(),
            query_class=ctx.segmented.query_class(),
            candidates=tuple(
                (match.definition.name, round(match.score, 4),
                 match.score < min_score)
                for match in shown
            ),
            answers=tuple(
                str(answer.meta("instance_id", "")) for answer in ctx.answers
            ),
            strategy=ctx.plan.flat.strategy,
            plan=ctx.plan.describe(),
            cache_hits=stats.get("cache_hits", 0),
            cache_misses=stats.get("cache_misses", 0),
            shard_tasks=stats.get("shard_tasks", 0),
            shard_tasks_skipped=stats.get("shard_tasks_skipped", 0),
            generation=getattr(collection, "generation", None),
            lazy_loads=lazy_loads,
            bloom_skips=ctx.plan.bloom_skips,
            notes=tuple(notes),
        )

"""Micro-batching and admission primitives for the asyncio front end.

The serving thesis of the staged pipeline is that batches are cheaper
per query than singles: one segmentation call, one matcher call, and
retrieval grouped per target index so sharded executors receive one
task per shard per round.  A network front end only collects that win
if *concurrent requests from different clients* actually meet in one
pipeline run.  :class:`MicroBatcher` is that meeting point: requests
queue up, a drainer closes each batch on whichever comes first — the
batching window elapsing or the batch size cap filling — and the whole
batch runs through a single
:meth:`~repro.core.search.engine.QunitSearchEngine.execute` call.

Backpressure is the queue bound: when more requests are waiting than
the server is willing to buffer, :meth:`MicroBatcher.submit` raises
:class:`ServerOverloaded` *immediately* (the HTTP layer turns that into
429 + ``Retry-After``) instead of letting latency grow without bound.
:class:`ClientQuotas` adds per-client token buckets in front of the
queue, so one chatty client exhausts its own budget rather than the
shared buffer.

Everything here is event-loop native but engine-agnostic: the batcher
is handed an opaque ``runner`` callable (requests in, responses out)
and runs it in a single-thread executor, serializing pipeline access
off the event loop — the pipeline is synchronous and its searcher
caches are not thread-safe, so exactly one batch executes at a time
while the loop keeps accepting and queueing new requests.

With a prefork worker tier (:mod:`repro.serve.workers`) the batcher is
instead handed an ``async_runner`` coroutine: closed batches are
*dispatched* as tasks rather than awaited in the drain loop, so while
one batch executes on worker process A the drainer is already closing
the next batch for worker B — the pipelining that lets QPS scale with
worker count instead of serializing on the slowest batch.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.serve.api import SearchRequest, SearchResponse

__all__ = [
    "ServerOverloaded",
    "ServerClosed",
    "MicroBatcher",
    "TokenBucket",
    "ClientQuotas",
]


class ServerOverloaded(Exception):
    """The request queue (or a client's quota) cannot take this request
    now; ``retry_after`` is the seconds the caller should wait."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class ServerClosed(Exception):
    """The batcher is shutting down and accepts no new requests."""


class MicroBatcher:
    """Accumulates concurrent requests into micro-batches.

    One drainer task owns the queue: it blocks for the first request,
    then keeps collecting until the batching window (measured from the
    first request — the bound on added latency) elapses or the batch
    reaches ``max_batch``, whichever comes first, and hands the batch to
    ``runner`` in a single-thread executor.  ``window=0`` or
    ``max_batch=1`` degenerates to unbatched serving — the control arm
    of the serving benchmark.

    ``queue_limit`` bounds the number of *waiting* requests; an arriving
    request past it fails fast with :class:`ServerOverloaded` rather
    than queueing into unbounded latency.
    """

    def __init__(self, runner: Callable[[Sequence[SearchRequest]],
                                        list[SearchResponse]] | None = None,
                 window: float = 0.005, max_batch: int = 32,
                 queue_limit: int = 256,
                 async_runner: Callable[[Sequence[SearchRequest]],
                                        "asyncio.Future"] | None = None):
        """Configure the batcher (call :meth:`start` inside the loop).

        Args:
            runner: synchronous batch executor — typically
                ``engine.execute``; called from a worker thread, never
                the event loop.  Batches execute one at a time.
            window: seconds a batch stays open after its first request.
            max_batch: requests per batch at most.
            queue_limit: waiting requests at most (backpressure bound).
            async_runner: coroutine batch executor — typically
                :meth:`~repro.serve.workers.WorkerPool.execute`.
                Mutually exclusive with ``runner``; batches are spawned
                as concurrent tasks so several execute at once (one per
                worker process).

        Raises:
            ValueError: on a negative window, non-positive sizes, or
                neither/both of ``runner`` and ``async_runner``.
        """
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if (runner is None) == (async_runner is None):
            raise ValueError(
                "exactly one of runner/async_runner must be given")
        self.runner = runner
        self.async_runner = async_runner
        self.window = window
        self.max_batch = max_batch
        self.queue_limit = queue_limit
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-batch")
        self._drainer: asyncio.Task | None = None
        #: Dispatched-but-unfinished batch tasks (async mode only).
        self._inflight: set[asyncio.Task] = set()
        self._closing = False
        #: Batches executed and requests served, for ``/stats``.
        self.batches = 0
        self.served = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the drainer task on the running event loop."""
        if self._drainer is None:
            self._drainer = asyncio.get_running_loop().create_task(
                self._drain())

    async def close(self) -> None:
        """Graceful shutdown: refuse new requests, serve everything
        already queued (mid-batch requests complete), stop the drainer,
        and release the worker thread."""
        if self._closing:
            return
        self._closing = True
        if self._drainer is not None:
            # The sentinel queues *behind* every accepted request, so the
            # drainer serves the backlog before it sees the stop signal.
            await self._queue.put(None)
            await self._drainer
            self._drainer = None
        if self._inflight:
            # Async mode: batches already dispatched to workers finish
            # before shutdown proceeds — the graceful-drain half of the
            # lease discipline.
            await asyncio.gather(*self._inflight, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # -- submission ----------------------------------------------------------

    async def submit(self, request: SearchRequest) -> SearchResponse:
        """Queue one request and await its response.

        Raises:
            ServerClosed: when the batcher is shutting down.
            ServerOverloaded: when the queue is full (fail fast — the
                HTTP layer answers 429 + Retry-After).
            asyncio.TimeoutError: when the request carries a ``timeout``
                and the response does not arrive within it.
        """
        if self._closing:
            raise ServerClosed("server is shutting down")
        future: asyncio.Future = \
            asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((request, future))
        except asyncio.QueueFull:
            raise ServerOverloaded(
                f"request queue is full ({self.queue_limit} waiting)",
                retry_after=max(self.window * 4, 0.05)) from None
        if request.timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, request.timeout)
        except asyncio.TimeoutError:
            # The queue entry still holds a reference; the drainer skips
            # cancelled futures instead of answering them.
            raise

    # -- the drainer ---------------------------------------------------------

    async def _drain(self) -> None:
        """Forever: collect one micro-batch, run it, resolve futures."""
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._queue.get()
            if entry is None:
                return
            batch = [entry]
            deadline = loop.time() + self.window
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    entry = await asyncio.wait_for(self._queue.get(),
                                                   remaining)
                except asyncio.TimeoutError:
                    break
                if entry is None:
                    stop = True  # close() raced the window: finish batch
                    break
                batch.append(entry)
            if self.async_runner is not None:
                # Dispatch and move on: the pool routes each batch to its
                # least-loaded worker, so batches pipeline across worker
                # processes instead of serializing here.
                task = loop.create_task(self._run_batch(batch, loop))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
            else:
                await self._run_batch(batch, loop)
            if stop:
                return

    async def _run_batch(self, batch: list, loop) -> None:
        """Execute one batch off-loop and resolve its futures."""
        live = [(request, future) for request, future in batch
                if not future.cancelled()]
        if not live:
            return
        requests = [request for request, _future in live]
        try:
            if self.async_runner is not None:
                responses = await self.async_runner(requests)
            else:
                responses = await loop.run_in_executor(
                    self._executor, self.runner, requests)
        except Exception as exc:
            for _request, future in live:
                if not future.cancelled():
                    future.set_exception(exc)
            return
        self.batches += 1
        self.served += len(live)
        for (_request, future), response in zip(live, responses):
            if not future.cancelled():
                future.set_result(response)


class TokenBucket:
    """One client's token bucket: ``rate`` tokens/second, ``burst`` cap.

    Buckets start full (a new client may burst immediately).  The clock
    is injectable so tests advance time without sleeping.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        """A full bucket refilling at ``rate`` up to ``burst`` tokens.

        Raises:
            ValueError: on non-positive rate or burst.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.tokens = float(burst)
        self._last = clock()

    def try_take(self, amount: float = 1.0) -> float:
        """Take ``amount`` tokens if available.

        Returns:
            ``0.0`` when granted; otherwise the seconds until the bucket
            will hold ``amount`` tokens (the ``Retry-After`` value).
        """
        now = self.clock()
        self.tokens = min(self.burst,
                          self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= amount:
            self.tokens -= amount
            return 0.0
        return (amount - self.tokens) / self.rate


class ClientQuotas:
    """Per-client token buckets, LRU-bounded.

    ``None`` client ids share one anonymous bucket, so quota cannot be
    dodged by omitting the id.  The bucket table is bounded: an idle
    client's bucket may be evicted and later recreated *full*, which
    slightly favors returning clients — acceptable for an admission
    mechanism whose job is protecting the queue, not billing.
    """

    MAX_CLIENTS = 4096

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        """Quotas granting each client ``rate`` requests/second with
        bursts up to ``burst``."""
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        #: Requests turned away across all clients, for ``/stats``.
        self.rejections = 0

    def try_admit(self, client_id: str | None) -> float:
        """Charge one request to ``client_id``'s bucket.

        Returns:
            ``0.0`` when admitted, else seconds until the client should
            retry (and counts the rejection).
        """
        key = client_id if client_id is not None else ""
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self.clock)
            self._buckets[key] = bucket
            while len(self._buckets) > self.MAX_CLIENTS:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(key)
        retry_after = bucket.try_take()
        if retry_after > 0:
            self.rejections += 1
        return retry_after

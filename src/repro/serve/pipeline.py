"""The staged query pipeline: contexts, configuration, middleware, driver.

:class:`QueryPipeline` owns the five stages of the serving path
(:mod:`repro.serve.stages`) and drives whole batches of queries through
them, timing each stage and applying middleware around the run.  The
:class:`~repro.core.search.engine.QunitSearchEngine` is a thin façade
over one pipeline; everything the old monolithic per-query method did
now happens here, batch-natively.

Middleware wraps a batch without touching stage code:

- :class:`AdmissionMiddleware` rejects degenerate queries (e.g.
  pathologically long keyword strings) before any stage spends work on
  them.
- :class:`ResultCacheMiddleware` serves repeat ``(query, limit)`` pairs
  from an LRU of finished answers + explanations.  It assumes the
  collection is frozen while serving (the qunit paradigm: derivation
  happens before queries arrive).

Both are opt-in through :class:`EngineConfig`, which also makes the
engine's match threshold and backfill budget constructor-configurable.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.ir.vector import DEFAULT_RRF_K, DEFAULT_VECTOR_WEIGHT
from repro.ir.wand import STRATEGIES
from repro.serve.explain import SearchExplanation, StageTiming
from repro.serve.stages import (
    AssembleStage,
    ExecuteStage,
    MatchStage,
    PlanStage,
    SegmentStage,
)
from repro.utils.text import normalize

if TYPE_CHECKING:  # circular-import-free type references only
    from collections.abc import Callable

    from repro.answer import Answer
    from repro.core.collection import QunitCollection
    from repro.core.search.matcher import DefinitionMatch, QunitMatcher
    from repro.core.search.segmentation import QuerySegmenter, SegmentedQuery
    from repro.ir.retrieval import Searcher
    from repro.ir.scoring import Scorer
    from repro.serve.plan import QueryPlan

__all__ = [
    "EngineConfig",
    "QueryContext",
    "QueryPipeline",
    "PipelineMiddleware",
    "AdmissionMiddleware",
    "ResultCacheMiddleware",
]


@dataclass(frozen=True)
class EngineConfig:
    """Constructor-configurable knobs of the serving pipeline.

    Defaults reproduce the engine's historical behavior exactly.

    ``min_match_score`` — definitions matching below this are rejected
    (the old hard-coded ``QunitSearchEngine.MIN_MATCH_SCORE``).
    ``backfill_budget`` — at most this many answers may come from flat
    IR backfill (``None`` = fill to the result limit, the old rule).
    ``candidate_limit`` — minimum candidate count surfaced in
    explanations (all above-threshold matches always appear).
    ``result_cache_size`` — > 0 enables :class:`ResultCacheMiddleware`
    with that LRU capacity.
    ``max_query_terms`` — set to enable :class:`AdmissionMiddleware`,
    rejecting queries with more whitespace-separated terms than this.
    ``cache_admission`` — optional predicate ``query -> bool`` deciding
    which finished results the result cache may *store* (serving
    existing entries is unaffected).  Wire it to the query log's Zipf
    head (:func:`repro.datasets.querylog.analysis.zipf_head`) so only
    head queries — the ones repetition makes worth caching — occupy
    cache slots; tail queries then cannot evict them.
    ``hybrid_vector_weight`` / ``hybrid_rrf_k`` — the reciprocal-rank
    fusion parameters retrieval uses when a query runs under the
    ``"hybrid"`` strategy (see :mod:`repro.ir.vector`); weight 0 makes
    hybrid identical to lexical retrieval.
    """

    min_match_score: float = 0.15
    backfill_budget: int | None = None
    candidate_limit: int = 5
    result_cache_size: int = 0
    max_query_terms: int | None = None
    cache_admission: "Callable[[str], bool] | None" = None
    hybrid_vector_weight: float = DEFAULT_VECTOR_WEIGHT
    hybrid_rrf_k: int = DEFAULT_RRF_K

    def __post_init__(self) -> None:
        """Validate the knobs (fail at construction, not mid-query)."""
        if self.backfill_budget is not None and self.backfill_budget < 0:
            raise ValueError(
                f"backfill_budget must be non-negative or None, "
                f"got {self.backfill_budget}")
        if self.candidate_limit < 1:
            raise ValueError(
                f"candidate_limit must be >= 1, got {self.candidate_limit}")
        if self.result_cache_size < 0:
            raise ValueError(
                f"result_cache_size must be non-negative, "
                f"got {self.result_cache_size}")
        if self.max_query_terms is not None and self.max_query_terms < 1:
            raise ValueError(
                f"max_query_terms must be >= 1 or None, "
                f"got {self.max_query_terms}")
        if self.hybrid_vector_weight < 0:
            raise ValueError(
                f"hybrid_vector_weight must be >= 0, "
                f"got {self.hybrid_vector_weight}")
        if self.hybrid_rrf_k < 1:
            raise ValueError(
                f"hybrid_rrf_k must be >= 1, got {self.hybrid_rrf_k}")


@dataclass
class QueryContext:
    """One query's mutable state as it flows through the stages.

    Stages fill the fields top to bottom; middleware may short-circuit
    a context by setting ``done`` (the stages then never see it).
    ``retrieval_stats`` and ``stage_timings`` are batch-level
    instrumentation copied into the final explanation.
    """

    query: str
    limit: int
    #: The requesting client (from :class:`~repro.serve.api.
    #: SearchRequest.client_id`); informational to the stages, carried
    #: so middleware and responses can attribute the result.
    client_id: str | None = None
    #: Per-request retrieval-strategy override (from :class:`~repro.
    #: serve.api.SearchRequest.strategy`); ``None`` = the pipeline's
    #: configured strategy.  Resolved by :meth:`QueryPipeline.
    #: strategy_for` wherever stages route retrieval.
    strategy: str | None = None
    segmented: "SegmentedQuery | None" = None
    matches: "list[DefinitionMatch]" = field(default_factory=list)
    plan: "QueryPlan | None" = None
    answers: "list[Answer]" = field(default_factory=list)
    explanation: SearchExplanation | None = None
    stage_timings: list[StageTiming] = field(default_factory=list)
    retrieval_stats: dict = field(default_factory=dict)
    #: Retrieval targets this query actually dispatched to during
    #: execute (``None`` = the flat index, else a definition name) —
    #: assembly only re-labels strategies for tasks that ran.
    executed_targets: set = field(default_factory=set)
    #: The collection's :attr:`~repro.core.collection.QunitCollection.
    #: lazy_loads` counter captured at plan time — assembly reports the
    #: delta as this batch's lazy snapshot loads (``None`` when the
    #: collection doesn't track it).
    lazy_loads_before: int | None = None
    done: bool = False
    #: Set by :class:`ResultCacheMiddleware` when the answers came from
    #: the result cache rather than a pipeline run.
    served_from_cache: bool = False
    #: Cleared by :class:`AdmissionMiddleware` when the query was
    #: rejected without running the pipeline.
    admitted: bool = True


class PipelineMiddleware:
    """Hooks around one batch run.

    :meth:`enter` sees the incoming contexts and returns the subset the
    stages should still process (marking the rest ``done`` with their
    answers/explanations filled); :meth:`exit` sees the stage-processed
    contexts after assembly.  Middleware enters in registration order
    and exits in reverse.
    """

    def enter(self, contexts: list[QueryContext],
              pipeline: "QueryPipeline") -> list[QueryContext]:
        """Filter/short-circuit contexts before the stages run."""
        return contexts

    def exit(self, contexts: list[QueryContext],
             pipeline: "QueryPipeline") -> None:
        """Observe fully processed contexts (e.g. to populate caches)."""


class AdmissionMiddleware(PipelineMiddleware):
    """Reject queries whose term count exceeds a hard limit.

    A keyword query with hundreds of terms is junk traffic that would
    still pay full segmentation cost (entity matching probes every
    token window); admission control answers it with an empty,
    explained result instead.
    """

    def __init__(self, max_query_terms: int):
        """Admit queries of at most ``max_query_terms`` terms."""
        self.max_query_terms = max_query_terms

    def enter(self, contexts, pipeline):
        """Short-circuit over-long queries with an empty explained
        result; pass the rest through."""
        admitted = []
        for ctx in contexts:
            count = len(normalize(ctx.query).split())
            if count <= self.max_query_terms:
                admitted.append(ctx)
                continue
            ctx.answers = []
            ctx.admitted = False
            ctx.explanation = SearchExplanation(
                query=ctx.query, template="", query_class="rejected",
                candidates=(), answers=(),
                notes=(f"admission: rejected — {count} terms exceed the "
                       f"{self.max_query_terms}-term limit",),
            )
            ctx.done = True
        return admitted


class ResultCacheMiddleware(PipelineMiddleware):
    """LRU cache of finished results keyed on ``(query, limit,
    strategy override)``.

    Serving from it is answer-identical by construction (the cached
    answers *are* a previous run's); the strategy override is part of
    the key because a ``"hybrid"`` run and a lexical run of the same
    query are legitimately *different* results.  The cache assumes a
    frozen collection — the qunit serving model — and can be dropped
    with :meth:`clear` after any out-of-band index change.
    """

    CACHE_NOTE = "served from the pipeline result cache"

    def __init__(self, size: int,
                 admit: "Callable[[str], bool] | None" = None):
        """A cache holding at most ``size`` finished results.

        ``admit`` is an optional store-side admission policy: a finished
        result is only cached when ``admit(query)`` is true (lookups are
        unaffected).  The serving front end wires this to the query
        log's Zipf head so tail queries — which by definition rarely
        repeat — cannot evict the entries that earn their keep.

        Raises:
            ValueError: when ``size`` < 1.
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self.admit = admit
        self.hits = 0
        self.misses = 0
        #: Store-side admission outcomes: how many finished results the
        #: policy let into the cache vs turned away.
        self.stores = 0
        self.store_rejections = 0
        self._cache: OrderedDict[tuple, tuple] = OrderedDict()

    def enter(self, contexts, pipeline):
        """Serve cached ``(query, limit)`` pairs; pass misses through."""
        missed = []
        for ctx in contexts:
            key = (ctx.query, ctx.limit, ctx.strategy)
            cached = self._cache.get(key)
            if cached is None:
                self.misses += 1
                missed.append(ctx)
                continue
            self.hits += 1
            self._cache.move_to_end(key)
            answers, explanation = cached
            ctx.served_from_cache = True
            ctx.answers = list(answers)
            if self.CACHE_NOTE not in explanation.notes:
                explanation = replace(
                    explanation, notes=(*explanation.notes, self.CACHE_NOTE))
            ctx.explanation = explanation
            ctx.done = True
        return missed

    def exit(self, contexts, pipeline):
        """Store finished results the admission policy accepts (LRU
        eviction past ``size``)."""
        for ctx in contexts:
            if self.admit is not None and not self.admit(ctx.query):
                self.store_rejections += 1
                continue
            self.stores += 1
            self._cache[(ctx.query, ctx.limit, ctx.strategy)] = \
                (tuple(ctx.answers), ctx.explanation)
            while len(self._cache) > self.size:
                self._cache.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached result (counters are kept)."""
        self._cache.clear()


class QueryPipeline:
    """Drives batches of queries through the staged serving path.

    One pipeline serves one collection; the engine constructs it once
    and every ``search``/``search_many``/``explain`` call lands in
    :meth:`run`.  Stage timings are recorded per batch; middleware is
    assembled from the :class:`EngineConfig` (admission first, result
    cache second, so cache entries only hold admitted queries).
    """

    def __init__(self, collection: "QunitCollection",
                 segmenter: "QuerySegmenter", matcher: "QunitMatcher",
                 scorer: "Scorer", config: EngineConfig,
                 system_name: str):
        """Wire the pipeline over one collection's serving machinery.

        Args:
            collection: the qunit collection (owns indexes + searcher
                pool).
            segmenter: the query segmenter (stage 1).
            matcher: the definition matcher (stage 2).
            scorer: the IR scorer every retrieval task uses.
            config: the engine knobs (threshold, budgets, middleware).
            system_name: brand stamped onto every answer's ``system``.
        """
        self.collection = collection
        self.segmenter = segmenter
        self.matcher = matcher
        self.scorer = scorer
        self.config = config
        self.system_name = system_name
        self.strategy = collection.strategy
        self.stages: list = [SegmentStage(), MatchStage(), PlanStage(),
                             ExecuteStage(), AssembleStage()]
        self.middleware: list[PipelineMiddleware] = []
        if config.max_query_terms is not None:
            self.middleware.append(AdmissionMiddleware(config.max_query_terms))
        if config.result_cache_size:
            cache = ResultCacheMiddleware(config.result_cache_size,
                                          admit=config.cache_admission)
            self.middleware.append(cache)
            # A generation swap (online ingestion committing) makes
            # cached answers stale mid-process — the one way the
            # "frozen collection" assumption breaks — so the swap
            # clears the cache.  getattr-guarded: tests drive the
            # pipeline over minimal fake collections.
            subscribe = getattr(collection, "subscribe_invalidation", None)
            if subscribe is not None:
                subscribe(cache.clear)

    def run(self, queries: list[str], limit: int) -> list[QueryContext]:
        """Serve a batch of queries at one shared ``limit``; one
        finished context per query, in input order.

        Raises:
            ValueError: on a negative ``limit``.
        """
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        return self.run_contexts([QueryContext(query=query, limit=limit)
                                  for query in queries])

    def run_contexts(self, contexts: list[QueryContext],
                     ) -> list[QueryContext]:
        """Serve a batch of pre-built contexts (the typed-request entry
        point: each context carries its own limit and client id).

        Every context comes back with ``answers`` and ``explanation``
        filled — by the stages, or by a middleware short-circuit.
        """
        active = contexts
        for middleware in self.middleware:
            active = middleware.enter(active, self)
        if active:
            for stage in self.stages:
                start = time.perf_counter()
                stage.run(active, self)
                timing = StageTiming(stage.name,
                                     time.perf_counter() - start)
                for ctx in active:
                    ctx.stage_timings.append(timing)
            for ctx in active:
                ctx.explanation = replace(ctx.explanation,
                                          stages=tuple(ctx.stage_timings))
        for middleware in reversed(self.middleware):
            middleware.exit(active, self)
        return contexts

    # -- services the stages call -------------------------------------------

    def strategy_for(self, ctx: QueryContext) -> str:
        """One query's effective retrieval strategy: its request-level
        override when present (validated), else the collection-level
        configuration.

        Raises:
            ValueError: on an unknown override.
        """
        if ctx.strategy is None:
            return self.strategy
        if ctx.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, "
                f"got {ctx.strategy!r}")
        return ctx.strategy

    def searcher_for(self, target: str | None) -> "Searcher":
        """The pooled searcher for a retrieval target (``None`` = the
        flat collection-wide index, else a definition name)."""
        if target is None:
            return self.collection.searcher(self.scorer)
        return self.collection.definition_searcher(target, self.scorer)

    def acquire_for(self, target: str | None) -> "Searcher":
        """:meth:`searcher_for`, but pinned against pool eviction until
        the matching :meth:`release_searcher` — the execute stage holds
        one lease per target for the length of a batch, so a batch
        touching more searcher keys than the pool holds can no longer
        close the flat searcher (and its shard executors) out from
        under its own later rounds."""
        return self.collection.acquire_searcher(target, self.scorer)

    def release_searcher(self, searcher: "Searcher") -> None:
        """Return one :meth:`acquire_for` lease."""
        self.collection.release_searcher(searcher)

    def brand(self, answer: "Answer", instance) -> "Answer":
        """Stamp an answer with the engine's system name and instance
        provenance (identical to the pre-pipeline engine's branding)."""
        provenance = answer.provenance + (("instance_id",
                                           instance.instance_id),)
        return replace(answer, system=self.system_name,
                       provenance=provenance)

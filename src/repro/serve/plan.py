"""Query plans: the decided retrieval work for one query.

The plan stage turns a query's ranked definition matches into an
explicit :class:`QueryPlan` *before* any retrieval runs, owning the two
decisions the ROADMAP asked a real planner to make:

- **Strategy routing.** The flat backfill's retrieval strategy is
  resolved by the df-skew cost model
  (:func:`repro.ir.wand.resolve_strategy`) against the flat snapshot's
  statistics at planning time — rare-term-driven queries route to
  document-at-a-time WAND earlier than the old query-length-only rule.
  Every strategy is rank-identical, so routing only moves speed.
- **Bloom pruning.** A partially-bound match needs IR retrieval over
  its definition's index; when the definition's term Bloom filter (see
  :meth:`~repro.core.collection.QunitCollection.definition_bloom`)
  proves *no* query term has postings there, the task is planned as
  skipped — the searcher would have returned nothing (Bloom filters
  have no false negatives), so skipping is rank-identical.

Plans are data, not behavior: the execute stage walks the tasks, and
``--explain`` prints them via :meth:`QueryPlan.describe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular-import-free type references only
    from repro.core.search.matcher import DefinitionMatch

__all__ = ["PlannedTask", "QueryPlan"]

#: Task kinds in plan order: direct materialization of a fully-bound
#: match, IR retrieval over one definition's index, flat backfill.
TASK_KINDS = ("materialize", "definition", "flat")


@dataclass(frozen=True)
class PlannedTask:
    """One unit of planned retrieval work.

    ``kind`` is one of :data:`TASK_KINDS`.  ``match`` carries the
    definition match behind a ``materialize``/``definition`` task
    (``None`` for the flat backfill).  ``strategy`` is the concrete
    retrieval strategy resolved at planning time — against the target
    index's snapshot statistics when the snapshot already exists, by
    the length-only rule otherwise (planning never builds an index; on
    a cold collection the execute-time ``retrieve`` may still upgrade
    the choice once statistics exist, rank-identically either way).
    ``bloom_skipped`` marks a definition task whose Bloom filter proved
    no query term can match.
    """

    kind: str
    definition: str | None = None
    match: "DefinitionMatch | None" = None
    strategy: str = "auto"
    bloom_skipped: bool = False

    def describe(self) -> str:
        """One human-readable plan line (used by ``--explain``)."""
        if self.kind == "materialize":
            assert self.match is not None
            return (f"materialize {self.definition} "
                    f"(match {self.match.score:.4f}, fully bound)")
        if self.kind == "definition":
            assert self.match is not None
            note = ", bloom: no term matches — skipped" if \
                self.bloom_skipped else ""
            return (f"rank {self.definition} instances "
                    f"(match {self.match.score:.4f}, "
                    f"strategy={self.strategy}{note})")
        return f"flat backfill over all instances (strategy={self.strategy})"


@dataclass(frozen=True)
class QueryPlan:
    """The decided execution of one query.

    ``tasks`` are the match-driven tasks in rank order (already
    filtered to matches at or above the engine's match threshold);
    ``flat`` is the conditional backfill task, executed only when the
    match tasks under-fill the result list.  ``terms`` are the analyzed
    query tokens every retrieval task will search with.
    """

    query: str
    terms: tuple[str, ...]
    limit: int
    tasks: tuple[PlannedTask, ...]
    flat: PlannedTask

    def describe(self) -> tuple[str, ...]:
        """Human-readable plan lines, task order preserved."""
        lines = [task.describe() for task in self.tasks]
        lines.append(self.flat.describe() + " [if results short]")
        return tuple(lines)

    @property
    def bloom_skips(self) -> int:
        """How many definition tasks the Bloom filters pruned."""
        return sum(1 for task in self.tasks if task.bloom_skipped)

"""Prefork pipeline workers over shared mmap snapshots.

The asyncio front end (:mod:`repro.serve.server`) keeps socket
handling, admission control, quotas, and micro-batching — but a single
process runs every micro-batch under one GIL, so segmentation,
matching, planning, and assembly never scale past one core no matter
how many the machine has.  This module adds the tier that does scale:
``N`` spawn-context **pipeline worker processes**, each opening the
collection via :meth:`~repro.core.store.CollectionStore.load` with the
default lazy pin (``mmap`` → one OS page cache shared across workers,
near-zero incremental RSS), each running whole micro-batches through
its own :class:`~repro.core.search.engine.QunitSearchEngine`.

The wire between the front end and a worker is deliberately primitive —
a ``socketpair`` speaking **length-prefixed frames** (4-byte big-endian
size + one UTF-8 JSON object), the same shape the snapshot journal uses
on disk.  Front-end → worker ops: ``batch`` (a list of
:class:`~repro.serve.api.SearchRequest` dicts), ``generation`` (an
ingestion commit landed; reopen lazily if the directory moved on),
``shutdown``.  Worker → front-end ops: ``ready`` (startup and
post-reload announce, carrying pid + generation), ``result``,
``error`` (the engine raised; the batch is *not* retryable), and
``protocol_error`` (an undecodable frame; answered without killing the
worker — framing is length-prefixed, so the stream resynchronizes at
the next frame boundary).

:class:`WorkerPool` is the front-end half: it spawns workers, routes
each batch to the live worker with the **fewest outstanding batches**,
detects crashes (socket EOF), fails the crashed worker's in-flight
batches, respawns it automatically, and exposes per-worker counters
(batches, occupancy, restarts, generation) for ``/stats``.  A batch
that was in flight on a crashed worker is retried once on a healthy
worker by :meth:`WorkerPool.execute`; a second failure surfaces
:class:`WorkerCrashed`, which the HTTP layer answers with 503.

Because every worker serves the same persisted generation through the
same staged pipeline, responses are rank-identical to single-process
serving — including across a generation swap (workers reload *after*
the commit wrote the new generation, so they only ever observe complete
generations) and across a kill-and-respawn (the replacement reopens the
same directory).  Both properties are integration-tested in
``tests/test_serve_workers.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import struct
from dataclasses import dataclass

from repro.errors import ReproError
from repro.serve.api import (
    SearchRequest,
    requests_from_dicts,
    requests_to_dicts,
    responses_from_dicts,
    responses_to_dicts,
)

__all__ = [
    "ProtocolError",
    "WorkerCrashed",
    "WorkerError",
    "WorkerSpec",
    "WorkerPool",
    "send_frame",
    "recv_frame",
    "encode_frame",
    "decode_frame",
]

#: Frame size prefix: one unsigned 32-bit big-endian length.
_HEADER = struct.Struct(">I")

#: Hard bound on a single frame's payload.  A micro-batch of 32
#: requests with explanations is well under 1 MiB; anything near this
#: bound means the stream is corrupt, not that the batch is large.
MAX_FRAME_BYTES = 32 << 20

#: Seconds the pool waits for a spawned worker's ``ready`` frame before
#: declaring the spawn failed (database regeneration dominates this).
READY_TIMEOUT = 120.0


class ProtocolError(ReproError):
    """A frame violated the worker wire protocol (bad length prefix,
    undecodable JSON, or a payload that is not an object)."""


class WorkerCrashed(ReproError):
    """A worker process died with batches in flight (or none could be
    found healthy); the HTTP layer answers 503."""


class WorkerError(ReproError):
    """A worker's engine raised while executing a batch.  Deterministic
    — retrying on another worker would fail identically — so the HTTP
    layer answers 500 instead of retrying."""


# -- framing -----------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """One length-prefixed wire frame for ``payload``.

    Raises:
        ProtocolError: when the encoded payload exceeds
            :data:`MAX_FRAME_BYTES`.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound")
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> dict:
    """The JSON object inside one frame body.

    Raises:
        ProtocolError: on undecodable JSON or a non-object payload.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed frame payload: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be an object, got "
            f"{type(payload).__name__}")
    return payload


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes from a blocking socket; ``None`` on a
    clean EOF before the first byte.

    Raises:
        ProtocolError: on EOF mid-read (a torn frame).
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"stream ended {remaining} bytes short of a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame from a blocking socket; ``None`` on clean EOF.

    Raises:
        ProtocolError: on a torn frame, an implausible length prefix,
            or an undecodable payload.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound")
    body = _recv_exact(sock, length) if length else b""
    if body is None and length:
        raise ProtocolError("stream ended before the frame body")
    return decode_frame(body or b"")


# -- the worker process ------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs to rebuild the serving engine.

    Spawn-context children start from a fresh interpreter, so the spec
    carries only picklable inputs: the saved collection ``directory``
    plus the deterministic knobs to regenerate the synthetic database
    (``scale``/``seed``) and configure the engine — mirroring what
    ``repro serve`` builds in the front-end process.  Each worker calls
    :meth:`build_engine`, which loads the collection through
    :meth:`~repro.core.store.CollectionStore.load` with the default
    lazy pin: snapshots ``mmap`` on first demand, and N workers over one
    generation share a single copy of the bytes through the OS page
    cache.

    Attributes:
        directory: the saved collection (a ``repro save`` /
            :class:`~repro.core.store.CollectionStore` directory).
        scale, seed: synthetic database generator inputs.
        flavor: derivation flavor label for answer branding.
        shards, parallelism, strategy: retrieval configuration
            (see :class:`~repro.core.store.LoadOptions`).
        cache_size: per-worker pipeline result-cache entries
            (0 disables).
        cache_coverage: Zipf-head store-admission coverage for that
            cache (0 admits everything), seeded from the same session
            generator the serving CLI uses.
        sessions: session count behind the admission head.
    """

    directory: str
    scale: float
    seed: int
    flavor: str = "expert"
    shards: int = 0
    parallelism: str = "serial"
    strategy: str = "auto"
    cache_size: int = 0
    cache_coverage: float = 0.0
    sessions: int = 400

    def build_engine(self):
        """A fresh :class:`~repro.core.search.engine.QunitSearchEngine`
        over the spec's directory (lazy mmap load)."""
        from repro.core.search.engine import QunitSearchEngine
        from repro.datasets.imdb import generate_imdb
        from repro.serve.pipeline import EngineConfig

        database = generate_imdb(scale=self.scale, seed=self.seed)
        config = None
        if self.cache_size > 0:
            admission = None
            if self.cache_coverage > 0:
                from repro.datasets.querylog import (
                    SessionLogGenerator,
                    zipf_head,
                )

                generator = SessionLogGenerator(database, seed=self.seed + 3)
                log = generator.as_query_log(
                    generator.generate(self.sessions))
                admission = zipf_head(log, self.cache_coverage).__contains__
            config = EngineConfig(result_cache_size=self.cache_size,
                                  cache_admission=admission)
        return QunitSearchEngine.load(
            database, self.directory, flavor=self.flavor,
            shards=self.shards, parallelism=self.parallelism,
            strategy=self.strategy, config=config)


class FrameServer:
    """The worker-side frame loop, factored off the process entry point
    so the protocol is testable in-process against a stub executor.

    ``execute`` maps a list of request dicts to a list of response
    dicts; ``reload`` (optional) rebuilds serving state after a
    generation broadcast and returns the generation id to announce.
    """

    def __init__(self, sock: socket.socket, execute,
                 reload=None, generation: str | None = None):
        """Serve ``sock`` until EOF or a ``shutdown`` frame."""
        self.sock = sock
        self.execute = execute
        self.reload = reload
        self.generation = generation

    def announce_ready(self) -> None:
        """Send the ``ready`` frame (startup and after every reload)."""
        send_frame(self.sock, {"op": "ready", "pid": os.getpid(),
                               "generation": self.generation})

    def serve_forever(self) -> None:
        """Process frames until shutdown, EOF, or an unrecoverable
        protocol error.

        Malformed input splits into two regimes: undecodable JSON inside
        a *well-formed* frame leaves the length-prefixed boundary intact,
        so the worker answers an ``error`` frame and keeps serving; a bad
        length prefix or a torn frame loses framing entirely — the worker
        answers ``protocol_error`` and exits so the pool respawns it.
        """
        self.announce_ready()
        while True:
            try:
                header = _recv_exact(self.sock, _HEADER.size)
                if header is None:
                    return  # front end closed the pipe: clean shutdown
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"frame length {length} exceeds the "
                        f"{MAX_FRAME_BYTES}-byte bound")
                body = _recv_exact(self.sock, length) if length else b""
                if body is None and length:
                    raise ProtocolError(
                        "stream ended before the frame body")
            except ProtocolError as exc:
                # Framing is lost and the stream cannot be
                # resynchronized; report and die.
                self._send_safe({"op": "protocol_error",
                                 "error": str(exc)})
                return
            try:
                frame = decode_frame(body or b"")
            except ProtocolError as exc:
                # The frame boundary held — only its payload is junk.
                self._send_safe({"op": "error", "id": None,
                                 "error": str(exc)})
                continue
            if not self._serve_one(frame):
                return

    def _serve_one(self, frame: dict) -> bool:
        """Handle one decoded frame; ``False`` stops the loop."""
        op = frame.get("op")
        if op == "shutdown":
            return False
        if op == "generation":
            if self.reload is not None:
                self.generation = self.reload()
            self.announce_ready()
            return True
        if op == "batch":
            batch_id = frame.get("id")
            requests = frame.get("requests")
            if not isinstance(batch_id, int) \
                    or not isinstance(requests, list):
                self._send_safe({
                    "op": "error", "id": batch_id,
                    "error": "batch frame needs an int 'id' and a "
                             "list 'requests'"})
                return True
            try:
                responses = self.execute(requests)
            except Exception as exc:  # engine failure: report, keep serving
                self._send_safe({"op": "error", "id": batch_id,
                                 "error": f"{type(exc).__name__}: {exc}"})
                return True
            self._send_safe({"op": "result", "id": batch_id,
                             "responses": responses})
            return True
        # Unknown op inside a well-formed frame: answer and carry on —
        # the frame boundary is intact, so nothing is desynchronized.
        self._send_safe({"op": "error", "id": frame.get("id"),
                         "error": f"unknown op {op!r}"})
        return True

    def _send_safe(self, payload: dict) -> None:
        """Best-effort send: a vanished front end is not an error the
        worker can do anything about."""
        try:
            send_frame(self.sock, payload)
        except OSError:
            pass


def _worker_main(index: int, sock: socket.socket, spec: WorkerSpec) -> None:
    """Process entry point: build the engine, serve frames until told
    to stop, close the collection last."""
    from repro.core.store import CollectionStore

    # A terminal Ctrl-C hits the whole foreground process group; the
    # front end owns this worker's lifecycle (``shutdown`` frame, then
    # EOF), so a stray SIGINT mid-``recv`` must not tear it down first.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    engine = spec.build_engine()
    store = CollectionStore(spec.directory)

    def execute(request_dicts: list) -> list:
        requests = requests_from_dicts(request_dicts)
        return responses_to_dicts(engine.execute(requests))

    def reload() -> str | None:
        # Reopen only when the directory actually moved to a new
        # generation: a broadcast for a swap this worker already
        # serves (or a spurious one) is a no-op.
        nonlocal engine
        current = store.generation()
        if current is not None \
                and current == engine.collection.generation:
            return current
        engine.collection.close()
        engine = spec.build_engine()
        return engine.collection.generation

    server = FrameServer(sock, execute, reload=reload,
                         generation=engine.collection.generation)
    try:
        server.serve_forever()
    finally:
        engine.collection.close()
        sock.close()


# -- the front-end pool ------------------------------------------------------


class _WorkerHandle:
    """One live worker as the event loop sees it: the process, the
    framed stream, in-flight batch futures, and per-worker counters."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.sock: socket.socket | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.reader_task: asyncio.Task | None = None
        self.ready: asyncio.Future | None = None
        self.outstanding: dict[int, asyncio.Future] = {}
        self.alive = False
        self.pid: int | None = None
        self.generation: str | None = None
        #: Batches completed and requests served by this worker.
        self.batches = 0
        self.served = 0

    def stats(self) -> dict:
        """This worker's ``/stats`` entry."""
        return {
            "index": self.index,
            "pid": self.pid,
            "alive": self.alive,
            "batches": self.batches,
            "served": self.served,
            "mean_batch_size": (self.served / self.batches
                                if self.batches else 0.0),
            "outstanding": len(self.outstanding),
            "generation": self.generation,
        }


class WorkerPool:
    """N prefork pipeline workers behind least-outstanding routing.

    Use :meth:`start` / :meth:`close` (or hand the pool to
    :class:`~repro.serve.server.SearchServer`, which drives the
    lifecycle).  :meth:`execute` is the batch entry point the
    :class:`~repro.serve.batcher.MicroBatcher` dispatches through; it
    matches the signature of
    :meth:`~repro.core.search.engine.QunitSearchEngine.execute` so the
    server can swap one for the other.
    """

    def __init__(self, spec: WorkerSpec, workers: int = 2,
                 ready_timeout: float = READY_TIMEOUT):
        """A pool of ``workers`` processes built from ``spec``.

        Raises:
            ValueError: when ``workers`` < 1.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.ready_timeout = ready_timeout
        self._handles: list[_WorkerHandle] = []
        self._closing = False
        self._batch_ids = iter(range(1, 1 << 62)).__next__
        self._respawns: set[asyncio.Task] = set()
        #: Pool-level counters for ``/stats``.
        self.dispatched = 0
        self.retries = 0
        self.restarts = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker and wait until each announced ready."""
        self._handles = [_WorkerHandle(i) for i in range(self.workers)]
        await asyncio.gather(*(self._spawn(handle)
                               for handle in self._handles))

    async def close(self) -> None:
        """Graceful drain: stop respawning, ask every worker to shut
        down, then reap the processes (killing any that linger)."""
        self._closing = True
        for task in list(self._respawns):
            task.cancel()
        for handle in self._handles:
            if handle.writer is not None and handle.alive:
                try:
                    handle.writer.write(encode_frame({"op": "shutdown"}))
                    await handle.writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
        for handle in self._handles:
            await self._reap(handle)

    async def _reap(self, handle: _WorkerHandle) -> None:
        """Tear one handle down: close the stream, join the process."""
        handle.alive = False
        if handle.reader_task is not None:
            handle.reader_task.cancel()
            try:
                await handle.reader_task
            except (asyncio.CancelledError, Exception):
                pass
            handle.reader_task = None
        if handle.writer is not None:
            handle.writer.close()
            try:
                await handle.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            handle.writer = None
        process = handle.process
        if process is not None:
            await asyncio.to_thread(process.join, 10.0)
            if process.is_alive():
                process.kill()
                await asyncio.to_thread(process.join, 10.0)
            handle.process = None
        self._fail_outstanding(handle, WorkerCrashed(
            f"worker {handle.index} shut down with batches in flight"))

    async def _spawn(self, handle: _WorkerHandle) -> None:
        """Start one worker process and wait for its ready frame."""
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        parent_sock, child_sock = socket.socketpair()
        process = context.Process(
            target=_worker_main,
            args=(handle.index, child_sock, self.spec),
            daemon=True, name=f"repro-worker-{handle.index}")
        process.start()
        child_sock.close()
        handle.process = process
        handle.sock = parent_sock
        handle.reader, handle.writer = await asyncio.open_connection(
            sock=parent_sock)
        loop = asyncio.get_running_loop()
        handle.ready = loop.create_future()
        handle.reader_task = loop.create_task(self._read_frames(handle))
        try:
            await asyncio.wait_for(asyncio.shield(handle.ready),
                                   self.ready_timeout)
        except asyncio.TimeoutError:
            await self._reap(handle)
            raise WorkerCrashed(
                f"worker {handle.index} did not become ready within "
                f"{self.ready_timeout}s") from None
        handle.alive = True

    async def _read_frames(self, handle: _WorkerHandle) -> None:
        """Consume one worker's frames until EOF; EOF means the worker
        died (or closed cleanly at shutdown)."""
        assert handle.reader is not None
        try:
            while True:
                header = await handle.reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"worker {handle.index} sent an implausible "
                        f"frame length {length}")
                body = await handle.reader.readexactly(length)
                self._dispatch_frame(handle, decode_frame(body))
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, ProtocolError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            self._on_worker_down(handle)

    def _dispatch_frame(self, handle: _WorkerHandle, frame: dict) -> None:
        """Route one worker frame to its waiting future / handle state."""
        op = frame.get("op")
        if op == "ready":
            handle.pid = frame.get("pid")
            handle.generation = frame.get("generation")
            if handle.ready is not None and not handle.ready.done():
                handle.ready.set_result(True)
            return
        if op in ("result", "error"):
            future = handle.outstanding.pop(frame.get("id"), None)
            if future is None or future.done():
                return
            if op == "result":
                handle.batches += 1
                responses = frame.get("responses")
                handle.served += len(responses) \
                    if isinstance(responses, list) else 0
                future.set_result(responses)
            else:
                future.set_exception(WorkerError(
                    f"worker {handle.index}: {frame.get('error')}"))
            return
        # protocol_error (or anything unknown): the worker lost framing
        # and is about to exit; the EOF path handles the cleanup.

    def _on_worker_down(self, handle: _WorkerHandle) -> None:
        """Crash detection: fail in-flight batches, schedule a respawn."""
        was_alive = handle.alive
        handle.alive = False
        self._fail_outstanding(handle, WorkerCrashed(
            f"worker {handle.index} (pid {handle.pid}) died with a "
            f"batch in flight"))
        if self._closing or not was_alive:
            return
        self.restarts += 1
        task = asyncio.get_running_loop().create_task(
            self._respawn(handle))
        self._respawns.add(task)
        task.add_done_callback(self._respawns.discard)

    @staticmethod
    def _fail_outstanding(handle: _WorkerHandle, error: Exception) -> None:
        for future in handle.outstanding.values():
            if not future.done():
                future.set_exception(error)
        handle.outstanding.clear()

    async def _respawn(self, handle: _WorkerHandle) -> None:
        """Replace one dead worker in place (same index, restarts+1)."""
        process = handle.process
        if process is not None:
            await asyncio.to_thread(process.join, 10.0)
            handle.process = None
        if handle.writer is not None:
            handle.writer.close()
            handle.writer = None
        if self._closing:
            return
        try:
            await self._spawn(handle)
        except WorkerCrashed:
            pass  # stays dead; execute() routes around it

    # -- dispatch ------------------------------------------------------------

    def _pick(self) -> _WorkerHandle | None:
        """The live worker with the fewest outstanding batches (lowest
        index on ties); ``None`` when every worker is down."""
        live = [handle for handle in self._handles if handle.alive]
        if not live:
            return None
        return min(live, key=lambda handle: (len(handle.outstanding),
                                             handle.index))

    async def execute(self, requests: list[SearchRequest]) -> list:
        """Run one micro-batch on a worker; the pool-side counterpart
        of :meth:`~repro.core.search.engine.QunitSearchEngine.execute`.

        The batch goes to the least-loaded live worker.  If that worker
        dies mid-batch the batch is retried **once** on another healthy
        worker; a second crash — or no healthy worker at all — raises.

        Raises:
            WorkerCrashed: no worker could complete the batch (503).
            WorkerError: the engine raised inside the worker (500; not
                retried — the failure is deterministic).
        """
        if self._closing:
            raise WorkerCrashed("worker pool is shutting down")
        payload = requests_to_dicts(requests)
        error: Exception = WorkerCrashed("no healthy worker available")
        for _attempt in (0, 1):
            handle = self._pick()
            if handle is None:
                # Give an automatic respawn a moment to come back
                # before giving up on the whole batch.
                await asyncio.sleep(0.05)
                handle = self._pick()
                if handle is None:
                    raise error
            try:
                dicts = await self._run_on(handle, payload)
            except WorkerCrashed as exc:
                error = exc
                self.retries += 1
                continue
            return responses_from_dicts(dicts)
        raise error

    async def _run_on(self, handle: _WorkerHandle, payload: list) -> list:
        """Send one batch frame to ``handle`` and await its result."""
        batch_id = self._batch_ids()
        future = asyncio.get_running_loop().create_future()
        handle.outstanding[batch_id] = future
        self.dispatched += 1
        assert handle.writer is not None
        try:
            handle.writer.write(encode_frame(
                {"op": "batch", "id": batch_id, "requests": payload}))
            await handle.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            handle.outstanding.pop(batch_id, None)
            raise WorkerCrashed(
                f"worker {handle.index} pipe broke mid-send") from None
        return await future

    # -- generation broadcast ------------------------------------------------

    async def broadcast_generation(self) -> None:
        """Tell every live worker an ingestion commit swapped the
        serving generation; each invalidates its caches and lazily
        reopens the directory (a no-op for workers already serving the
        new generation).  Batch frames already queued behind the
        broadcast are answered after the reload, so a worker never
        mixes generations within a batch."""
        for handle in self._handles:
            if not handle.alive or handle.writer is None:
                continue
            try:
                handle.writer.write(encode_frame({"op": "generation"}))
                await handle.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # the crash path respawns it against the new gen

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Pool counters plus one entry per worker (``/stats``)."""
        return {
            "count": self.workers,
            "dispatched": self.dispatched,
            "retries": self.retries,
            "restarts": self.restarts,
            "per_worker": [handle.stats() for handle in self._handles],
        }

"""The staged query-execution pipeline behind the qunit serving path.

The paper's Figure 1 describes query time as a fixed pipeline —
segmentation → qunit matching → ranking — over "nothing more than a
collection of independent qunits".  This package makes that pipeline an
explicit, *batched* object instead of a monolithic per-query method:

- :mod:`repro.serve.plan` — :class:`~repro.serve.plan.QueryPlan` /
  :class:`~repro.serve.plan.PlannedTask`: one query's decided retrieval
  work (materializations, per-definition IR tasks, the flat backfill),
  with the retrieval strategy resolved by the df-skew cost model
  (:func:`repro.ir.wand.resolve_strategy`) against snapshot statistics
  at planning time and per-definition Bloom filters pruning tasks that
  provably cannot match.
- :mod:`repro.serve.stages` — :class:`~repro.serve.stages.PipelineStage`
  and the five concrete stages (segment → match → plan → execute →
  assemble), each batch-native: N queries segmented together, matched
  together, and their retrieval calls grouped per target index so
  :meth:`~repro.ir.retrieval.Searcher.search_many` /
  :meth:`~repro.ir.shard.ShardedTopK.topk_many` see real batches from
  the engine layer.
- :mod:`repro.serve.pipeline` — :class:`~repro.serve.pipeline.
  QueryPipeline` (drives the stages, times them, applies middleware),
  :class:`~repro.serve.pipeline.EngineConfig`, and the stage middleware
  (result caching, admission control).
- :mod:`repro.serve.explain` — the rewritten
  :class:`~repro.serve.explain.SearchExplanation` carrying the full
  stage trace (per-stage wall time, cache hits/misses, shards routed,
  strategy chosen, rejected candidates).
- :mod:`repro.serve.pool` — :class:`~repro.serve.pool.SearcherPool`,
  the bounded LRU searcher cache the collection hands the pipeline,
  with lease-based pinning so eviction never closes a searcher a batch
  still holds.
- :mod:`repro.serve.api` — :class:`~repro.serve.api.SearchRequest` /
  :class:`~repro.serve.api.SearchResponse`, the one typed
  request/response pair every serving surface (engine ``execute``,
  HTTP server, CLI) speaks, plus the JSON wire codecs.
- :mod:`repro.serve.batcher` — :class:`~repro.serve.batcher.
  MicroBatcher` (accumulates concurrent requests into micro-batches)
  and :class:`~repro.serve.batcher.ClientQuotas` (per-client token
  buckets).
- :mod:`repro.serve.server` — the asyncio HTTP front end
  (:class:`~repro.serve.server.SearchServer`), with backpressure,
  quotas, and graceful shard-worker shutdown.
- :mod:`repro.serve.workers` — the prefork worker tier
  (:class:`~repro.serve.workers.WorkerPool` /
  :class:`~repro.serve.workers.WorkerSpec`): full-pipeline worker
  processes over shared mmap snapshots, fed whole micro-batches over a
  length-prefixed framed protocol, with crash respawn and
  generation-swap broadcast.
- :mod:`repro.serve.client` — :class:`~repro.serve.client.
  SearchClient` and the closed-loop and open-loop (Poisson) load
  generators behind ``repro loadtest`` / ``BENCH_serving.json``.

Exports resolve lazily (PEP 562): :mod:`repro.core.collection` imports
:mod:`repro.serve.pool` while :mod:`repro.serve.stages` type-references
the collection, and lazy resolution keeps that pair cycle-free.
"""

from __future__ import annotations

__all__ = [
    "EngineConfig",
    "PipelineMiddleware",
    "AdmissionMiddleware",
    "ResultCacheMiddleware",
    "PipelineStage",
    "PlannedTask",
    "QueryContext",
    "QueryPipeline",
    "QueryPlan",
    "SearchExplanation",
    "SearcherPool",
    "SearchRequest",
    "SearchResponse",
    "StageTiming",
    "MicroBatcher",
    "ClientQuotas",
    "ServerConfig",
    "SearchServer",
    "SearchClient",
    "WorkerPool",
    "WorkerSpec",
    "WorkerCrashed",
    "WorkerError",
]

_EXPORTS = {
    "EngineConfig": "repro.serve.pipeline",
    "PipelineMiddleware": "repro.serve.pipeline",
    "AdmissionMiddleware": "repro.serve.pipeline",
    "ResultCacheMiddleware": "repro.serve.pipeline",
    "QueryContext": "repro.serve.pipeline",
    "QueryPipeline": "repro.serve.pipeline",
    "PipelineStage": "repro.serve.stages",
    "PlannedTask": "repro.serve.plan",
    "QueryPlan": "repro.serve.plan",
    "SearchExplanation": "repro.serve.explain",
    "StageTiming": "repro.serve.explain",
    "SearcherPool": "repro.serve.pool",
    "SearchRequest": "repro.serve.api",
    "SearchResponse": "repro.serve.api",
    "MicroBatcher": "repro.serve.batcher",
    "ClientQuotas": "repro.serve.batcher",
    "ServerConfig": "repro.serve.server",
    "SearchServer": "repro.serve.server",
    "SearchClient": "repro.serve.client",
    "WorkerPool": "repro.serve.workers",
    "WorkerSpec": "repro.serve.workers",
    "WorkerCrashed": "repro.serve.workers",
    "WorkerError": "repro.serve.workers",
}


def __getattr__(name: str):
    """Resolve a package export on first access (PEP 562 lazy import)."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    """The package's public names (lazy exports included)."""
    return sorted(__all__)

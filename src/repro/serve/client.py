"""HTTP client and closed-loop load generator for the serving front end.

:class:`SearchClient` is the protocol counterpart of
:class:`~repro.serve.server.SearchServer`: one persistent keep-alive
connection speaking the JSON wire format of :mod:`repro.serve.api`, with
429/503 surfaced as :class:`ServerBusy` (carrying the server's
``Retry-After``) so callers can implement their own retry policy.

:func:`run_load` drives N concurrent closed-loop clients — each sends
its next request only after receiving the previous response, the
standard closed-loop load model — over session-structured Zipf traffic
(:func:`build_session_workload` distributes
:class:`~repro.datasets.querylog.sessions.SessionLogGenerator` sessions
round-robin across clients, preserving the within-session query order
that gives each client its repetition structure).  The resulting
:class:`LoadReport` carries sustained QPS, p50/p99 latency, and the
cache hit rate read off the responses' ``cached`` flags — the numbers
``BENCH_serving.json`` tracks.

:func:`run_load_open_loop` is the complementary *open-loop* model
(``repro loadtest --arrival-rate R``): requests arrive on a seeded
Poisson process at ``R`` per second regardless of whether earlier
requests finished, the way production traffic actually behaves.  A
closed-loop fleet self-throttles when the server slows down — its
measured QPS degrades gracefully and hides saturation — whereas an
open-loop run keeps offering load, so queueing delay, 429 drops, and
504 timeouts become *visible* (reported as drop/timeout rates next to
the latency percentiles).  Each arrival is one-shot: a 429/503 answer
counts as dropped rather than retried, because a retry would couple
the arrival process to server state and close the loop again.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field

from repro.datasets.querylog.analysis import client_repetition_rates
from repro.datasets.querylog.sessions import QuerySession
from repro.errors import ReproError
from repro.serve.api import SearchRequest, SearchResponse

__all__ = ["ServerBusy", "SearchClient", "LoadReport",
           "build_session_workload", "run_load", "run_load_open_loop",
           "run_load_in_process", "percentile"]


class ServerBusy(ReproError):
    """The server answered 429/503; wait ``retry_after`` and retry."""

    def __init__(self, message: str, retry_after: float = 0.05):
        super().__init__(message)
        self.retry_after = retry_after


class SearchClient:
    """One persistent connection to a :class:`~repro.serve.server.
    SearchServer` (async context manager)."""

    def __init__(self, host: str, port: int):
        """A client for ``host:port``; connects lazily on first use."""
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> tuple[asyncio.StreamReader,
                                      asyncio.StreamWriter]:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)
        assert self._reader is not None and self._writer is not None
        return self._reader, self._writer

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "SearchClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- requests ------------------------------------------------------------

    async def request(self, method: str, path: str,
                      payload: dict | None = None) -> tuple[int, dict]:
        """One HTTP round trip; returns (status, decoded JSON body).

        Reconnects once on a connection dropped between requests (the
        server may close idle keep-alive connections at shutdown).
        """
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else b""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n").encode("latin-1")
        for attempt in (0, 1):
            reader, writer = await self._connect()
            try:
                writer.write(head + body)
                await writer.drain()
                return await self._read_response(reader)
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.IncompleteReadError):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader,
                             ) -> tuple[int, dict]:
        """Parse one HTTP response off the stream."""
        head = await reader.readuntil(b"\r\n\r\n")
        status_line, _, header_block = head.partition(b"\r\n")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b""
        data = json.loads(raw.decode("utf-8")) if raw else {}
        if isinstance(data, dict) and status in (429, 503):
            data.setdefault("retry_after", headers.get("retry-after"))
        return status, data

    async def search(self, request: SearchRequest) -> SearchResponse:
        """Serve one typed request over the wire.

        Raises:
            ServerBusy: on 429/503 (with the server's Retry-After).
            ReproError: on any other non-200 answer.
        """
        status, data = await self.request("POST", "/search",
                                          request.to_dict())
        if status == 200:
            return SearchResponse.from_dict(data)
        if status in (429, 503):
            try:
                retry_after = float(data.get("retry_after") or 0.05)
            except (TypeError, ValueError):
                retry_after = 0.05
            raise ServerBusy(data.get("error", f"HTTP {status}"),
                             retry_after=retry_after)
        raise ReproError(
            f"server answered {status}: {data.get('error', data)!r}")

    async def stats(self) -> dict:
        """The server's ``/stats`` counters."""
        status, data = await self.request("GET", "/stats")
        if status != 200:
            raise ReproError(f"/stats answered {status}")
        return data


# -- closed-loop load generation --------------------------------------------


@dataclass(frozen=True)
class LoadReport:
    """One load run's headline numbers.

    ``qps`` is completed requests over wall time; latencies are
    milliseconds over successful requests; ``cache_hit_rate`` is the
    fraction of responses served from the pipeline result cache (their
    ``cached`` flag); ``repetition_rate`` is the workload's volume-
    weighted per-client repetition (the ceiling a per-query cache could
    theoretically hit); ``rejected`` counts 429/503 answers (each
    retried after the server's Retry-After), ``errors`` hard failures.

    Open-loop runs (:func:`run_load_open_loop`) additionally fill
    ``dropped`` (429/503 answers — one-shot, *not* retried) and
    ``timed_out`` (504 answers); both stay 0 in closed-loop reports,
    where a busy answer is retried instead.
    """

    qps: float
    p50_ms: float
    p99_ms: float
    cache_hit_rate: float
    repetition_rate: float
    completed: int
    rejected: int
    errors: int
    wall_seconds: float
    dropped: int = 0
    timed_out: int = 0
    latencies_ms: tuple[float, ...] = field(repr=False, default=())

    def to_dict(self) -> dict:
        """The JSON-able report (latency samples elided)."""
        offered = (self.completed + self.dropped + self.timed_out
                   + self.errors)
        return {
            "qps": round(self.qps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "repetition_rate": round(self.repetition_rate, 4),
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 3),
            "dropped": self.dropped,
            "timed_out": self.timed_out,
            "drop_rate": round(self.dropped / offered, 4) if offered
            else 0.0,
            "timeout_rate": round(self.timed_out / offered, 4) if offered
            else 0.0,
        }


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by nearest-rank; 0.0 on empty."""
    if not samples:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def build_session_workload(sessions: list[QuerySession], clients: int,
                           ) -> list[list[str]]:
    """Distribute user sessions round-robin across ``clients`` streams.

    Sessions stay intact and ordered within a stream, so each client's
    request sequence keeps the refinement structure (and hence the
    repetition rate) the session generator produced — the property the
    cache-admission measurement depends on.

    Raises:
        ValueError: on a non-positive client count or no sessions.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if not sessions:
        raise ValueError("need at least one session")
    streams: list[list[str]] = [[] for _ in range(clients)]
    for i, session in enumerate(sessions):
        streams[i % clients].extend(session.queries)
    return [stream for stream in streams if stream]


async def run_load(host: str, port: int, workload: list[list[str]],
                   limit: int = 5, timeout: float = 30.0) -> LoadReport:
    """Drive one closed-loop client per workload stream to completion.

    Each client sends its stream in order, one request outstanding at a
    time; a :class:`ServerBusy` answer is retried after the server's
    ``Retry-After`` (counted in ``rejected``), so the run measures the
    server's *sustained* throughput under admission control rather than
    failing on the first 429.

    Args:
        host, port: the server address.
        workload: per-client query streams (from
            :func:`build_session_workload`).
        limit: result limit per request.
        timeout: per-request timeout (seconds), carried in the request.

    Returns:
        The aggregated :class:`LoadReport`.
    """
    latencies: list[float] = []
    cached = 0
    rejected = 0
    errors = 0

    async def one_client(index: int, stream: list[str]) -> None:
        nonlocal cached, rejected, errors
        client_id = f"client-{index}"
        async with SearchClient(host, port) as client:
            for query in stream:
                request = SearchRequest(query=query, limit=limit,
                                        client_id=client_id,
                                        timeout=timeout)
                while True:
                    started = time.perf_counter()
                    try:
                        response = await client.search(request)
                    except ServerBusy as busy:
                        rejected += 1
                        await asyncio.sleep(min(busy.retry_after, 1.0))
                        continue
                    except ReproError:
                        errors += 1
                        break
                    latencies.append(
                        (time.perf_counter() - started) * 1000.0)
                    if response.cached:
                        cached += 1
                    break

    started = time.perf_counter()
    await asyncio.gather(*(one_client(i, stream)
                           for i, stream in enumerate(workload)))
    wall = time.perf_counter() - started
    completed = len(latencies)
    stream_pairs = [(f"client-{i}", query)
                    for i, stream in enumerate(workload)
                    for query in stream]
    rates = client_repetition_rates(stream_pairs)
    total = len(stream_pairs)
    repetition = sum(rates[f"client-{i}"] * len(stream)
                     for i, stream in enumerate(workload)) / total \
        if total else 0.0
    return LoadReport(
        qps=completed / wall if wall > 0 else 0.0,
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
        cache_hit_rate=cached / completed if completed else 0.0,
        repetition_rate=repetition,
        completed=completed,
        rejected=rejected,
        errors=errors,
        wall_seconds=wall,
        latencies_ms=tuple(latencies),
    )


async def run_load_open_loop(host: str, port: int,
                             workload: list[list[str]],
                             arrival_rate: float,
                             limit: int = 5, timeout: float = 30.0,
                             seed: int = 0) -> LoadReport:
    """Offer the workload on a seeded Poisson arrival process.

    Inter-arrival gaps are drawn from ``Expovariate(arrival_rate)`` with
    a :class:`random.Random` seeded by ``seed``, so the *offered* load
    is ``arrival_rate`` requests/second on average, reproducibly —
    independent of how fast the server answers.  Arrivals interleave the
    workload streams round-robin (each request keeps its stream's
    ``client_id``, preserving the per-client repetition measurement) and
    each is **one-shot**: 200 records a latency sample, 429/503 counts
    as *dropped*, 504 as *timed out*, anything else as an error.  No
    retries — a retry would make later arrivals depend on server state,
    which is exactly the closed-loop coupling this mode exists to avoid.

    Connections are drawn from a keep-alive free-list sized by the
    run's actual concurrency, so connection setup is amortized without
    ever serializing two in-flight requests onto one socket.

    Args:
        host, port: the server address.
        workload: per-client query streams (from
            :func:`build_session_workload`).
        arrival_rate: mean offered requests/second (> 0).
        limit: result limit per request.
        timeout: per-request timeout (seconds), carried in the request.
        seed: arrival-process seed.

    Returns:
        The aggregated :class:`LoadReport`, with ``dropped`` /
        ``timed_out`` filled in.

    Raises:
        ValueError: on a non-positive ``arrival_rate``.
    """
    if arrival_rate <= 0:
        raise ValueError(
            f"arrival_rate must be positive, got {arrival_rate}")
    # Round-robin interleave: arrival order mixes clients the way
    # independent users would, while each query keeps its client_id.
    arrivals: list[tuple[str, str]] = []
    cursors = [0] * len(workload)
    remaining = sum(len(stream) for stream in workload)
    while remaining:
        for i, stream in enumerate(workload):
            if cursors[i] < len(stream):
                arrivals.append((f"client-{i}", stream[cursors[i]]))
                cursors[i] += 1
                remaining -= 1

    rng = random.Random(seed)
    latencies: list[float] = []
    cached = 0
    dropped = 0
    timed_out = 0
    errors = 0
    pool: list[SearchClient] = []
    all_clients: list[SearchClient] = []

    async def one_shot(client_id: str, query: str) -> None:
        nonlocal cached, dropped, timed_out, errors
        if pool:
            client = pool.pop()
        else:
            client = SearchClient(host, port)
            all_clients.append(client)
        request = SearchRequest(query=query, limit=limit,
                                client_id=client_id, timeout=timeout)
        started = time.perf_counter()
        try:
            status, data = await client.request("POST", "/search",
                                                request.to_dict())
        except (ReproError, OSError, asyncio.IncompleteReadError):
            errors += 1
            return
        finally:
            pool.append(client)
        if status == 200:
            latencies.append((time.perf_counter() - started) * 1000.0)
            if data.get("cached"):
                cached += 1
        elif status in (429, 503):
            dropped += 1
        elif status == 504:
            timed_out += 1
        else:
            errors += 1

    started = time.perf_counter()
    tasks: list[asyncio.Task] = []
    next_at = 0.0
    for client_id, query in arrivals:
        next_at += rng.expovariate(arrival_rate)
        delay = started + next_at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one_shot(client_id, query)))
    if tasks:
        await asyncio.gather(*tasks)
    wall = time.perf_counter() - started
    for client in all_clients:
        await client.close()

    completed = len(latencies)
    rates = client_repetition_rates(arrivals)
    total = len(arrivals)
    repetition = sum(rates[f"client-{i}"] * len(stream)
                     for i, stream in enumerate(workload)) / total \
        if total else 0.0
    return LoadReport(
        qps=completed / wall if wall > 0 else 0.0,
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
        cache_hit_rate=cached / completed if completed else 0.0,
        repetition_rate=repetition,
        completed=completed,
        rejected=dropped,
        errors=errors,
        wall_seconds=wall,
        dropped=dropped,
        timed_out=timed_out,
        latencies_ms=tuple(latencies),
    )


def _load_process_main(host: str, port: int, workload: list[list[str]],
                       limit: int, timeout: float,
                       arrival_rate: float | None, seed: int,
                       queue) -> None:
    """Child-process entry point for :func:`run_load_in_process`."""
    try:
        if arrival_rate is not None:
            report = asyncio.run(run_load_open_loop(
                host, port, workload, arrival_rate, limit=limit,
                timeout=timeout, seed=seed))
        else:
            report = asyncio.run(run_load(host, port, workload,
                                          limit=limit, timeout=timeout))
        queue.put(("report", report))
    except BaseException as exc:  # ship the failure, don't hang the parent
        queue.put(("error", repr(exc)))
        raise


async def run_load_in_process(host: str, port: int,
                              workload: list[list[str]],
                              limit: int = 5,
                              timeout: float = 30.0,
                              arrival_rate: float | None = None,
                              seed: int = 0) -> LoadReport:
    """:func:`run_load` (or, with ``arrival_rate``,
    :func:`run_load_open_loop`), but with the whole client fleet in a
    child process.

    In-process load generation shares the server's event loop and GIL,
    so client-side work (JSON encode/decode, socket bookkeeping) steals
    cycles from the very serving path being measured — and the measured
    QPS partly reflects the *client's* scheduling.  Running the fleet in
    a separate interpreter gives the server its whole loop and makes
    the load genuinely external, like production traffic.

    The child talks to ``host:port`` over real sockets and ships the
    final :class:`LoadReport` back over a multiprocessing queue; the
    awaiting server loop stays responsive the whole time (the wait runs
    in a thread).

    Raises:
        RuntimeError: if the child dies without producing a report.
    """
    import multiprocessing
    from queue import Empty

    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    process = context.Process(
        target=_load_process_main,
        args=(host, port, workload, limit, timeout, arrival_rate, seed,
              queue), daemon=True)
    process.start()

    def wait_for_report():
        try:
            while True:
                try:
                    return queue.get(timeout=1.0)
                except Empty:
                    if not process.is_alive():
                        # One final drain: the child may have published
                        # between the timeout and the liveness check.
                        try:
                            return queue.get_nowait()
                        except Empty:
                            raise RuntimeError(
                                f"load client process exited without a "
                                f"report (exit code {process.exitcode})"
                            ) from None
        finally:
            process.join(timeout=30.0)

    kind, payload = await asyncio.to_thread(wait_for_report)
    if kind == "error":
        raise RuntimeError(f"load client process failed: {payload}")
    return payload

"""XML view of a relational database, plus LCA-family keyword operators.

The paper's XML baselines (XRank-style LCA and Schema-Free XQuery's MLCA)
were run over "a crawl of the imdb.com website converted to XML".  We build
the equivalent tree straight from the database: one element per entity
tuple, junction tables nested as repeating child elements with their
referenced entities' text inlined — the same shape a site crawl yields
(a movie page lists its cast; a person page lists their filmography).

Nodes carry Dewey identifiers, so ancestor tests and lowest common
ancestors are prefix operations.
"""

from repro.xmlview.operators import lca, lca_nodes, mlca, slca
from repro.xmlview.tree import XmlNode, build_xml_view

__all__ = [
    "XmlNode",
    "build_xml_view",
    "lca",
    "lca_nodes",
    "slca",
    "mlca",
]

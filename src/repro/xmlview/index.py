"""Token index over an XML view, for resolving keywords to match nodes."""

from __future__ import annotations

from repro.ir.analysis import Analyzer
from repro.xmlview.tree import XmlNode

__all__ = ["TreeTextIndex"]


class TreeTextIndex:
    """Maps normalized tokens to the tree nodes whose own text contains them.

    Match sets are what the LCA/SLCA/MLCA operators consume; building the
    index once makes repeated keyword queries cheap.
    """

    def __init__(self, root: XmlNode, analyzer: Analyzer | None = None):
        self.root = root
        # Stemming on both sides lets "awards" hit the "award" section
        # label, as word forms on crawled pages would; stopwords stay so
        # title phrases like "of the" still resolve.
        self.analyzer = analyzer or Analyzer(remove_stopwords=False, stem=True)
        self._by_token: dict[str, list[XmlNode]] = {}
        for node in root.walk():
            if not node.text:
                continue
            seen: set[str] = set()
            for token in self._tokens(node.text):
                if token in seen:
                    continue
                seen.add(token)
                self._by_token.setdefault(token, []).append(node)

    def _tokens(self, text: str) -> list[str]:
        if self.analyzer.stem:
            return [self.analyzer.stem_token(token)
                    for token in self.analyzer.raw_tokens(text)]
        return self.analyzer.raw_tokens(text)

    def matches(self, token: str) -> list[XmlNode]:
        """Nodes containing the (normalized) token in their direct text."""
        normalized = self._tokens(token)
        if len(normalized) != 1:
            raise ValueError(f"expected a single token, got {token!r}")
        return list(self._by_token.get(normalized[0], ()))

    def match_sets(self, query: str) -> list[list[XmlNode]]:
        """Per-keyword match sets for a whole keyword query.

        Keywords missing from the tree yield empty lists (the operators
        treat that as "no conjunctive answer"), matching how the XML
        baselines behave when a term is absent.
        """
        return [list(self._by_token.get(token, ()))
                for token in self._tokens(query)]

    def vocabulary_size(self) -> int:
        return len(self._by_token)

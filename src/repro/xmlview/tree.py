"""Build a Dewey-encoded XML tree from a relational database.

Nesting rules (applied generically from schema metadata):

* every non-junction table with searchable text becomes a top-level
  collection ``<{table}_collection>`` of ``<{table}>`` elements;
* a tuple element contains one child element per value (non-id) column;
* a tuple element resolves its *own* foreign keys by inlining the
  referenced row's searchable columns (``cast`` shows the role name, not
  ``role_id`` — undoing the normalization a reader never wanted);
* every junction table adjacent to the tuple's table nests as repeating
  child elements carrying the junction's value columns plus the other
  side's searchable columns;
* non-junction tables that reference the tuple (e.g. ``award`` → movie)
  nest one level deep with their value columns.

The result matches what a site crawl would contain, which is exactly what
the paper fed the LCA/MLCA baselines.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.relational.database import Database
from repro.graph.schema_graph import SchemaGraph
from repro.utils.text import normalize

__all__ = ["XmlNode", "build_xml_view"]

Atom = tuple[str, str, str]  # (table, column, normalized value)


class XmlNode:
    """One element in the XML view.

    ``dewey`` is the node's position as a tuple of child indexes from the
    root; ancestorship is tuple-prefix testing.  ``provenance`` links text
    nodes back to (table, column, row_id) for answer-atom extraction.
    """

    __slots__ = ("tag", "dewey", "text", "children", "provenance")

    def __init__(self, tag: str, dewey: tuple[int, ...], text: str = "",
                 provenance: tuple[str, str, int] | None = None):
        self.tag = tag
        self.dewey = dewey
        self.text = text
        self.children: list[XmlNode] = []
        self.provenance = provenance

    # -- construction --------------------------------------------------------

    def add_child(self, tag: str, text: str = "",
                  provenance: tuple[str, str, int] | None = None) -> "XmlNode":
        child = XmlNode(tag, self.dewey + (len(self.children),), text, provenance)
        self.children.append(child)
        return child

    # -- structure -----------------------------------------------------------

    def is_ancestor_of(self, other: "XmlNode") -> bool:
        """Proper-ancestor test via Dewey prefixes."""
        return (
            len(self.dewey) < len(other.dewey)
            and other.dewey[:len(self.dewey)] == self.dewey
        )

    def walk(self) -> Iterator["XmlNode"]:
        """Pre-order traversal including self."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find_by_dewey(self, dewey: tuple[int, ...]) -> "XmlNode":
        """Descend from this node to the descendant with the given Dewey id."""
        if dewey[:len(self.dewey)] != self.dewey:
            raise KeyError(f"{dewey} is not under {self.dewey}")
        node = self
        for index in dewey[len(self.dewey):]:
            node = node.children[index]
        return node

    # -- content -------------------------------------------------------------

    def subtree_text(self) -> str:
        """All text in document order under (and including) this node."""
        parts = [node.text for node in self.walk() if node.text]
        return " ".join(parts)

    def subtree_atoms(self) -> frozenset[Atom]:
        """Provenance atoms of every text node in the subtree."""
        atoms = set()
        for node in self.walk():
            if node.provenance is not None and node.text:
                table, column, _row = node.provenance
                atoms.add((table, column, normalize(node.text)))
        return frozenset(atoms)

    def size(self) -> int:
        """Number of nodes in the subtree."""
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:
        return f"XmlNode(<{self.tag}>, dewey={self.dewey}, children={len(self.children)})"


def build_xml_view(database: Database, max_children_per_group: int | None = None) -> XmlNode:
    """Construct the XML view of ``database``; returns the root node.

    ``max_children_per_group`` optionally caps the repeated nested elements
    per tuple (protects tree size at large scales); None = unbounded.
    """
    builder = _XmlViewBuilder(database, max_children_per_group)
    return builder.build()


class _XmlViewBuilder:
    def __init__(self, database: Database, cap: int | None):
        self.database = database
        self.schema_graph = SchemaGraph(database.schema)
        self.cap = cap
        # (junction_table, fk_column) -> hash index, built lazily
        self._reverse_indexes: dict[tuple[str, str], object] = {}

    def build(self) -> XmlNode:
        root = XmlNode("database", ())
        for table_name in self.database.schema.table_names:
            if self.schema_graph.is_junction(table_name):
                continue
            table_schema = self.database.schema.table(table_name)
            if not table_schema.searchable_columns():
                continue
            collection = root.add_child(f"{table_name}_collection")
            table = self.database.table(table_name)
            for row_id in range(len(table)):
                self._emit_tuple(collection, table_name, row_id)
        return root

    # -- tuple elements --------------------------------------------------------

    def _emit_tuple(self, parent: XmlNode, table_name: str, row_id: int) -> XmlNode:
        table_schema = self.database.schema.table(table_name)
        row = self.database.table(table_name).row(row_id)
        element = parent.add_child(table_name)

        # Value columns.
        for column in table_schema.value_columns():
            value = row[column.name]
            if value is None:
                continue
            element.add_child(column.name, _text(value),
                              provenance=(table_name, column.name, row_id))

        # Own FKs: inline the referenced row's searchable text.
        for fk in table_schema.foreign_keys:
            key = row[fk.column]
            if key is None:
                continue
            self._inline_reference(element, fk.ref_table, fk.ref_column, key)

        # Junction neighbors: repeated nested elements.  A crawled page
        # names its sections ("Cast", "Locations"); the label text node
        # mirrors that, which is what lets LCA-style search anchor schema
        # words the way it did on the paper's imdb.com crawl.
        for junction_name in self.schema_graph.neighbors(table_name):
            if not self.schema_graph.is_junction(junction_name):
                continue
            emitted = self._emit_junction_children(element, table_name, row,
                                                   junction_name)
            if emitted:
                element.add_child("section_label",
                                  junction_name.replace("_", " "))

        # Reverse references from non-junction tables (e.g. award -> movie).
        for other in self.database.schema.table_names:
            if other == table_name or self.schema_graph.is_junction(other):
                continue
            other_schema = self.database.schema.table(other)
            for fk in other_schema.foreign_keys:
                if fk.ref_table != table_name:
                    continue
                key = row.get(fk.ref_column)
                if key is None:
                    continue
                index = self.database.hash_index(other, fk.column)
                emitted = 0
                for count, ref_row_id in enumerate(index.lookup(key)):
                    if self.cap is not None and count >= self.cap:
                        break
                    self._emit_shallow(element, other, ref_row_id)
                    emitted += 1
                if emitted:
                    element.add_child("section_label",
                                      other.replace("_", " "))
        return element

    def _inline_reference(self, element: XmlNode, ref_table: str,
                          ref_column: str, key: object) -> None:
        target = self.database.table(ref_table)
        if target.schema.primary_key == ref_column:
            ref_row = target.by_primary_key(key)
            if ref_row is None:
                return
            ref_row_id = self.database.hash_index(ref_table, ref_column).lookup(key)[0]
        else:
            matches = self.database.hash_index(ref_table, ref_column).lookup(key)
            if not matches:
                return
            ref_row_id = matches[0]
            ref_row = target.row(ref_row_id)
        for column in target.schema.searchable_columns():
            value = ref_row[column.name]
            if value is None:
                continue
            element.add_child(f"{ref_table}_{column.name}", _text(value),
                              provenance=(ref_table, column.name, ref_row_id))

    def _emit_junction_children(self, element: XmlNode, table_name: str,
                                row: dict, junction_name: str) -> int:
        emitted = 0
        junction_schema = self.database.schema.table(junction_name)
        # FK of the junction pointing at *this* table.
        own_fks = [fk for fk in junction_schema.foreign_keys
                   if fk.ref_table == table_name]
        for own_fk in own_fks:
            key = row.get(own_fk.ref_column)
            if key is None:
                continue
            index = self.database.hash_index(junction_name, own_fk.column)
            junction_table = self.database.table(junction_name)
            for count, junction_row_id in enumerate(index.lookup(key)):
                if self.cap is not None and count >= self.cap:
                    break
                junction_row = junction_table.row(junction_row_id)
                child = element.add_child(junction_name)
                emitted += 1
                for column in junction_schema.value_columns():
                    value = junction_row[column.name]
                    if value is None:
                        continue
                    child.add_child(
                        column.name, _text(value),
                        provenance=(junction_name, column.name, junction_row_id),
                    )
                for other_fk in junction_schema.foreign_keys:
                    if other_fk is own_fk:
                        continue
                    other_key = junction_row[other_fk.column]
                    if other_key is None:
                        continue
                    self._inline_reference(
                        child, other_fk.ref_table, other_fk.ref_column, other_key
                    )
        return emitted

    def _emit_shallow(self, element: XmlNode, table_name: str, row_id: int) -> None:
        """A one-level rendering of a referencing tuple (no recursion)."""
        table_schema = self.database.schema.table(table_name)
        row = self.database.table(table_name).row(row_id)
        child = element.add_child(table_name)
        for column in table_schema.value_columns():
            value = row[column.name]
            if value is None:
                continue
            child.add_child(column.name, _text(value),
                            provenance=(table_name, column.name, row_id))


def _text(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)

"""LCA-family keyword operators over the XML view.

* :func:`lca` — lowest common ancestor of Dewey ids (prefix intersection).
* :func:`slca` — *smallest* LCAs for a keyword query (Xu & Papakonstantinou
  semantics): LCAs of one match per keyword such that no other such LCA is
  a descendant.  This is the "smallest element containing all keywords"
  strategy the paper attributes to XRank-style systems.
* :func:`mlca` — *meaningful* LCAs (Li, Yu & Jagadish, Schema-Free XQuery):
  an SLCA computed from matches that are mutually nearest by element type,
  so the ancestor is "unique to the combination of queried nodes that
  connect to it".

All operators take the query as pre-resolved keyword match sets (lists of
nodes per keyword); resolving keywords to nodes is the caller's job, which
keeps these functions purely structural.
"""

from __future__ import annotations

from repro.xmlview.tree import XmlNode

__all__ = ["lca", "lca_nodes", "slca", "mlca"]

Dewey = tuple[int, ...]


def lca(a: Dewey, b: Dewey) -> Dewey:
    """Longest common prefix of two Dewey identifiers."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return a[:i]


def lca_nodes(root: XmlNode, nodes: list[XmlNode]) -> XmlNode:
    """The LCA element of a non-empty list of nodes."""
    if not nodes:
        raise ValueError("need at least one node")
    common = nodes[0].dewey
    for node in nodes[1:]:
        common = lca(common, node.dewey)
    return root.find_by_dewey(common)


def slca(root: XmlNode, keyword_matches: list[list[XmlNode]]) -> list[XmlNode]:
    """Smallest LCAs for the given per-keyword match sets.

    Empty result if any keyword has no matches (conjunctive semantics).
    Results are in document (Dewey) order.
    """
    candidates = _candidate_lcas(keyword_matches)
    if candidates is None:
        return []
    kept = _remove_ancestors(candidates)
    return [root.find_by_dewey(dewey) for dewey in sorted(kept)]


def mlca(root: XmlNode, keyword_matches: list[list[XmlNode]]) -> list[XmlNode]:
    """Meaningful LCAs: SLCA restricted to type-consistent nearest matches.

    For an anchor match ``a`` of keyword 0 and each other keyword ``j``,
    consider only the match of each *element type* that is nearest to ``a``
    (deepest LCA).  A combination is meaningful if, symmetrically, ``a`` is
    also the nearest match of its type to the chosen partner.  This is the
    mutual-nearest filter that makes the LCA "unique to the combination".
    """
    if not keyword_matches or any(not matches for matches in keyword_matches):
        return []
    anchor_list = min(keyword_matches, key=len)
    anchor_index = keyword_matches.index(anchor_list)
    other_lists = [matches for i, matches in enumerate(keyword_matches)
                   if i != anchor_index]

    candidates: set[Dewey] = set()
    for anchor in anchor_list:
        chosen: list[XmlNode] = [anchor]
        meaningful = True
        for matches in other_lists:
            partner = _nearest_of_each_type(anchor, matches)
            if partner is None:
                meaningful = False
                break
            # Mutuality: anchor must be the nearest node of its own type
            # to the chosen partner, otherwise the pairing is coincidental.
            reciprocal = _nearest_of_each_type(partner, anchor_list)
            if reciprocal is None or reciprocal.dewey != anchor.dewey:
                meaningful = False
                break
            chosen.append(partner)
        if not meaningful:
            continue
        common = chosen[0].dewey
        for node in chosen[1:]:
            common = lca(common, node.dewey)
        candidates.add(common)

    kept = _remove_ancestors(candidates)
    return [root.find_by_dewey(dewey) for dewey in sorted(kept)]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _candidate_lcas(keyword_matches: list[list[XmlNode]]) -> set[Dewey] | None:
    """LCA of (anchor, nearest match per other keyword) for every anchor."""
    if not keyword_matches or any(not matches for matches in keyword_matches):
        return None
    anchor_list = min(keyword_matches, key=len)
    anchor_index = keyword_matches.index(anchor_list)
    other_lists = [matches for i, matches in enumerate(keyword_matches)
                   if i != anchor_index]
    candidates: set[Dewey] = set()
    for anchor in anchor_list:
        common = anchor.dewey
        for matches in other_lists:
            nearest = max(matches, key=lambda node: (len(lca(node.dewey, anchor.dewey)),
                                                     tuple(reversed(node.dewey))))
            common = lca(common, nearest.dewey)
        candidates.add(common)
    return candidates


def _nearest_of_each_type(anchor: XmlNode, matches: list[XmlNode]) -> XmlNode | None:
    """The match whose LCA with ``anchor`` is deepest, preferring, among
    types, the one with the deepest achievable LCA; ties break by Dewey."""
    best: XmlNode | None = None
    best_depth = -1
    for node in matches:
        depth = len(lca(node.dewey, anchor.dewey))
        if depth > best_depth or (depth == best_depth and best is not None
                                  and node.dewey < best.dewey):
            best = node
            best_depth = depth
    return best


def _remove_ancestors(candidates: set[Dewey]) -> set[Dewey]:
    """Keep only candidates that have no other candidate as a descendant."""
    kept: set[Dewey] = set()
    for dewey in candidates:
        has_descendant = any(
            other != dewey and other[:len(dewey)] == dewey
            for other in candidates
        )
        if not has_descendant:
            kept.add(dewey)
    return kept

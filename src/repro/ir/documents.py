"""The Document abstraction indexed by the IR engine.

A document is an id plus named text fields with per-field weights (a title
field can count more than a body field) and an opaque metadata mapping the
caller can use to link back to whatever produced the document — for qunit
instances, that is the qunit definition name and the binding parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Document"]


@dataclass(frozen=True)
class Document:
    """An immutable document: ``doc_id`` must be unique within an index."""

    doc_id: str
    fields: tuple[tuple[str, str], ...]
    field_weights: tuple[tuple[str, float], ...] = ()
    metadata: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def create(doc_id: str, fields: dict[str, str],
               field_weights: dict[str, float] | None = None,
               metadata: dict[str, object] | None = None) -> "Document":
        """Convenience constructor from plain dicts."""
        return Document(
            doc_id=doc_id,
            fields=tuple(sorted(fields.items())),
            field_weights=tuple(sorted((field_weights or {}).items())),
            metadata=tuple(sorted((metadata or {}).items(), key=lambda kv: kv[0])),
        )

    def field(self, name: str) -> str:
        for field_name, text in self.fields:
            if field_name == name:
                return text
        raise KeyError(f"document {self.doc_id!r} has no field {name!r}")

    def weight(self, name: str) -> float:
        for field_name, weight in self.field_weights:
            if field_name == name:
                return weight
        return 1.0

    def meta(self, key: str, default: object = None) -> object:
        for meta_key, value in self.metadata:
            if meta_key == key:
                return value
        return default

    def full_text(self) -> str:
        """All field texts concatenated (field order is name-sorted)."""
        return " ".join(text for _, text in self.fields if text)

    def __len__(self) -> int:
        return len(self.full_text())

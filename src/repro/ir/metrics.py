"""Retrieval and agreement metrics used by the evaluation harness.

These are the standard definitions; ``majority_agreement`` reproduces the
paper's inter-rater statistic ("a third of the questions having an 80% or
higher majority for the winning answer").
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

__all__ = [
    "mean",
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "mean_reciprocal_rank",
    "dcg",
    "ndcg",
    "majority_agreement",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def precision_at_k(ranked: Sequence[str], relevant: set[str], k: int) -> float:
    """Fraction of the top-k that is relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    top = ranked[:k]
    if not top:
        return 0.0
    return sum(1 for doc_id in top if doc_id in relevant) / k


def recall_at_k(ranked: Sequence[str], relevant: set[str], k: int) -> float:
    """Fraction of relevant documents found in the top-k."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not relevant:
        return 0.0
    found = sum(1 for doc_id in ranked[:k] if doc_id in relevant)
    return found / len(relevant)


def average_precision(ranked: Sequence[str], relevant: set[str]) -> float:
    """AP: mean of precision at each relevant hit position."""
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, doc_id in enumerate(ranked, start=1):
        if doc_id in relevant:
            hits += 1
            precision_sum += hits / position
    return precision_sum / len(relevant)


def mean_reciprocal_rank(rankings: Sequence[Sequence[str]],
                         relevants: Sequence[set[str]]) -> float:
    """MRR over many (ranking, relevant-set) pairs."""
    if len(rankings) != len(relevants):
        raise ValueError("rankings and relevants must align")
    if not rankings:
        return 0.0
    total = 0.0
    for ranked, relevant in zip(rankings, relevants):
        for position, doc_id in enumerate(ranked, start=1):
            if doc_id in relevant:
                total += 1.0 / position
                break
    return total / len(rankings)


def dcg(gains: Sequence[float]) -> float:
    """Discounted cumulative gain with log2 position discount."""
    return sum(gain / math.log2(position + 1)
               for position, gain in enumerate(gains, start=1))


def ndcg(gains: Sequence[float], k: int | None = None) -> float:
    """Normalized DCG of a gain vector (ideal = sorted descending)."""
    trimmed = list(gains[:k] if k is not None else gains)
    ideal = sorted(gains, reverse=True)[:len(trimmed)]
    ideal_dcg = dcg(ideal)
    if ideal_dcg == 0:
        return 0.0
    return dcg(trimmed) / ideal_dcg


def majority_agreement(ratings: Sequence[object]) -> float:
    """Fraction of raters voting for the modal rating (1.0 = unanimous)."""
    if not ratings:
        raise ValueError("cannot compute agreement of zero ratings")
    counts = Counter(ratings)
    return counts.most_common(1)[0][1] / len(ratings)

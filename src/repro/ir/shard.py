"""Sharded retrieval: hash-partitioned snapshots scored in parallel.

:func:`shard_snapshot` splits one self-contained
:class:`~repro.ir.index.IndexSnapshot` into ``n`` smaller snapshots by
hashing doc_ids (stable CRC32, so the partition is identical across
processes and process restarts).  Each shard keeps only its partition's
documents, postings, and lengths, but carries the *collection-wide*
aggregates — document count, average/minimum document length, and per-term
document frequencies — so scoring a shard produces exactly the floats the
unsharded snapshot would for the same documents.  That makes the sharded
path rank-identical to the serial one: per-shard top-k lists merged with
:func:`~repro.ir.topk.merge_ranked` reproduce the global ranking,
tie-breaks included.

:class:`ShardedTopK` owns the shards plus an executor and serves one query
(:meth:`~ShardedTopK.topk`) or a whole batch (:meth:`~ShardedTopK.
topk_many`).  Batches are dispatched as *one task per shard* covering all
queries, so process-mode IPC is amortized across the batch.  Executor
choices:

``"serial"``
    Score shards in-process, one after another.  Zero overhead; useful for
    tests and as the degenerate case.
``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Safe everywhere
    (shares the shard objects), though CPython's GIL limits pure-Python
    speedups.
``"process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor`; workers receive
    the shard list once at pool start-up and keep their per-shard
    contribution caches warm across calls.  This is the mode that turns
    cores into latency on large collections.
"""

from __future__ import annotations

import zlib
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

from repro.ir.index import IndexSnapshot
from repro.ir.topk import merge_ranked, topk_scores

__all__ = ["shard_id", "shard_snapshot", "ShardedTopK", "PARALLELISM_MODES"]

PARALLELISM_MODES = ("serial", "thread", "process")


def shard_id(doc_id: str, shards: int) -> int:
    """The shard a document belongs to: stable across processes/restarts."""
    return zlib.crc32(doc_id.encode("utf-8")) % shards


def shard_snapshot(snapshot: IndexSnapshot, shards: int) -> list[IndexSnapshot]:
    """Partition ``snapshot`` into ``shards`` self-contained snapshots.

    Every document lands in exactly one shard (by :func:`shard_id`); the
    collection-wide statistics are replicated into each shard so per-shard
    scoring is float-identical to scoring the whole snapshot.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    assignments = {doc_id: shard_id(doc_id, shards)
                   for doc_id in snapshot._documents}
    documents: list[dict] = [{} for _ in range(shards)]
    doc_lengths: list[dict] = [{} for _ in range(shards)]
    postings: list[dict] = [{} for _ in range(shards)]
    for doc_id, document in snapshot._documents.items():
        shard = assignments[doc_id]
        documents[shard][doc_id] = document
        doc_lengths[shard][doc_id] = snapshot._doc_lengths[doc_id]
    for term, plist in snapshot._postings.items():
        buckets: list[list] = [[] for _ in range(shards)]
        for posting in plist:
            buckets[assignments[posting.doc_id]].append(posting)
        for shard, bucket in enumerate(buckets):
            if bucket:
                postings[shard][term] = tuple(bucket)
    return [
        IndexSnapshot(
            version=snapshot.version,
            analyzer=snapshot.analyzer,
            documents=documents[shard],
            postings=postings[shard],
            doc_lengths=doc_lengths[shard],
            doc_frequencies=snapshot._doc_frequencies,
            document_count=snapshot.document_count,
            average_document_length=snapshot.average_document_length,
            min_document_length=snapshot.min_document_length,
        )
        for shard in range(shards)
    ]


# Worker-process state: the shard list, installed once per worker by the
# pool initializer so per-call IPC carries only (scorer, terms, limit).
_WORKER_SHARDS: list[IndexSnapshot] = []


def _init_worker(shards: list[IndexSnapshot]) -> None:
    global _WORKER_SHARDS
    _WORKER_SHARDS = shards


def _score_shard_batch_worker(shard_index: int, scorer, term_lists, limit):
    shard = _WORKER_SHARDS[shard_index]
    return [topk_scores(shard, scorer, terms, limit) for terms in term_lists]


class ShardedTopK:
    """Parallel top-k over the shards of one frozen snapshot.

    Rank-identical to :func:`~repro.ir.topk.topk_scores` on the unsharded
    snapshot (property-tested).  The executor is created lazily on first
    use and shut down by :meth:`close` (also a context manager).  In
    process mode the scorer is pickled per call, so scorers must be
    picklable *and* should use value-based ``cache_key()`` (the built-ins
    do) — an identity-based key changes on every unpickle, defeating the
    workers' warm per-shard contribution caches.
    """

    def __init__(self, snapshot: IndexSnapshot, shards: int,
                 parallelism: str = "thread", max_workers: int | None = None):
        if parallelism not in PARALLELISM_MODES:
            raise ValueError(
                f"parallelism must be one of {PARALLELISM_MODES}, "
                f"got {parallelism!r}"
            )
        self.version = snapshot.version
        self.parallelism = parallelism
        self.shards = shard_snapshot(snapshot, shards)
        self.max_workers = max_workers or len(self.shards)
        self._executor: Executor | None = None

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.parallelism == "process":
                # Workers only score; shipping document-free views keeps
                # the per-worker pickle and memory cost to the statistics
                # (doc_ids resolve to documents in the parent).
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_init_worker,
                    initargs=([shard.scoring_view()
                               for shard in self.shards],),
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers)
        return self._executor

    def topk(self, scorer, terms: list[str],
             limit: int) -> list[tuple[str, float]]:
        """The global top-``limit`` ``(doc_id, score)`` list for one query."""
        return self.topk_many(scorer, [terms], limit)[0]

    def topk_many(self, scorer, term_lists: list[list[str]],
                  limit: int) -> list[list[tuple[str, float]]]:
        """Top-``limit`` lists for a batch of queries, in input order.

        One task per shard scores the whole batch, then per-query results
        are merged across shards.
        """
        if not term_lists:
            return []
        if self.parallelism == "serial":
            per_shard = [
                [topk_scores(shard, scorer, terms, limit)
                 for terms in term_lists]
                for shard in self.shards
            ]
        elif self.parallelism == "thread":
            executor = self._ensure_executor()
            futures = [
                executor.submit(
                    lambda shard=shard: [topk_scores(shard, scorer, terms, limit)
                                         for terms in term_lists])
                for shard in self.shards
            ]
            per_shard = [future.result() for future in futures]
        else:
            executor = self._ensure_executor()
            futures = [
                executor.submit(_score_shard_batch_worker, shard_index,
                                scorer, term_lists, limit)
                for shard_index in range(len(self.shards))
            ]
            per_shard = [future.result() for future in futures]
        return [
            merge_ranked([shard_results[query_index]
                          for shard_results in per_shard], limit)
            for query_index in range(len(term_lists))
        ]

    def close(self) -> None:
        """Shut down the executor (idempotent); shards stay usable."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ShardedTopK":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Sharded retrieval: hash-partitioned snapshots scored in parallel.

:func:`shard_snapshot` splits one self-contained
:class:`~repro.ir.index.IndexSnapshot` into ``n`` smaller snapshots by
hashing doc_ids (stable CRC32, so the partition is identical across
processes and process restarts).  Each shard keeps only its partition's
documents, postings, and lengths, but carries the *collection-wide*
aggregates — document count, average/minimum document length, and per-term
document frequencies — so scoring a shard produces exactly the floats the
unsharded snapshot would for the same documents.  That makes the sharded
path rank-identical to the serial one: per-shard top-k lists merged with
:func:`~repro.ir.topk.merge_ranked` reproduce the global ranking,
tie-breaks included.

:class:`ShardedTopK` owns the shards plus an executor and serves one query
(:meth:`~ShardedTopK.topk`) or a whole batch (:meth:`~ShardedTopK.
topk_many`).  Batches are dispatched as *one task per shard* covering the
queries routed to it, so process-mode IPC is amortized across the batch.
Executor choices:

``"serial"``
    Score shards in-process, one after another.  Zero overhead; useful for
    tests and as the degenerate case.
``"process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor`; workers receive
    the shard list once at pool start-up and keep their per-shard
    contribution caches warm across calls.  This is the mode that turns
    cores into latency on large collections.

These two are the whole menu: in-process scoring is serial by
construction (CPython's GIL means threads add overhead, not speed, to
this pure-Python scoring path), and anything else gets real processes.

Bloom routing
-------------

Each shard carries a :class:`TermBloomFilter` over its own vocabulary.  A
query can only score documents in a shard if at least one query term has
postings there, so :meth:`ShardedTopK.topk_many` routes each query only to
shards whose filter *might* contain one of its terms — shards where no
query of the batch matches are skipped entirely.  Bloom filters have no
false negatives, so routing is rank-identical to broadcasting (a skipped
shard would have contributed an empty list); false positives cost only
wasted work.  Routing statistics accumulate in
:attr:`ShardedTopK.routing_stats`.

Shard snapshots can themselves be persisted (one version-2 file per shard
with its Bloom filter in the header — see :mod:`repro.ir.persist` and
:meth:`~repro.core.store.CollectionStore.save`), and a multi-process
server can load only its partition; :meth:`ShardedTopK.from_shards`
rebuilds the executor over pre-partitioned shards without re-sharding.
"""

from __future__ import annotations

import base64
import hashlib
import math
import os
import zlib
from collections.abc import Iterable
from concurrent.futures import Executor, ProcessPoolExecutor

from repro.ir.index import IndexSnapshot
from repro.ir.topk import merge_ranked
from repro.ir.wand import retrieve

__all__ = ["shard_id", "shard_snapshot", "ShardedTopK", "TermBloomFilter",
           "PARALLELISM_MODES"]

PARALLELISM_MODES = ("serial", "process")


def shard_id(doc_id: str, shards: int) -> int:
    """The shard a document belongs to: stable across processes/restarts."""
    return zlib.crc32(doc_id.encode("utf-8")) % shards


def shard_snapshot(snapshot: IndexSnapshot, shards: int) -> list[IndexSnapshot]:
    """Partition ``snapshot`` into ``shards`` self-contained snapshots.

    Every document lands in exactly one shard (by :func:`shard_id`); the
    collection-wide statistics are replicated into each shard so per-shard
    scoring is float-identical to scoring the whole snapshot.

    Raises:
        ValueError: when ``shards`` < 1.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    assignments = {doc_id: shard_id(doc_id, shards)
                   for doc_id in snapshot._documents}
    documents: list[dict] = [{} for _ in range(shards)]
    doc_lengths: list[dict] = [{} for _ in range(shards)]
    postings: list[dict] = [{} for _ in range(shards)]
    for doc_id, document in snapshot._documents.items():
        shard = assignments[doc_id]
        documents[shard][doc_id] = document
        doc_lengths[shard][doc_id] = snapshot._doc_lengths[doc_id]
    for term, plist in snapshot._postings.items():
        buckets: list[list] = [[] for _ in range(shards)]
        for posting in plist:
            buckets[assignments[posting.doc_id]].append(posting)
        for shard, bucket in enumerate(buckets):
            if bucket:
                postings[shard][term] = tuple(bucket)
    return [
        IndexSnapshot(
            version=snapshot.version,
            analyzer=snapshot.analyzer,
            documents=documents[shard],
            postings=postings[shard],
            doc_lengths=doc_lengths[shard],
            doc_frequencies=snapshot._doc_frequencies,
            document_count=snapshot.document_count,
            average_document_length=snapshot.average_document_length,
            min_document_length=snapshot.min_document_length,
        )
        for shard in range(shards)
    ]


class TermBloomFilter:
    """A Bloom filter over a shard's vocabulary, used for query routing.

    Membership answers are one-sided: ``term in bloom`` is always ``True``
    for terms that were added (no false negatives), and ``False`` for most
    others (false positives at roughly the configured rate).  Routing on
    it is therefore exact — a shard skipped because *no* query term might
    be present truly has no matching postings — while a false positive
    merely ships a query to a shard that returns nothing.

    Filters are cheap to build (one pass over the vocabulary), picklable,
    and serialize to a small JSON-safe dict (:meth:`to_dict`) persisted in
    shard snapshot headers so a router can read them without parsing
    postings.
    """

    __slots__ = ("bits", "hashes", "_data")

    def __init__(self, bits: int, hashes: int, data: bytes | None = None):
        """A filter with ``bits`` bit positions and ``hashes`` probes.

        Args:
            bits: size of the bit array (>= 1).
            hashes: probes per term (>= 1).
            data: optional packed bit array (``(bits + 7) // 8`` bytes),
                e.g. from a persisted filter; zeroed when omitted.

        Raises:
            ValueError: on non-positive sizes or a mis-sized ``data``.
        """
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        if hashes < 1:
            raise ValueError(f"hashes must be >= 1, got {hashes}")
        size = (bits + 7) // 8
        self.bits = bits
        self.hashes = hashes
        self._data = bytearray(data) if data is not None else bytearray(size)
        if len(self._data) != size:
            raise ValueError(
                f"data must be {size} bytes for {bits} bits, "
                f"got {len(self._data)}"
            )

    @classmethod
    def build(cls, terms: Iterable[str],
              false_positive_rate: float = 0.01) -> "TermBloomFilter":
        """A filter sized for ``terms`` at ``false_positive_rate``.

        Uses the standard optimal sizing: ``m = -n ln(p) / (ln 2)^2`` bits
        and ``k = (m / n) ln 2`` probes.  An empty vocabulary yields a
        minimal filter that matches nothing.
        """
        terms = list(terms)
        n = max(1, len(terms))
        ln2 = math.log(2)
        bits = max(8, math.ceil(-n * math.log(false_positive_rate)
                                / (ln2 * ln2)))
        hashes = max(1, round(bits / n * ln2))
        bloom = cls(bits, hashes)
        for term in terms:
            bloom.add(term)
        return bloom

    @staticmethod
    def hash_term(term: str) -> tuple[int, int]:
        """The ``(h1, h2)`` double-hashing pair for ``term`` (one blake2b
        digest — deterministic across processes/restarts).  Hash once,
        probe many filters: routers reuse the pair across every shard's
        filter via :meth:`contains_hash`."""
        digest = hashlib.blake2b(term.encode("utf-8"),
                                 digest_size=16).digest()
        return (int.from_bytes(digest[:8], "big"),
                int.from_bytes(digest[8:], "big") | 1)

    def _positions(self, term: str):
        h1, h2 = self.hash_term(term)
        bits = self.bits
        for i in range(self.hashes):
            yield (h1 + i * h2) % bits

    def add(self, term: str) -> None:
        """Set the bit positions for ``term``."""
        data = self._data
        for position in self._positions(term):
            data[position >> 3] |= 1 << (position & 7)

    def __contains__(self, term: str) -> bool:
        return self.contains_hash(*self.hash_term(term))

    def contains_hash(self, h1: int, h2: int) -> bool:
        """Membership test from a precomputed :meth:`hash_term` pair."""
        data = self._data
        bits = self.bits
        for i in range(self.hashes):
            position = (h1 + i * h2) % bits
            if not data[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def might_match_any(self, terms: Iterable[str]) -> bool:
        """Whether any of ``terms`` might be present (the routing test:
        ``False`` proves the shard has no postings for the query)."""
        return any(term in self for term in terms)

    def to_dict(self) -> dict:
        """A JSON-safe representation (bit array base64-encoded);
        inverse of :meth:`from_dict`."""
        return {
            "bits": self.bits,
            "hashes": self.hashes,
            "data": base64.b64encode(bytes(self._data)).decode("ascii"),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TermBloomFilter":
        """Rebuild a filter serialized by :meth:`to_dict`.

        Raises:
            ValueError: on malformed/mis-sized input.
        """
        try:
            raw = base64.b64decode(data["data"])
            return cls(data["bits"], data["hashes"], raw)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed bloom filter data: {exc}") from exc


# Worker-process state: the shard list, installed once per worker by the
# pool initializer so per-call IPC carries only (scorer, terms, limit).
_WORKER_SHARDS: list[IndexSnapshot] = []


def _init_worker(entries: list[tuple[str, object]]) -> None:
    """Install the worker's shard list from tagged entries.

    ``("path", str)`` entries mmap the shard's columnar container in the
    worker (``open_scoring_snapshot``) — every worker then shares one OS
    page cache for that file instead of holding a pickled private heap
    copy.  ``("snap", IndexSnapshot)`` entries are pre-pickled scoring
    views, the fallback for shards with no on-disk container.
    """
    from repro.ir.persist import open_scoring_snapshot

    global _WORKER_SHARDS
    _WORKER_SHARDS = [
        open_scoring_snapshot(payload) if kind == "path" else payload
        for kind, payload in entries
    ]


def _score_shard_batch_worker(shard_index: int, scorer, term_lists, limit,
                              strategy):
    shard = _WORKER_SHARDS[shard_index]
    return [retrieve(shard, scorer, terms, limit, strategy)
            for terms in term_lists]


class ShardedTopK:
    """Parallel top-k over the shards of one frozen snapshot.

    Rank-identical to :func:`~repro.ir.topk.topk_scores` on the unsharded
    snapshot (property-tested), with or without Bloom routing, under every
    retrieval strategy (:meth:`topk`/:meth:`topk_many` take a
    ``strategy`` — maxscore, WAND, block-max, or per-query ``auto``; see
    :mod:`repro.ir.wand`).  The
    executor is created lazily on first use and shut down by :meth:`close`
    (also a context manager).  In process mode the scorer is pickled per
    call, so scorers must be picklable *and* should use value-based
    ``cache_key()`` (the built-ins do) — an identity-based key changes on
    every unpickle, defeating the workers' warm per-shard contribution
    caches.
    """

    def __init__(self, snapshot: IndexSnapshot, shards: int,
                 parallelism: str = "serial", max_workers: int | None = None,
                 route: bool = True):
        """Partition ``snapshot`` into ``shards`` and serve top-k over them.

        Args:
            snapshot: the frozen snapshot to partition.
            shards: partition count (>= 1).
            parallelism: one of :data:`PARALLELISM_MODES`.
            max_workers: executor size (defaults to the shard count).
            route: skip shards whose Bloom filter rules out every query
                term (identical results; less work).

        Raises:
            ValueError: on an unknown ``parallelism`` or ``shards`` < 1.
        """
        self._setup(shard_snapshot(snapshot, shards), snapshot.version,
                    parallelism, max_workers, None, route)

    @classmethod
    def from_shards(cls, shards: list[IndexSnapshot],
                    parallelism: str = "serial",
                    max_workers: int | None = None,
                    blooms: list[TermBloomFilter] | None = None,
                    route: bool = True) -> "ShardedTopK":
        """Serve top-k over *pre-partitioned* shard snapshots.

        This is the multi-process-server entry point: shard snapshots
        persisted individually (see :meth:`~repro.core.collection.
        CollectionStore.save`) are loaded — each process only its own
        partition, or a router all of them — and handed here without
        re-sharding.  ``blooms`` (e.g. restored from the shard files'
        headers) are rebuilt from the shard vocabularies when omitted.

        Raises:
            ValueError: on an empty shard list, mismatched shard versions,
                a ``blooms`` list of the wrong length, or an unknown
                ``parallelism``.
        """
        if not shards:
            raise ValueError("at least one shard snapshot is required")
        versions = {shard.version for shard in shards}
        if len(versions) > 1:
            raise ValueError(
                f"shard snapshots disagree on index version: "
                f"{sorted(versions)}"
            )
        self = cls.__new__(cls)
        self._setup(list(shards), shards[0].version, parallelism,
                    max_workers, blooms, route)
        return self

    def _setup(self, shards: list[IndexSnapshot], version: int,
               parallelism: str, max_workers: int | None,
               blooms: list[TermBloomFilter] | None, route: bool) -> None:
        if parallelism not in PARALLELISM_MODES:
            raise ValueError(
                f"parallelism must be one of {PARALLELISM_MODES}, "
                f"got {parallelism!r}"
            )
        self.version = version
        self.parallelism = parallelism
        self.shards = shards
        self.max_workers = max_workers or len(self.shards)
        self.route = route
        if blooms is None:
            blooms = [TermBloomFilter.build(shard.terms())
                      for shard in shards]
        if len(blooms) != len(shards):
            raise ValueError(
                f"expected {len(shards)} bloom filters, got {len(blooms)}")
        self.blooms = blooms
        #: Cumulative routing effectiveness: how many (shard, batch) tasks
        #: and (shard, query) pairs Bloom routing skipped.
        self.routing_stats = {
            "batches": 0,
            "shard_tasks": 0,
            "shard_tasks_skipped": 0,
            "query_pairs": 0,
            "query_pairs_skipped": 0,
        }
        self._executor: Executor | None = None

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            # Workers only score.  Shards backed by an on-disk v3
            # container ship as a path and are mmap'd in the worker
            # (shared page cache, near-zero pickle cost); the rest
            # ship as document-free scoring views so the per-worker
            # pickle and memory cost is just the statistics (doc_ids
            # resolve to documents in the parent).
            entries: list[tuple[str, object]] = []
            for shard in self.shards:
                mmap_path = getattr(shard, "mmap_path", None)
                if mmap_path is not None and os.path.exists(mmap_path):
                    entries.append(("path", os.fspath(mmap_path)))
                else:
                    entries.append(("snap", shard.scoring_view()))
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=(entries,),
            )
        return self._executor

    def topk(self, scorer, terms: list[str], limit: int,
             strategy: str = "auto") -> list[tuple[str, float]]:
        """The global top-``limit`` ``(doc_id, score)`` list for one query."""
        return self.topk_many(scorer, [terms], limit, strategy)[0]

    def topk_many(self, scorer, term_lists: list[list[str]],
                  limit: int,
                  strategy: str = "auto") -> list[list[tuple[str, float]]]:
        """Top-``limit`` lists for a batch of queries, in input order.

        One task per shard scores the queries routed to that shard
        (Bloom-filtered unless ``route=False``), then per-query results
        are merged across the shards that ran them.  ``strategy`` picks
        the per-shard retrieval algorithm (see :mod:`repro.ir.wand`); it
        ships to the workers unresolved, so ``"auto"`` resolves per query
        inside each shard task — results are identical either way.
        """
        if not term_lists:
            return []
        n_queries = len(term_lists)
        n_shards = len(self.shards)
        if self.route:
            # Hash each distinct term once, then probe every shard's
            # filter with the precomputed pair — routing cost is one
            # digest per term plus cheap arithmetic per (term, shard).
            hashed: dict[str, tuple[int, int]] = {}
            for terms in term_lists:
                for term in terms:
                    if term not in hashed:
                        hashed[term] = TermBloomFilter.hash_term(term)
            plans = [
                [i for i, terms in enumerate(term_lists)
                 if any(bloom.contains_hash(*hashed[term])
                        for term in terms)]
                for bloom in self.blooms
            ]
        else:
            plans = [list(range(n_queries)) for _ in range(n_shards)]
        stats = self.routing_stats
        stats["batches"] += 1
        stats["shard_tasks"] += n_shards
        stats["shard_tasks_skipped"] += sum(1 for plan in plans if not plan)
        stats["query_pairs"] += n_shards * n_queries
        stats["query_pairs_skipped"] += \
            n_shards * n_queries - sum(len(plan) for plan in plans)

        tasks = [(shard_index, plan)
                 for shard_index, plan in enumerate(plans) if plan]
        if self.parallelism == "serial":
            results = [
                [retrieve(self.shards[shard_index], scorer,
                          term_lists[i], limit, strategy) for i in plan]
                for shard_index, plan in tasks
            ]
        else:
            executor = self._ensure_executor()
            futures = [
                executor.submit(_score_shard_batch_worker, shard_index,
                                scorer, [term_lists[i] for i in plan], limit,
                                strategy)
                for shard_index, plan in tasks
            ]
            results = [future.result() for future in futures]

        per_query: list[list[list[tuple[str, float]]]] = \
            [[] for _ in range(n_queries)]
        for (shard_index, plan), shard_results in zip(tasks, results):
            for i, ranked in zip(plan, shard_results):
                per_query[i].append(ranked)
        return [merge_ranked(lists, limit) for lists in per_query]

    def close(self) -> None:
        """Shut down the executor (idempotent); shards stay usable."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ShardedTopK":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

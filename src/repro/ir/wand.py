"""Document-at-a-time WAND and block-max retrieval.

:func:`~repro.ir.topk.topk_scores` prunes *term-at-a-time*: it walks every
posting of every query term and merely stops admitting new candidates once
the remaining terms cannot lift an unseen document into the top k.  WAND
(Broder et al., "Efficient query evaluation using a two-level retrieval
process") prunes *document-at-a-time*: posting cursors — one per query
term, over the :class:`~repro.ir.index.IndexSnapshot`'s doc_id-sorted
postings — advance together through doc_id order, and whole posting
ranges are skipped with a binary-search :meth:`PostingCursor.seek`
whenever the per-term upper bounds prove no document in the range can
enter the top k.  On long queries whose selective terms drive the
threshold up quickly, that skipping is the next integer factor over the
term-at-a-time path.

The algorithm, per round:

1. sort the active cursors by their current doc_id;
2. **pivot selection** — walk cursors in that order accumulating their
   max-score bounds; the first cursor at which the finalized ceiling
   reaches the current k-th best score marks the *pivot document*: no
   document before it can make the top k (cursors past the pivot sit on
   later doc_ids, and the bounds of cursors before it were just shown to
   ceiling strictly below the threshold);
3. if the smallest cursor already sits on the pivot, the pivot document
   is **fully scored** (see *Float exactness* below) and offered to the
   bounded heap; otherwise every cursor before the pivot ``seek``\\ s to
   it, skipping its intervening postings outright.

With block-max enabled the candidate check is refined by **block-max
bounds**: each term's contribution array is cut into blocks with a
per-block score cap, cached lazily per (scorer, term) on the snapshot
(:meth:`~repro.ir.index.IndexSnapshot.term_block_bounds`) and
version-invalidated exactly like the contribution caches — a new
snapshot after any :meth:`~repro.ir.index.InvertedIndex.add` starts
empty.  Block sizes are *per term*: ``"blockmax"`` derives each term's
size from its postings-list length (:func:`term_block_size`, ~sqrt of
the list length), so short lists get tight caps and long lists do not
drown in block bookkeeping; column-backed snapshots
(:class:`~repro.ir.index.ColumnarIndexSnapshot`) load these bounds
from persisted v3 columns instead of recomputing them.  A pivot whose
*block* caps already ceiling strictly below the threshold is skipped
without touching its contributions.

Float exactness
---------------

Term order changes float sums, so a naive sorted-by-bound accumulation
would drift from the exhaustive path in the last ulp and break the
repo-wide rank-identity invariant.  WAND here therefore separates
*traversal* order from *accumulation* order: cursors move in bound-driven
document-at-a-time order, but when a document is actually scored its
contributions are summed in canonical **query-term order** — the same
order :func:`~repro.ir.topk.topk_scores` and the exhaustive scorers use.
The result is *float-exact* rank-and-score identity with both (property-
tested in ``tests/test_property_based.py``), ``(-score, doc_id)``
tie-breaks included; pruning uses the same strict-inequality rule as
:mod:`repro.ir.topk` (only a ceiling *strictly below* the threshold may
be skipped, since an equal-scoring document could still win the doc_id
tie-break).

Strategy selection
------------------

:func:`retrieve` is the single dispatch point the
:class:`~repro.ir.retrieval.Searcher`, :class:`~repro.ir.shard.
ShardedTopK` (all three executors), and the CLI ``--strategy`` flag all
go through.  ``"auto"`` resolves per query with a **df-skew cost model**
(:func:`resolve_strategy`): term-at-a-time max-score for short queries
(its per-posting loop is a tight C-level ``zip``), WAND from
:data:`AUTO_WAND_MIN_TERMS` query terms up, where bound-sorted skipping
amortizes the per-document Python overhead — *and* WAND already at
:data:`AUTO_SKEW_MIN_TERMS` terms when the query's document frequencies
are skewed enough (a rare term driving the top-k threshold up next to a
common term whose long postings can be seek-skipped wholesale; the
regime where document-at-a-time pruning wins biggest).  Shard snapshots
carry collection-wide document frequencies, so the model resolves
identically inside every shard worker; and since every strategy returns
identical rankings, the cost model can only ever change *speed*, never
results.  See ``docs/ARCHITECTURE.md`` ("Choosing a retrieval
strategy") for the walkthrough and
``benchmarks/results/BENCH_wand.json`` for measurements.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from operator import attrgetter

from repro.ir.index import IndexSnapshot
from repro.ir.scoring import Scorer
from repro.ir.topk import TopKHeap, topk_scores

__all__ = [
    "STRATEGIES",
    "DEFAULT_BLOCK_SIZE",
    "MIN_BLOCK_SIZE",
    "MAX_BLOCK_SIZE",
    "AUTO_WAND_MIN_TERMS",
    "AUTO_SKEW_MIN_TERMS",
    "AUTO_SKEW_RATIO",
    "AUTO_SKEW_MIN_DF",
    "PostingCursor",
    "resolve_strategy",
    "term_block_size",
    "retrieve",
    "wand_scores",
]

#: Retrieval strategies understood by :func:`retrieve` (and everything
#: that forwards to it: ``Searcher``, ``ShardedTopK``, the CLI).
#: ``"hybrid"`` is special: its rank fusion lives in
#: :class:`~repro.ir.retrieval.Searcher` (which owns the vector side);
#: at this snapshot level :func:`retrieve` executes only its *lexical
#: component*, resolved as ``"auto"``.
STRATEGIES = ("auto", "maxscore", "wand", "blockmax", "hybrid")

#: Historical fixed block size, kept for callers that pin one explicitly;
#: the ``"blockmax"`` strategy now sizes blocks per term with
#: :func:`term_block_size`.
DEFAULT_BLOCK_SIZE = 64

#: Smallest per-term block size :func:`term_block_size` hands out —
#: below this, per-block bookkeeping costs more than the skipped sums.
MIN_BLOCK_SIZE = 8

#: Largest per-term block size — past this, a block spans so many
#: postings that its cap degenerates toward the term's global bound.
MAX_BLOCK_SIZE = 256

#: ``"auto"`` switches from term-at-a-time max-score to WAND at this many
#: query terms: below it, whole-postings ``zip`` loops beat per-document
#: pivoting; at it and above, bound-driven skipping wins (measured in
#: ``BENCH_wand.json``).
AUTO_WAND_MIN_TERMS = 4

#: With snapshot statistics available, the df-skew cost model considers
#: WAND from this many query terms (below :data:`AUTO_WAND_MIN_TERMS`,
#: where the length-only rule alone would keep max-score).
AUTO_SKEW_MIN_TERMS = 2

#: Minimum (most common df) / (rarest df) ratio, over the query terms
#: that match at all, before a short query counts as rare-term-driven:
#: the rare term drives the top-k threshold up quickly while the common
#: term's postings are long enough for ``seek`` skipping to pay.
AUTO_SKEW_RATIO = 8.0

#: The most common query term must have at least this many postings for
#: skew routing to trigger — skipping ranges of a short postings list
#: cannot beat max-score's tight per-posting loop.
AUTO_SKEW_MIN_DF = 64


class PostingCursor:
    """One query term's position in its doc_id-sorted contribution arrays.

    ``order`` is the term's position *in the query*, kept so a scored
    document's contributions can be re-sorted into canonical query-term
    order (the float-exactness trick of the module docstring).  ``doc``
    mirrors ``doc_ids[position]`` so the hot loop reads an attribute
    instead of indexing.
    """

    __slots__ = ("order", "doc_ids", "contributions", "bound", "blocks",
                 "block_size", "length", "position", "doc")

    def __init__(self, order: int, doc_ids, contributions, bound: float,
                 blocks=None, block_size: int = 0):
        """A cursor at the first posting of one term's arrays.

        Args:
            order: the term's position in the query (canonical sum order).
            doc_ids: doc_id-sorted document ids (non-empty).
            contributions: scores aligned with ``doc_ids``.
            bound: the term's max-score upper bound.
            blocks: optional per-block contribution caps
                (:meth:`~repro.ir.index.IndexSnapshot.term_block_bounds`).
            block_size: postings per block (0 = no block refinement).
        """
        self.order = order
        self.doc_ids = doc_ids
        self.contributions = contributions
        self.bound = bound
        self.blocks = blocks
        self.block_size = block_size
        self.length = len(doc_ids)
        self.position = 0
        self.doc = doc_ids[0]

    def __len__(self) -> int:
        return self.length - self.position

    @property
    def exhausted(self) -> bool:
        """Whether the cursor has moved past its last posting."""
        return self.position >= self.length

    @property
    def contribution(self) -> float:
        """The contribution at the current position."""
        return self.contributions[self.position]

    def block_bound(self) -> float:
        """The cap of the block containing the current position (the
        term's global ``bound`` when the cursor has no block caps)."""
        if self.blocks is None:
            return self.bound
        return self.blocks[self.position // self.block_size]

    def advance(self) -> bool:
        """Move to the next posting; ``False`` once exhausted."""
        position = self.position + 1
        self.position = position
        if position >= self.length:
            return False
        self.doc = self.doc_ids[position]
        return True

    def seek(self, doc_id: str) -> bool:
        """Skip forward to the first posting with doc_id >= ``doc_id``
        (binary search from the current position — never backwards);
        ``False`` once exhausted."""
        position = bisect_left(self.doc_ids, doc_id, self.position)
        self.position = position
        if position >= self.length:
            return False
        self.doc = self.doc_ids[position]
        return True


def resolve_strategy(strategy: str, terms: list[str],
                     snapshot: IndexSnapshot | None = None) -> str:
    """The concrete strategy ``"auto"`` picks for ``terms``.

    Query length is the first signal: short queries stay on the
    term-at-a-time max-score path, queries with
    :data:`AUTO_WAND_MIN_TERMS` or more terms go document-at-a-time
    (see the module docstring for why).  With ``snapshot`` statistics
    available the **df-skew cost model** refines the short-query side:
    a query of :data:`AUTO_SKEW_MIN_TERMS`+ terms whose document
    frequencies are skewed — rarest vs most common df at least
    :data:`AUTO_SKEW_RATIO` apart, the common term carrying at least
    :data:`AUTO_SKEW_MIN_DF` postings — is rare-term-driven and routes
    to WAND early.  Resolution is deterministic for a given snapshot,
    and every lexical strategy is rank-identical, so the model only
    affects speed.  ``"hybrid"`` — like every non-``"auto"`` strategy —
    passes through unchanged: the rank-fusion step lives in
    :class:`~repro.ir.retrieval.Searcher`, and only there (fusion
    *changes* rankings, so it must not be chosen implicitly).

    Raises:
        ValueError: on a strategy not in :data:`STRATEGIES`.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if strategy != "auto":
        return strategy
    if len(terms) >= AUTO_WAND_MIN_TERMS:
        return "wand"
    if snapshot is not None and len(terms) >= AUTO_SKEW_MIN_TERMS:
        frequencies = sorted(
            df for df in (snapshot.document_frequency(term)
                          for term in set(terms))
            if df > 0
        )
        if (len(frequencies) >= 2
                and frequencies[-1] >= AUTO_SKEW_MIN_DF
                and frequencies[-1] >= AUTO_SKEW_RATIO * frequencies[0]):
            return "wand"
    return "maxscore"


def term_block_size(n_postings: int) -> int:
    """The block-max block size for a postings list of ``n_postings``.

    The per-block cap of a block of ``s`` postings prunes at granularity
    ``s`` but costs one extra float comparison per candidate; balancing
    the two gives ``s ~ sqrt(n)``.  The result is the smallest power of
    two at or above ``isqrt(n_postings)``, clamped to
    [:data:`MIN_BLOCK_SIZE`, :data:`MAX_BLOCK_SIZE`] — powers of two so
    persisted block-bound columns line up across equal-length lists.
    Deterministic in ``n_postings`` alone, so the size computed at save
    time (persisted v3 block columns) always matches the size requested
    at query time.
    """
    root = math.isqrt(max(n_postings, 0))
    size = MIN_BLOCK_SIZE
    while size < root and size < MAX_BLOCK_SIZE:
        size *= 2
    return size


def retrieve(snapshot: IndexSnapshot, scorer, terms: list[str], limit: int,
             strategy: str = "auto") -> list[tuple[str, float]]:
    """The ``limit`` best ``(doc_id, score)`` pairs for ``terms`` under
    ``strategy`` — the strategy dispatch point.

    Every lexical strategy returns the *identical* ranked list (scores
    float-exact, ``(-score, doc_id)`` tie-breaks included); they differ
    only in how much work they skip.  ``"hybrid"`` executes its lexical
    component here, resolved as ``"auto"`` — the vector side and the
    rank-fusion step live in :class:`~repro.ir.retrieval.Searcher`,
    which owns the vector index; shard workers calling this function
    therefore return fusable per-shard *lexical* rankings.  ``scorer``
    must support the fast-path hooks (see :mod:`repro.ir.scoring`).

    Raises:
        ValueError: on a strategy not in :data:`STRATEGIES`.
    """
    resolved = resolve_strategy(strategy, terms, snapshot)
    if resolved == "hybrid":
        resolved = resolve_strategy("auto", terms, snapshot)
    if resolved == "maxscore":
        return topk_scores(snapshot, scorer, terms, limit)
    block_size = None if resolved == "blockmax" else 0
    return wand_scores(snapshot, scorer, terms, limit, block_size=block_size)


def wand_scores(snapshot: IndexSnapshot, scorer, terms: list[str],
                limit: int,
                block_size: int | None = 0) -> list[tuple[str, float]]:
    """Document-at-a-time WAND top-``limit`` retrieval.

    Rank- and score-identical to :func:`~repro.ir.topk.topk_scores` and to
    exhaustive scoring (see the module docstring for the argument).  With
    block-max enabled, candidates are additionally screened against
    per-block contribution caps before their contributions are touched.

    Args:
        snapshot: the frozen index to score against.
        scorer: a scorer with fast-path hooks (:mod:`repro.ir.scoring`).
        terms: analyzed query terms, in query order.
        limit: how many results to return.
        block_size: postings per block-max block.  ``None`` (what
            ``strategy="blockmax"`` passes) sizes blocks *per term* from
            each postings list's length (:func:`term_block_size` — the
            sizes persisted v3 block-bound columns were computed with);
            ``0`` disables block caps (plain WAND); a positive value
            pins one fixed size for every term.

    Raises:
        ValueError: on a negative ``block_size``.
    """
    if block_size is not None and block_size < 0:
        raise ValueError(f"block_size must be non-negative, got {block_size}")
    if limit <= 0 or snapshot.document_count == 0:
        return []
    use_blocks = block_size is None or block_size > 0
    cursors = []
    for order, term in enumerate(terms):
        plan = snapshot.term_contributions(scorer, term)
        if not plan.doc_ids:
            continue
        size = (term_block_size(len(plan.doc_ids)) if block_size is None
                else block_size)
        blocks = (snapshot.term_block_bounds(scorer, term, size)
                  if size else None)
        cursors.append(PostingCursor(order, plan.doc_ids, plan.contributions,
                                     plan.bound, blocks, size))
    if not cursors:
        return []

    heap = TopKHeap(limit)
    offer = heap.offer
    finalize = scorer.finalize
    ceiling = scorer.ceiling
    prune_bound = scorer.prune_bound
    # Hot-loop fast paths: skip the finalize call when the scorer never
    # overrides it (raw scores *are* final, e.g. BM25), and compare bound
    # sums directly in raw space when the scorer can invert its ceiling
    # (prune_bound) instead of calling ceiling once per cursor prefix.
    plain_finalize = type(scorer).finalize is Scorer.finalize
    #: raw-space pruning threshold — valid only while ``threshold`` is
    #: set; ``None`` means the scorer has no inverse and the generic
    #: per-prefix ceiling scan runs instead.
    raw_threshold: float | None = None
    threshold: float | None = None
    #: doc_id of the k-th best hit, tracked alongside ``threshold`` so an
    #: equal-scoring candidate's (-score, doc_id) tie-break resolves
    #: without touching the heap.
    worst_doc = ""
    active = cursors
    by_doc = _BY_DOC
    while active:
        n_active = len(active)
        if n_active < 3:
            # Endgame: long queries spend most of their rounds here, after
            # the selective terms exhaust — one cursor degenerates to a
            # linear scan, two to a specialized pair loop; both shed the
            # general loop's sorting and list rebuilding.
            if n_active == 1:
                _drain_single(active[0], snapshot, scorer, heap, threshold,
                              raw_threshold, worst_doc, plain_finalize)
            else:
                _drain_pair(active[0], active[1], snapshot, scorer, heap,
                            threshold, raw_threshold, worst_doc,
                            plain_finalize, use_blocks)
            break
        # (falls through to the general pivot round below)
        active.sort(key=by_doc)
        if threshold is None:
            # Heap not yet full: every document must be scored, so the
            # pivot is simply the smallest current doc_id.
            pivot_index = 0
        else:
            # Pivot selection: the first cursor (in doc_id order) at which
            # the accumulated bounds could finalize to >= the k-th best.
            # Equality must still evaluate — an equal-scoring document can
            # win the (-score, doc_id) tie-break (same strictness rule as
            # topk_scores).
            acc = 0.0
            pivot_index = -1
            if raw_threshold is not None:
                for i, cursor in enumerate(active):
                    acc += cursor.bound
                    if acc >= raw_threshold:
                        pivot_index = i
                        break
            else:
                for i, cursor in enumerate(active):
                    acc += cursor.bound
                    if ceiling(snapshot, acc) >= threshold:
                        pivot_index = i
                        break
            if pivot_index < 0:
                # Even all remaining terms together ceiling strictly below
                # the k-th best: no unseen document can enter or tie in.
                break
        pivot_doc = active[pivot_index].doc
        first = active[0]
        if first.doc == pivot_doc:
            # Candidate: every cursor sitting on the pivot forms a prefix
            # of the doc_id-sorted cursor list (cursors are sorted and
            # active[pivot_index] is also on it).
            end = pivot_index + 1
            n = len(active)
            while end < n and active[end].doc == pivot_doc:
                end += 1
            if end <= 2 and end < n:
                # Bounded sub-drain: every document below the next
                # cursor's doc lives only in these 1-2 cursors, so the
                # whole stretch is a closed subproblem the specialized
                # drains chew through without per-document sorting.
                limit_doc = active[end].doc
                if end == 1:
                    threshold, raw_threshold, worst_doc = _drain_single(
                        first, snapshot, scorer, heap, threshold,
                        raw_threshold, worst_doc, plain_finalize, limit_doc)
                else:
                    threshold, raw_threshold, worst_doc = _drain_pair(
                        first, active[1], snapshot, scorer, heap, threshold,
                        raw_threshold, worst_doc, plain_finalize,
                        use_blocks, limit_doc)
                if any(cursor.position >= cursor.length
                       for cursor in active[:end]):
                    active = [cursor for cursor in active
                              if cursor.position < cursor.length]
                continue
            at_pivot = active[:end]
            evaluate = True
            if use_blocks and threshold is not None:
                # Block-max refinement: the caps of the blocks the pivot
                # actually lives in are far tighter than the global
                # bounds; if even they ceiling strictly below the
                # threshold, skip the document without summing anything.
                cap = 0.0
                for cursor in at_pivot:
                    blocks = cursor.blocks
                    cap += (cursor.bound if blocks is None
                            else blocks[cursor.position // cursor.block_size])
                if raw_threshold is not None:
                    evaluate = cap >= raw_threshold
                else:
                    evaluate = ceiling(snapshot, cap) >= threshold
            if evaluate:
                # Full evaluation — accumulate in canonical query-term
                # order so the float sum is bit-identical to the
                # term-at-a-time and exhaustive paths.
                if end == 1:
                    raw = first.contributions[first.position]
                else:
                    at_pivot.sort(key=_BY_ORDER)
                    raw = 0.0
                    for cursor in at_pivot:
                        raw += cursor.contributions[cursor.position]
                score = (raw if plain_finalize
                         else finalize(snapshot, pivot_doc, raw))
                # Touch the heap only when the hit actually lands in it:
                # (threshold, worst_doc) mirror heap.worst(), so losing
                # scores (and losing tie-breaks) are rejected with plain
                # comparisons.
                if threshold is None or score > threshold or (
                        score == threshold and pivot_doc < worst_doc):
                    offer(pivot_doc, score)
                    if heap.full:
                        worst_score, worst_doc = heap.worst()
                        if worst_score != threshold:
                            threshold = worst_score
                            raw_threshold = prune_bound(snapshot, threshold)
            survivors = [cursor for cursor in at_pivot if cursor.advance()]
            if end < n:
                survivors.extend(active[end:])
            active = survivors
        else:
            # Every document before the pivot ceilings strictly below the
            # threshold (shown cursor-prefix by cursor-prefix during pivot
            # selection): skip whole posting ranges by seeking every
            # pre-pivot cursor directly to the pivot document.
            survivors = []
            for cursor in active:
                if cursor.doc >= pivot_doc or cursor.seek(pivot_doc):
                    survivors.append(cursor)
            active = survivors
    return heap.ranked()


def _drain_pair(a: PostingCursor, b: PostingCursor, snapshot: IndexSnapshot,
                scorer, heap: TopKHeap, threshold: float | None,
                raw_threshold: float | None, worst_doc: str,
                plain_finalize: bool, use_blocks: bool,
                limit_doc: str | None = None) -> tuple:
    """WAND over exactly two cursors, without the general loop's sorting
    and list rebuilding.

    Semantically identical to the main loop — same pivot rule, same
    strict-inequality pruning, same canonical-order accumulation, same
    block-max refinement.  With ``limit_doc`` the drain stops once both
    cursors reach it: documents below ``limit_doc`` exist *only* in these
    two cursors (every other active cursor already sits at or past it),
    so the stretch is a closed two-term subproblem.  Hands off to
    :func:`_drain_single` when either cursor runs out.

    Returns the updated ``(threshold, raw_threshold, worst_doc)`` so the
    caller's pruning state stays current.
    """
    offer = heap.offer
    finalize = scorer.finalize
    ceiling = scorer.ceiling
    prune_bound = scorer.prune_bound
    while True:
        if a.doc > b.doc:
            a, b = b, a
        # Invariant: a.doc <= b.doc, so `a` is the pivot-selection prefix.
        if limit_doc is not None:
            if a.doc >= limit_doc:
                return threshold, raw_threshold, worst_doc
            if b.doc >= limit_doc:
                # Only `a` still has documents below the fence: the rest
                # of the subproblem is single-cursor.
                return _drain_single(a, snapshot, scorer, heap, threshold,
                                     raw_threshold, worst_doc,
                                     plain_finalize, limit_doc)
        if threshold is not None:
            if raw_threshold is not None:
                if a.bound >= raw_threshold:
                    pass  # pivot is a.doc — evaluate it
                elif a.bound + b.bound >= raw_threshold:
                    if a.doc != b.doc:
                        # Pivot is b.doc: skip a's postings up to it —
                        # clamped to limit_doc, past which documents may
                        # live in cursors outside this subproblem.
                        target = b.doc if limit_doc is None \
                            or b.doc <= limit_doc else limit_doc
                        if not a.seek(target):
                            return _drain_single(
                                b, snapshot, scorer, heap, threshold,
                                raw_threshold, worst_doc, plain_finalize,
                                limit_doc)
                        continue
                else:
                    # Even both terms together cannot enter: this
                    # subproblem is done.
                    if limit_doc is None:
                        return threshold, raw_threshold, worst_doc
                    if not a.seek(limit_doc):
                        b.seek(limit_doc)
                        return threshold, raw_threshold, worst_doc
                    if not b.seek(limit_doc):
                        return threshold, raw_threshold, worst_doc
                    continue
            else:
                if ceiling(snapshot, a.bound) >= threshold:
                    pass
                elif ceiling(snapshot, a.bound + b.bound) >= threshold:
                    if a.doc != b.doc:
                        target = b.doc if limit_doc is None \
                            or b.doc <= limit_doc else limit_doc
                        if not a.seek(target):
                            return _drain_single(
                                b, snapshot, scorer, heap, threshold,
                                raw_threshold, worst_doc, plain_finalize,
                                limit_doc)
                        continue
                else:
                    if limit_doc is None:
                        return threshold, raw_threshold, worst_doc
                    if not a.seek(limit_doc):
                        b.seek(limit_doc)
                        return threshold, raw_threshold, worst_doc
                    if not b.seek(limit_doc):
                        return threshold, raw_threshold, worst_doc
                    continue
        doc_id = a.doc
        both = b.doc == doc_id
        evaluate = True
        if use_blocks and threshold is not None:
            blocks = a.blocks
            cap = (a.bound if blocks is None
                   else blocks[a.position // a.block_size])
            if both:
                blocks = b.blocks
                cap += (b.bound if blocks is None
                        else blocks[b.position // b.block_size])
            if raw_threshold is not None:
                evaluate = cap >= raw_threshold
            else:
                evaluate = ceiling(snapshot, cap) >= threshold
        if evaluate:
            if both:
                # Canonical query-term accumulation order (float-exact).
                if a.order < b.order:
                    raw = (a.contributions[a.position]
                           + b.contributions[b.position])
                else:
                    raw = (b.contributions[b.position]
                           + a.contributions[a.position])
            else:
                raw = a.contributions[a.position]
            score = raw if plain_finalize \
                else finalize(snapshot, doc_id, raw)
            if threshold is None or score > threshold or (
                    score == threshold and doc_id < worst_doc):
                offer(doc_id, score)
                if heap.full:
                    worst_score, worst_doc = heap.worst()
                    if worst_score != threshold:
                        threshold = worst_score
                        raw_threshold = prune_bound(snapshot, threshold)
        if both and not b.advance():
            b = None
        if not a.advance():
            a = b
        if a is None:
            return threshold, raw_threshold, worst_doc
        if b is None or a is b:
            return _drain_single(a, snapshot, scorer, heap, threshold,
                                 raw_threshold, worst_doc, plain_finalize,
                                 limit_doc)


def _drain_single(cursor: PostingCursor, snapshot: IndexSnapshot, scorer,
                  heap: TopKHeap, threshold: float | None,
                  raw_threshold: float | None, worst_doc: str,
                  plain_finalize: bool,
                  limit_doc: str | None = None) -> tuple:
    """Score one cursor's postings straight into ``heap``, up to (not
    including) ``limit_doc`` — or to the end when it is ``None``.

    Documents in the drained range exist only in this cursor (the caller
    guarantees every other active cursor sits at or past ``limit_doc``),
    so each posting's contribution is the document's *entire* raw score.
    The pruning rules match the main loop exactly: a posting is skipped
    only when that contribution ceilings *strictly* below the current
    k-th best.

    Returns the updated ``(threshold, raw_threshold, worst_doc)``.
    """
    offer = heap.offer
    finalize = scorer.finalize
    ceiling = scorer.ceiling
    prune_bound = scorer.prune_bound
    doc_ids = cursor.doc_ids
    contributions = cursor.contributions
    if limit_doc is None:
        stop = cursor.length
    else:
        stop = bisect_left(doc_ids, limit_doc, cursor.position)
    for position in range(cursor.position, stop):
        contribution = contributions[position]
        if threshold is not None:
            if raw_threshold is not None:
                if contribution < raw_threshold:
                    continue
            elif ceiling(snapshot, contribution) < threshold:
                continue
        doc_id = doc_ids[position]
        score = (contribution if plain_finalize
                 else finalize(snapshot, doc_id, contribution))
        if threshold is None or score > threshold or (
                score == threshold and doc_id < worst_doc):
            offer(doc_id, score)
            if heap.full:
                worst_score, worst_doc = heap.worst()
                if worst_score != threshold:
                    threshold = worst_score
                    raw_threshold = prune_bound(snapshot, threshold)
    cursor.position = stop
    if stop < cursor.length:
        cursor.doc = doc_ids[stop]
    return threshold, raw_threshold, worst_doc


_BY_DOC = attrgetter("doc")
_BY_ORDER = attrgetter("order")

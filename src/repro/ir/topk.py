"""Top-k fast-path retrieval: bounded-heap accumulation with max-score
early termination.

This is the hot path behind :meth:`repro.ir.retrieval.Searcher.search`.
The exhaustive path materializes a full score dict over every matching
document and sorts all of it; here we instead:

1. pull per-term contribution arrays (and their max-score upper bounds)
   from the :class:`~repro.ir.index.IndexSnapshot`, where they are
   precomputed once per (scorer, term) and reused across queries — the
   WAND/max-score "index-time upper bounds" idea;
2. accumulate term-at-a-time, in query-term order, and stop *admitting new
   candidates* as soon as the remaining terms' summed upper bounds cannot
   lift an unseen document past the current k-th best score;
3. select the top k with a bounded heap (O(n log k)) instead of a full
   sort (O(n log n)).

Rank identity
-------------

The fast path returns *exactly* the same ranked ``(doc_id, score)`` lists
as the exhaustive scorer, including the ``(-score, doc_id)`` tie-break:

- contributions are computed by the same scorer expressions and summed in
  the same (query-term) order, so accumulated floats are bit-identical;
- ``finalize`` is monotone in the raw score and contributions are
  non-negative, so the current k-th best finalized score is a valid lower
  bound for the final k-th best, and it only grows;
- per-term bounds shrink as suffixes shorten, so once new-candidate
  admission stops it stays stopped — a document skipped at term *i* has no
  contributions before *i* and a total ceiling strictly below the k-th
  best, hence cannot appear in (or tie into) the top k.

The strictness of the comparison (prune only when the ceiling is strictly
below the threshold score) is what keeps tie-broken rankings identical.
"""

from __future__ import annotations

import heapq

from repro.ir.index import IndexSnapshot

__all__ = ["TopKHeap", "topk_scores", "merge_ranked"]


class _Entry:
    """Heap cell ordered so that ``heap[0]`` is the *worst* kept hit:
    lower score first, and at equal scores the *larger* doc_id first
    (mirroring the ``(-score, doc_id)`` ranking order)."""

    __slots__ = ("score", "doc_id")

    def __init__(self, score: float, doc_id: str):
        self.score = score
        self.doc_id = doc_id

    def __lt__(self, other: "_Entry") -> bool:
        if self.score != other.score:
            return self.score < other.score
        return self.doc_id > other.doc_id


class TopKHeap:
    """A bounded min-heap keeping the ``k`` best ``(doc_id, score)`` pairs
    under the ranking order ``(-score, doc_id)``."""

    __slots__ = ("k", "_heap")

    def __init__(self, k: int):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.k = k
        self._heap: list[_Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    def worst(self) -> tuple[float, str]:
        """The (score, doc_id) currently in last place (the k-th best once
        the heap is full)."""
        if not self._heap:
            raise IndexError("worst() on an empty TopKHeap")
        entry = self._heap[0]
        return entry.score, entry.doc_id

    def offer(self, doc_id: str, score: float) -> None:
        """Consider one candidate; keeps only the k best seen so far."""
        if self.k == 0:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, _Entry(score, doc_id))
            return
        worst = self._heap[0]
        if score > worst.score or (score == worst.score
                                   and doc_id < worst.doc_id):
            heapq.heapreplace(self._heap, _Entry(score, doc_id))

    def ranked(self) -> list[tuple[str, float]]:
        """Kept hits, best first (ties broken by ascending doc_id)."""
        ordered = sorted(self._heap,
                         key=lambda entry: (-entry.score, entry.doc_id))
        return [(entry.doc_id, entry.score) for entry in ordered]


def merge_ranked(ranked_lists: list[list[tuple[str, float]]],
                 limit: int) -> list[tuple[str, float]]:
    """Merge independently ranked ``(doc_id, score)`` lists into one global
    top-``limit`` list under the ``(-score, doc_id)`` order.

    The inputs are per-shard top-k lists over *disjoint* document sets
    (shards partition doc_ids), so every document appears at most once
    across all lists and the merge is exactly the global top-``limit``:
    any document in the global top-k ranks at least as high within its own
    shard, hence is present in its shard's list.  Cross-shard ties are
    broken by ascending doc_id, same as the single-process path.
    """
    best = TopKHeap(limit)
    for ranked in ranked_lists:
        for doc_id, score in ranked:
            best.offer(doc_id, score)
    return best.ranked()


def topk_scores(snapshot: IndexSnapshot, scorer, terms: list[str],
                limit: int) -> list[tuple[str, float]]:
    """The ``limit`` best ``(doc_id, score)`` pairs for ``terms``.

    ``scorer`` must support the fast-path hooks (see
    :mod:`repro.ir.scoring`).  Rank-identical to scoring exhaustively and
    sorting by ``(-score, doc_id)``.
    """
    if limit <= 0 or snapshot.document_count == 0:
        return []
    plans = [snapshot.term_contributions(scorer, term) for term in terms]
    # Suffix sums of per-term upper bounds: suffix[i] caps the raw score a
    # document can still gain from terms i..end.
    suffix = [0.0] * (len(plans) + 1)
    for i in range(len(plans) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + plans[i].bound

    accumulator: dict[str, float] = {}
    finalize = scorer.finalize
    threshold_score: float | None = None
    for i, plan in enumerate(plans):
        if not plan.doc_ids:
            continue
        admit_new = True
        if i > 0 and len(accumulator) >= limit:
            ceiling = scorer.ceiling(snapshot, suffix[i])
            if threshold_score is not None and ceiling < threshold_score:
                # The threshold only grows, so a previously computed value
                # already proves no unseen document can enter — skip the
                # O(candidates) rebuild (this keeps the post-pruning tail
                # of a long query linear instead of quadratic).
                admit_new = False
            else:
                # Current k-th best finalized score: a lower bound on the
                # final k-th best (scores only grow; finalize is monotone).
                current = TopKHeap(limit)
                for doc_id, raw in accumulator.items():
                    current.offer(doc_id, finalize(snapshot, doc_id, raw))
                threshold_score, _ = current.worst()
                # An unseen document can reach at most ceiling(suffix[i]);
                # if that is *strictly* below the threshold it can neither
                # beat nor tie into the top k.  Equality must still admit:
                # the new document could tie and win the doc_id tie-break.
                admit_new = ceiling >= threshold_score
        if admit_new:
            for doc_id, contribution in zip(plan.doc_ids, plan.contributions):
                accumulator[doc_id] = (accumulator.get(doc_id, 0.0)
                                       + contribution)
        else:
            for doc_id, contribution in zip(plan.doc_ids, plan.contributions):
                if doc_id in accumulator:
                    accumulator[doc_id] = accumulator[doc_id] + contribution

    best = TopKHeap(limit)
    for doc_id, raw in accumulator.items():
        best.offer(doc_id, finalize(snapshot, doc_id, raw))
    return best.ranked()

"""Text analysis: tokenization, stopword removal, light stemming.

The stemmer is a deliberately small suffix-stripper (an "s-stemmer" plus a
few common verbal suffixes).  Full Porter stemming buys little on the short
entity-heavy text in this domain and would obscure exact entity matches the
segmenter depends on.
"""

from __future__ import annotations

from repro.utils.text import normalize

__all__ = ["STOPWORDS", "Analyzer"]

# A compact English stopword list; deliberately excludes words that are
# schema-meaningful in the movie domain ("cast" is never a stopword).
STOPWORDS = frozenset("""
a an and are as at be but by for from had has have i if in into is it its of
on or s t that the their them then there these they this to was were which
who will with
""".split())


class Analyzer:
    """Configurable analysis pipeline: normalize → tokenize → filter → stem."""

    def __init__(self, remove_stopwords: bool = True, stem: bool = True,
                 min_token_length: int = 1):
        if min_token_length < 1:
            raise ValueError(f"min_token_length must be >= 1, got {min_token_length}")
        self.remove_stopwords = remove_stopwords
        self.stem = stem
        self.min_token_length = min_token_length

    def tokens(self, text: str) -> list[str]:
        """Analyzed tokens of ``text`` (possibly empty)."""
        result = []
        for raw in normalize(text).split():
            token = raw.strip("'")
            if len(token) < self.min_token_length:
                continue
            if self.remove_stopwords and token in STOPWORDS:
                continue
            if self.stem:
                token = self.stem_token(token)
            if token:
                result.append(token)
        return result

    def raw_tokens(self, text: str) -> list[str]:
        """Normalized tokens with no stopping/stemming (for phrase matching)."""
        return normalize(text).split()

    @staticmethod
    def stem_token(token: str) -> str:
        """Light suffix stripping; idempotent."""
        if len(token) <= 3:
            return token
        for suffix, keep in (("ies", "y"), ("sses", "ss"), ("ing", ""), ("edly", ""),
                             ("ed", ""), ("ly", ""), ("s", "")):
            if token.endswith(suffix):
                stem = token[: len(token) - len(suffix)] + keep
                # Never strip down to nothing or one char.
                if len(stem) >= 3:
                    return stem
        return token

    # -- serialization -------------------------------------------------------

    def config(self) -> dict:
        """The constructor arguments as a plain dict — the single source
        of truth for persisting analyzer configuration (snapshot headers,
        collection manifests) and for equality.  A new Analyzer option
        only needs to be added here (and in :meth:`from_config`) to be
        persisted and mismatch-checked everywhere."""
        return {
            "remove_stopwords": self.remove_stopwords,
            "stem": self.stem,
            "min_token_length": self.min_token_length,
        }

    @classmethod
    def from_config(cls, config: dict) -> "Analyzer":
        """Rebuild from :meth:`config` output (missing keys get defaults)."""
        return cls(
            remove_stopwords=config.get("remove_stopwords", True),
            stem=config.get("stem", True),
            min_token_length=config.get("min_token_length", 1),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Analyzer):
            return NotImplemented
        return self.config() == other.config()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.config().items())))

    def __repr__(self) -> str:
        return (
            f"Analyzer(remove_stopwords={self.remove_stopwords}, "
            f"stem={self.stem}, min_token_length={self.min_token_length})"
        )

"""Information-retrieval engine.

The qunits paradigm's whole point is that once a database is modeled as a
flat collection of independent documents, *standard IR techniques* apply.
This package supplies those techniques: analysis (tokenization, stopwords,
light stemming), an inverted index with per-field storage, TF-IDF and BM25
ranked retrieval (with term-at-a-time and document-at-a-time top-k fast
paths — see :mod:`repro.ir.topk` and :mod:`repro.ir.wand`),
persistent index snapshots (:mod:`repro.ir.persist`), sharded parallel
scoring (:mod:`repro.ir.shard`), and the usual effectiveness metrics.
"""

from repro.ir.analysis import Analyzer, STOPWORDS
from repro.ir.documents import Document
from repro.ir.feedback import RocchioFeedback
from repro.ir.index import (
    ColumnarIndexSnapshot,
    IndexSnapshot,
    InvertedIndex,
    Posting,
    TermContributions,
)
from repro.ir.persist import (
    DocumentStore,
    SnapshotJournal,
    compact_snapshot,
    load_document_store,
    load_snapshot,
    open_scoring_snapshot,
    save_document_store,
    save_snapshot,
)
from repro.ir.shard import ShardedTopK, TermBloomFilter, shard_snapshot
from repro.ir.topk import TopKHeap, merge_ranked, topk_scores
from repro.ir.wand import STRATEGIES, retrieve, wand_scores
from repro.ir.metrics import (
    average_precision,
    dcg,
    majority_agreement,
    mean,
    mean_reciprocal_rank,
    ndcg,
    precision_at_k,
    recall_at_k,
)
from repro.ir.retrieval import SearchHit, Searcher
from repro.ir.scoring import Bm25Scorer, Scorer, TfIdfScorer

__all__ = [
    "Analyzer",
    "STOPWORDS",
    "Document",
    "ColumnarIndexSnapshot",
    "IndexSnapshot",
    "InvertedIndex",
    "Posting",
    "TermContributions",
    "TopKHeap",
    "topk_scores",
    "merge_ranked",
    "STRATEGIES",
    "retrieve",
    "wand_scores",
    "save_snapshot",
    "load_snapshot",
    "open_scoring_snapshot",
    "save_document_store",
    "load_document_store",
    "compact_snapshot",
    "DocumentStore",
    "SnapshotJournal",
    "ShardedTopK",
    "TermBloomFilter",
    "shard_snapshot",
    "Searcher",
    "SearchHit",
    "Scorer",
    "TfIdfScorer",
    "Bm25Scorer",
    "RocchioFeedback",
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "mean_reciprocal_rank",
    "dcg",
    "ndcg",
    "mean",
    "majority_agreement",
]

"""Persistent snapshot storage: document store + postings overlays + deltas.

Collections in this system are expensive to derive (schema analysis, query
logs, instance materialization) but cheap to query; persistence splits the
two across process lifetimes: :func:`save_snapshot` writes a snapshot to
disk once, :func:`load_snapshot` brings it back in a form that serves
queries with no live :class:`~repro.ir.index.InvertedIndex` behind it.

``docs/PERSISTENCE.md`` specifies the on-disk formats precisely (byte
layouts, record grammars, checksum rules, version negotiation, compaction
semantics); this docstring is the orientation summary.

Format version 3 (current)
--------------------------

Version 3 is a **binary columnar container** built for mmap zero-copy
loads: a fixed-size struct header, a JSON meta blob (the same keys the v2
header carried — analyzer, collection statistics, docstore/shard/bloom),
a JSON *term directory* mapping each term to the byte extents of its
columns, and a columns region holding fixed-width little-endian arrays —
u32 interned doc positions and float64 weighted frequencies per term,
float64 document lengths, plus optional per-(scorer, term) contribution
and block-max bound columns precomputed at save time.  Every column (and
the meta/directory blobs) carries a sha256 checksum, verified lazily on
first access.

Loading (:func:`load_snapshot`) maps the file with :mod:`mmap` and parses
only the header, meta, and directory — O(header + directory), not
O(postings) — returning a :class:`~repro.ir.index.ColumnarIndexSnapshot`
whose postings materialize per term on demand straight out of the mapped
columns.  N shard workers mapping the same file share one OS page cache
instead of N parsed heaps; :func:`open_scoring_snapshot` is the worker
entry point (documents skipped entirely).  Float-exactness is preserved
across formats: float64 columns round-trip bit-exactly, so a v3 load is
rank-and-score identical to the v2 load and the live index it came from.

Format version 2
----------------

Version 2 splits a saved generation into a **document store** plus
**postings overlays** (JSON-lines; still written by
:func:`save_snapshot_v2`, still loaded transparently):

- A *document store* file (:func:`save_document_store`) holds every
  decorated instance document — and its weighted length — exactly once.
  Its header carries a ``doc_id -> [byte offset, length]`` index so a
  shard server can read *only its partition's* documents
  (:func:`load_document_store_partition`) instead of parsing the store.
- Snapshot files written with ``docstore=<name>`` record only ``ref``
  lines (doc_ids) instead of full ``doc`` records; on load the referenced
  :class:`DocumentStore` supplies the shared :class:`~repro.ir.documents.
  Document` objects, so N snapshots over the same corpus pin one copy of
  the documents instead of N.
- Snapshot files written without a ``docstore`` inline their documents
  (the standalone layout, used by :class:`SnapshotJournal`).

All files are UTF-8 JSON-lines with a header line, body records, and a
footer carrying a sha256 digest of every preceding line; truncation,
corruption, and unknown format versions raise
:class:`~repro.errors.SnapshotError` (files are never silently
reinterpreted).  Version-1 files (single snapshot, inline documents) are
still read; :func:`save_snapshot_v1` keeps the legacy writer available for
compatibility tests and size comparisons.

Delta segments
--------------

A version-2 or version-3 snapshot file may carry **delta segments** after
its base (after the footer line for v2, after the columns region for v3):
each segment is one ``delta`` record (new inline documents, postings
additions, refreshed collection statistics) followed by a ``delta-end``
record with a sha256 of the segment line.  Appending a delta is O(new
documents), not O(file) — :class:`SnapshotJournal` hooks
:meth:`~repro.ir.index.InvertedIndex.add` so every add appends a
checksummed segment instead of rewriting the snapshot, and compaction
(:func:`compact_snapshot`, or the journal's threshold) folds segments back
into a clean base.  A v3 file with deltas loads eagerly (deltas mutate
postings, which forfeits the lazy column view until the next compaction).

Fidelity
--------

Floats are serialized with :mod:`json`, whose ``repr``-based encoding is
shortest-round-trip exact, so a loaded snapshot scores *float-identical*
to the one saved.  Tuples inside document metadata are encoded as JSON
arrays and restored as tuples on load, preserving
:class:`~repro.ir.documents.Document` equality across the round trip.
Delta postings additions are recomputed with the same per-token
accumulation order as :meth:`~repro.ir.index.InvertedIndex.add`, so
journaled snapshots also load float-identical.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import sys
from array import array
from collections.abc import Mapping
from pathlib import Path

from repro.errors import SnapshotError
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import (
    ColumnarIndexSnapshot,
    IndexSnapshot,
    InvertedIndex,
    Posting,
    TermContributions,
)

__all__ = [
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "V3_MAGIC",
    "STORE_MAGIC",
    "STORE_VERSION",
    "DEFAULT_COMPACT_THRESHOLD",
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "DocumentStore",
    "SnapshotJournal",
    "build_delta_record",
    "fold_delta_record",
    "filter_delta_record",
    "append_collection_txn",
    "read_collection_journal",
    "save_snapshot",
    "save_snapshot_v1",
    "save_snapshot_v2",
    "load_snapshot",
    "load_snapshot_with_header",
    "open_scoring_snapshot",
    "save_document_store",
    "load_document_store",
    "load_document_store_partition",
    "read_snapshot_doc_ids",
    "read_snapshot_header",
    "compact_snapshot",
    "delta_segment_count",
]

FORMAT_MAGIC = "qunits-snapshot"
FORMAT_VERSION = 3
SUPPORTED_VERSIONS = (1, 2, 3)
#: First bytes of a version-3 binary columnar container (12 bytes; the
#: trailing newline makes an accidental text-mode read fail fast).
V3_MAGIC = b"qunits-col3\n"

#: Posting-list length below which contribution/block-bound columns are
#: not persisted (lazy recomputation is cheaper than the bytes).
_PRECOMPUTE_MIN_POSTINGS = 16
#: Fixed-size v3 container header: magic, format version, then byte
#: extents of the meta blob, term directory, and columns region, then
#: raw sha256 digests of the meta and directory blobs.
_V3_HEADER = struct.Struct("<12sI6Q32s32s")
STORE_MAGIC = "qunits-docstore"
STORE_VERSION = 1
#: Header magic of a collection-level delta journal (``journal-*.jrnl``)
#: — one file per saved collection generation, holding checksummed delta
#: records for the global and per-definition snapshots appended by
#: incremental saves (see ``repro.core.store``).
JOURNAL_MAGIC = "qunits-journal"
JOURNAL_VERSION = 1
#: Minimum number of delta segments before a :class:`SnapshotJournal`
#: considers folding them back into a clean base snapshot (folding also
#: waits until the delta reaches 25% of the base — see the class docs).
DEFAULT_COMPACT_THRESHOLD = 16


def _to_jsonable(value: object) -> object:
    """Metadata values for serialization (tuples become arrays)."""
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise SnapshotError(
        f"unserializable metadata value of type {type(value).__name__}: {value!r}"
    )


def _from_jsonable(value: object) -> object:
    """Inverse of :func:`_to_jsonable` (arrays come back as tuples)."""
    if isinstance(value, list):
        return tuple(_from_jsonable(item) for item in value)
    return value


def _dumps(record: dict) -> str:
    try:
        return json.dumps(record, ensure_ascii=False, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"unserializable snapshot record: {exc}") from exc


def _doc_record(doc_id: str, document: Document, length: float) -> dict:
    return {
        "t": "doc",
        "id": doc_id,
        "fields": [[name, text] for name, text in document.fields],
        "weights": [[name, weight] for name, weight in document.field_weights],
        "meta": [[key, _to_jsonable(value)]
                 for key, value in document.metadata],
        "length": length,
    }


def _doc_from_record(record: dict) -> tuple[str, Document, float]:
    doc_id = record["id"]
    document = Document(
        doc_id=doc_id,
        fields=tuple((name, text) for name, text in record["fields"]),
        field_weights=tuple((name, weight)
                            for name, weight in record["weights"]),
        metadata=tuple((key, _from_jsonable(value))
                       for key, value in record["meta"]),
    )
    return doc_id, document, record["length"]


def _write_checksummed(path: Path, records) -> Path:
    """Write header+body ``records`` plus a digest footer, atomically.

    The file is written to a temporary sibling and renamed into place, so
    readers never observe a half-written file.  The footer's ``records``
    count excludes the header line, matching the loaders' expectations.
    A record may be a pre-serialized line (``str`` ending in a newline)
    instead of a dict — used when the writer needed the exact bytes up
    front, e.g. to compute the document store's offset index.
    """
    digest = hashlib.sha256()
    count = -1  # the header line is not a body record
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in records:
                line = record if isinstance(record, str) \
                    else _dumps(record) + "\n"
                digest.update(line.encode("utf-8"))
                handle.write(line)
                count += 1
            footer = {"t": "end", "records": count,
                      "sha256": digest.hexdigest()}
            handle.write(_dumps(footer) + "\n")
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    os.replace(tmp_path, path)
    return path


def _corrupt(path: Path, reason: str) -> SnapshotError:
    return SnapshotError(f"snapshot file {str(path)!r} is unreadable: {reason}")


def _parse_line(path: Path, line: str, what: str) -> dict:
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise _corrupt(path, f"{what} is not valid JSON ({exc})") from exc
    if not isinstance(record, dict):
        raise _corrupt(path, f"{what} is not a JSON object")
    return record


def _read_lines(path: Path) -> list[str]:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.readlines()
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise _corrupt(path, f"not UTF-8 text ({exc})") from exc


# -- document store ----------------------------------------------------------


class DocumentStore:
    """The deduplicated per-generation document store.

    One store holds every decorated instance document (and its weighted
    length) exactly once; snapshot files saved against it reference
    documents by id (``ref`` records) instead of inlining them.  All
    snapshots loaded against the same store *share* its
    :class:`~repro.ir.documents.Document` objects, so a generation's
    documents are pinned in memory once no matter how many per-definition
    or per-shard snapshots reference them.
    """

    def __init__(self, analyzer: Analyzer, documents: dict[str, Document],
                 doc_lengths: dict[str, float]):
        """Wrap already-built mappings (no copies are taken).

        Args:
            analyzer: the analyzer the documents were tokenized with
                (checked against snapshots loaded from this store).
            documents: ``doc_id -> Document`` for every stored document.
            doc_lengths: ``doc_id -> weighted length``, same keys.
        """
        self.analyzer = analyzer
        self.documents = documents
        self.doc_lengths = doc_lengths

    @classmethod
    def from_snapshot(cls, snapshot: IndexSnapshot) -> "DocumentStore":
        """A store holding (copies of the mappings of) every document in
        ``snapshot`` — typically the collection-wide global snapshot, whose
        documents are a superset of every per-definition snapshot's."""
        return cls(snapshot.analyzer, dict(snapshot._documents),
                   dict(snapshot._doc_lengths))

    def __len__(self) -> int:
        return len(self.documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self.documents


def save_document_store(store: DocumentStore, path: str | os.PathLike) -> Path:
    """Write ``store`` to ``path`` (atomically); returns the path.

    The header carries a ``doc_index`` — ``doc_id -> [byte offset,
    length]`` of each document record, offsets relative to the end of the
    header line — so partition loads
    (:func:`load_document_store_partition`) can seek straight to their
    own documents instead of parsing the whole store.  The index has to
    live in the header (readable before any record), which is why the
    record lines are serialized up front here: their exact byte lengths
    are part of the header.

    Raises:
        SnapshotError: if a document carries unserializable metadata.
    """
    path = Path(path)
    doc_lines: list[str] = []
    doc_index: dict[str, list[int]] = {}
    offset = 0
    for doc_id in sorted(store.documents):
        line = _dumps(_doc_record(doc_id, store.documents[doc_id],
                                  store.doc_lengths[doc_id])) + "\n"
        size = len(line.encode("utf-8"))
        doc_index[doc_id] = [offset, size]
        doc_lines.append(line)
        offset += size
    header = {
        "magic": STORE_MAGIC,
        "format_version": STORE_VERSION,
        "analyzer": store.analyzer.config(),
        "stored_documents": len(store.documents),
        "doc_index": doc_index,
    }
    return _write_checksummed(path, [header, *doc_lines])


def load_document_store(path: str | os.PathLike) -> DocumentStore:
    """Read a document store saved by :func:`save_document_store`.

    Raises:
        SnapshotError: on missing/truncated files, checksum mismatches,
            and format-version mismatches.
    """
    path = Path(path)
    lines = _read_lines(path)
    if len(lines) < 2:
        raise _corrupt(path, "missing header or footer (truncated?)")
    header = _parse_line(path, lines[0], "header")
    if header.get("magic") != STORE_MAGIC:
        raise _corrupt(path, "not a qunits document store file (bad magic)")
    if header.get("format_version") != STORE_VERSION:
        raise SnapshotError(
            f"document store {str(path)!r} has format version "
            f"{header.get('format_version')!r}; this build reads version "
            f"{STORE_VERSION}"
        )
    footer_line = lines[-1]
    if not footer_line.endswith("\n"):
        raise _corrupt(path, "unterminated final line (truncated?)")
    footer = _parse_line(path, footer_line, "footer")
    if footer.get("t") != "end":
        raise _corrupt(path, "missing end-of-file footer (truncated?)")
    body = lines[1:-1]
    if footer.get("records") != len(body) or \
            header.get("stored_documents") != len(body):
        raise _corrupt(path, f"expected {header.get('stored_documents')} "
                             f"records, found {len(body)} (truncated?)")
    digest = hashlib.sha256()
    for line in lines[:-1]:
        digest.update(line.encode("utf-8"))
    if digest.hexdigest() != footer.get("sha256"):
        raise _corrupt(path, "checksum mismatch (corrupted)")

    documents: dict[str, Document] = {}
    doc_lengths: dict[str, float] = {}
    try:
        for i, line in enumerate(body):
            record = _parse_line(path, line, f"record {i + 1}")
            if record.get("t") != "doc":
                raise _corrupt(
                    path, f"record {i + 1} has unexpected type "
                          f"{record.get('t')!r}")
            doc_id, document, length = _doc_from_record(record)
            if doc_id in documents:
                raise _corrupt(path, f"duplicate document {doc_id!r}")
            documents[doc_id] = document
            doc_lengths[doc_id] = length
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise _corrupt(path, f"malformed record structure ({exc})") from exc
    return DocumentStore(Analyzer.from_config(header.get("analyzer", {})),
                         documents, doc_lengths)


def load_document_store_partition(path: str | os.PathLike,
                                  doc_ids) -> DocumentStore:
    """Read only ``doc_ids`` from a document store — O(partition), not
    O(store).

    Uses the header's ``doc_index`` (``doc_id -> [offset, length]``) to
    seek directly to the requested records; a store written before the
    index existed falls back to a full :func:`load_document_store` (whose
    result is a superset of the partition).  Partition reads trade the
    whole-file sha256 verification for the O(partition) I/O that is their
    point; each fetched record is still verified to parse and to carry
    the expected doc_id, and a full load (which always verifies the
    checksum) remains available for auditing.

    Args:
        path: the store file written by :func:`save_document_store`.
        doc_ids: the document ids to load (an iterable; duplicates are
            read once).

    Raises:
        SnapshotError: on unreadable files, bad magic, format-version
            mismatches, ids absent from the store, or records that fail
            verification.
    """
    path = Path(path)
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc
    with handle:
        first = handle.readline()
        if not first:
            raise _corrupt(path, "empty file")
        try:
            header = _parse_line(path, first.decode("utf-8"), "header")
        except UnicodeDecodeError as exc:
            raise _corrupt(path, f"header is not UTF-8 ({exc})") from exc
        if header.get("magic") != STORE_MAGIC:
            raise _corrupt(path, "not a qunits document store file "
                                 "(bad magic)")
        if header.get("format_version") != STORE_VERSION:
            raise SnapshotError(
                f"document store {str(path)!r} has format version "
                f"{header.get('format_version')!r}; this build reads "
                f"version {STORE_VERSION}"
            )
        doc_index = header.get("doc_index")
        if doc_index is None:
            # Pre-index store: the only way to find a record is to read
            # them all.  The full loader also verifies the checksum.
            return load_document_store(path)
        base = len(first)
        documents: dict[str, Document] = {}
        doc_lengths: dict[str, float] = {}
        for doc_id in sorted(set(doc_ids)):
            entry = doc_index.get(doc_id)
            if entry is None:
                raise _corrupt(
                    path, f"document {doc_id!r} is not in the store's "
                          f"doc_index")
            try:
                offset, size = entry
                handle.seek(base + offset)
                raw = handle.read(size).decode("utf-8")
            except (TypeError, ValueError, UnicodeDecodeError) as exc:
                raise _corrupt(
                    path, f"doc_index entry for {doc_id!r} is unusable "
                          f"({exc})") from exc
            record = _parse_line(path, raw, f"document {doc_id!r}")
            if record.get("t") != "doc" or record.get("id") != doc_id:
                raise _corrupt(
                    path, f"doc_index for {doc_id!r} points at a "
                          f"{record.get('t')!r} record for "
                          f"{record.get('id')!r}")
            try:
                _, document, length = _doc_from_record(record)
            except KeyError as exc:
                raise _corrupt(
                    path, f"missing required key {exc.args[0]!r}") from exc
            except (TypeError, ValueError) as exc:
                raise _corrupt(
                    path, f"malformed record structure ({exc})") from exc
            documents[doc_id] = document
            doc_lengths[doc_id] = length
    return DocumentStore(Analyzer.from_config(header.get("analyzer", {})),
                         documents, doc_lengths)


def read_snapshot_doc_ids(path: str | os.PathLike) -> list[str]:
    """The doc_ids of a snapshot file's base records (``ref`` or inline
    ``doc``), in record order — without loading postings, resolving a
    document store, or applying deltas.

    This is how a shard server discovers *which* documents its partition
    needs before fetching exactly those from the store
    (:func:`load_document_store_partition`).

    Raises:
        SnapshotError: on unreadable/truncated files, bad magic, or an
            unsupported format version.
    """
    path = Path(path)
    if _probe_magic(path) == V3_MAGIC:
        backing = _V3Backing.open(path)
        try:
            return list(backing.doc_ids)
        finally:
            backing.close()
    try:
        with open(path, encoding="utf-8") as handle:
            first = handle.readline()
            if not first:
                raise _corrupt(path, "empty file")
            header = _parse_line(path, first, "header")
            if header.get("magic") != FORMAT_MAGIC:
                raise _corrupt(path, "not a qunits snapshot file (bad magic)")
            if header.get("format_version") not in SUPPORTED_VERSIONS:
                raise SnapshotError(
                    f"snapshot file {str(path)!r} has format version "
                    f"{header.get('format_version')!r}; this build reads "
                    f"versions {SUPPORTED_VERSIONS}"
                )
            count = header.get("stored_documents", 0)
            doc_ids: list[str] = []
            for i in range(count):
                line = handle.readline()
                if not line:
                    raise _corrupt(
                        path, f"expected {count} document records, found "
                              f"{i} (truncated?)")
                record = _parse_line(path, line, f"record {i + 1}")
                if record.get("t") not in ("doc", "ref") or \
                        "id" not in record:
                    raise _corrupt(
                        path, f"record {i + 1} is not a document record")
                doc_ids.append(record["id"])
            return doc_ids
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise _corrupt(path, f"not UTF-8 text ({exc})") from exc


# -- binary columns (format v3) ----------------------------------------------


def _pack_u32(values) -> bytes:
    """``values`` as a little-endian u32 array (portable across byte
    orders; falls back to :mod:`struct` on exotic ``array`` sizes)."""
    data = array("I", values)
    if data.itemsize != 4:
        return struct.pack(f"<{len(data)}I", *data)
    if sys.byteorder != "little":
        data.byteswap()
    return data.tobytes()


def _unpack_u32(buffer):
    """Inverse of :func:`_pack_u32`; returns an int sequence."""
    data = array("I")
    if data.itemsize != 4:
        return struct.unpack(f"<{len(buffer) // 4}I", bytes(buffer))
    data.frombytes(buffer)
    if sys.byteorder != "little":
        data.byteswap()
    return data


def _pack_f64(values) -> bytes:
    """``values`` as a little-endian float64 array (bit-exact)."""
    data = array("d", values)
    if sys.byteorder != "little":
        data.byteswap()
    return data.tobytes()


def _unpack_f64(buffer):
    """Inverse of :func:`_pack_f64`; returns a float sequence."""
    data = array("d")
    data.frombytes(buffer)
    if sys.byteorder != "little":
        data.byteswap()
    return data


def _default_precompute_scorers():
    """Scorers whose per-term contribution/block-bound columns
    :func:`save_snapshot` persists: the default BM25 configuration —
    what the collection layer scores with unless told otherwise.  Other
    scorers fall back to lazy computation on load (identical floats,
    just not prepaid)."""
    from repro.ir.scoring import Bm25Scorer

    return (Bm25Scorer(),)


# -- snapshot writers --------------------------------------------------------


def save_snapshot(snapshot: IndexSnapshot, path: str | os.PathLike, *,
                  docstore: str | None = None, shard: dict | None = None,
                  bloom: dict | None = None, precompute: bool = True,
                  vectors=None) -> Path:
    """Write ``snapshot`` to ``path`` in the version-3 binary columnar
    container; returns the path.

    The file is written to a temporary sibling and renamed into place, so
    readers never observe a half-written snapshot.  Any delta segments a
    previous file at ``path`` carried are folded away by the rewrite.

    Layout: the :data:`V3_MAGIC` struct header, a JSON meta blob carrying
    the same keys the v2 header line did, a JSON term directory (term →
    df and column extents), then the columns region — per-term u32
    interned-doc-position and float64 weighted-frequency columns, the
    float64 document-length column, the doc_id list blob, inline
    documents (standalone layout only), and per-(scorer, term)
    contribution/block-bound columns for the default scorers.  Every
    column carries a sha256, verified lazily on load.

    Args:
        snapshot: the frozen snapshot to persist.
        docstore: file name (relative to ``path``'s directory) of the
            document store the snapshot's documents live in.  When given,
            the file stores no document bodies — the deduplicated layout;
            the caller is responsible for the store actually covering the
            snapshot's doc_ids.  When ``None``, documents are inlined
            (standalone layout).
        shard: optional ``{"index": i, "count": n}`` partition coordinates
            recorded in the meta blob (see :mod:`repro.ir.shard`).
        bloom: optional serialized term Bloom filter
            (:meth:`~repro.ir.shard.TermBloomFilter.to_dict`) recorded in
            the meta blob so routers can read it without parsing postings.
        precompute: also persist contribution and block-max bound columns
            for the default scorers, so loads serve the hot path without
            recomputing them.
        vectors: optional :class:`~repro.ir.vector.VectorIndex` to
            persist as vector extents (a ``"vectors"`` directory section:
            the embedder config plus doc_id and row-major float64 matrix
            columns).  Only rows for the snapshot's own documents are
            written.  Files without this section load fine — the hybrid
            retrieval strategy then degrades to lexical with a warning
            (see :mod:`repro.ir.retrieval`).

    Raises:
        SnapshotError: if a document carries unserializable metadata, or
            ``vectors`` does not cover every snapshot document.
    """
    path = Path(path)
    doc_ids = sorted(snapshot._documents)
    terms = sorted(snapshot._postings)
    position = {doc_id: i for i, doc_id in enumerate(doc_ids)}

    columns = bytearray()

    def add_column(payload: bytes) -> list:
        offset = len(columns)
        columns.extend(payload)
        return [offset, len(payload),
                hashlib.sha256(payload).hexdigest()]

    docs_directory = {
        "doc_ids": add_column(_dumps(doc_ids).encode("utf-8")),
        "doc_lengths": add_column(_pack_f64(
            snapshot._doc_lengths[doc_id] for doc_id in doc_ids)),
        "documents": None,
    }
    if docstore is None:
        records = [_doc_record(doc_id, snapshot._documents[doc_id],
                               snapshot._doc_lengths[doc_id])
                   for doc_id in doc_ids]
        docs_directory["documents"] = add_column(
            _dumps(records).encode("utf-8"))

    terms_directory = {}
    for term in terms:
        plist = snapshot._postings[term]
        terms_directory[term] = {
            "df": snapshot._doc_frequencies.get(term, len(plist)),
            "n": len(plist),
            "pos": add_column(_pack_u32(
                position[posting.doc_id] for posting in plist)),
            "tf": add_column(_pack_f64(
                posting.weighted_tf for posting in plist)),
        }

    scorers_directory = {}
    if precompute:
        from repro.ir.wand import term_block_size

        for scorer in _default_precompute_scorers():
            per_term = {}
            for term in terms:
                plist = snapshot._postings[term]
                if len(plist) < _PRECOMPUTE_MIN_POSTINGS:
                    # Long-tail terms recompute lazily in microseconds;
                    # column + directory overhead would dominate their
                    # on-disk footprint.
                    continue
                plan = snapshot.term_contributions(scorer, term)
                if len(plan.doc_ids) != len(plist) or any(
                        doc_id != posting.doc_id for doc_id, posting
                        in zip(plan.doc_ids, plist)):
                    # The scorer's contributions do not align with the
                    # postings order; a load could not reconstruct the
                    # doc_ids, so leave this term to the lazy path.
                    continue
                block_size = term_block_size(len(plan.doc_ids))
                blocks = snapshot.term_block_bounds(scorer, term, block_size)
                per_term[term] = {
                    "contrib": add_column(_pack_f64(plan.contributions)),
                    "bound": plan.bound,
                    "block_size": block_size,
                    "blocks": add_column(_pack_f64(blocks)),
                }
            if per_term:
                scorers_directory[repr(scorer.cache_key())] = per_term

    vectors_directory = None
    if vectors is not None:
        restricted = vectors.restrict(doc_ids)
        if len(restricted) != len(doc_ids):
            missing = sorted(set(doc_ids) - set(restricted.doc_ids))
            raise SnapshotError(
                f"vector index is missing {len(missing)} snapshot "
                f"document(s) (e.g. {missing[0]!r}); refusing to persist "
                f"partial vector extents")
        vectors_directory = {
            "embedder": restricted.embedder_config,
            "dims": restricted.dims,
            "count": len(restricted),
            "doc_ids": add_column(
                _dumps(list(restricted.doc_ids)).encode("utf-8")),
            "matrix": add_column(_pack_f64(restricted.matrix)),
        }

    meta = {
        "magic": FORMAT_MAGIC,
        "format_version": FORMAT_VERSION,
        "index_version": snapshot.version,
        "analyzer": snapshot.analyzer.config(),
        "document_count": snapshot.document_count,
        "average_document_length": snapshot.average_document_length,
        "min_document_length": snapshot.min_document_length,
        "stored_documents": len(doc_ids),
        "stored_terms": len(terms),
        "docstore": docstore,
        "shard": shard,
        "bloom": bloom,
    }
    directory = {
        "docs": docs_directory,
        "terms": terms_directory,
        "scorers": scorers_directory,
    }
    if vectors_directory is not None:
        directory["vectors"] = vectors_directory
    meta_blob = _dumps(meta).encode("utf-8")
    dir_blob = _dumps(directory).encode("utf-8")
    meta_off = _V3_HEADER.size
    dir_off = meta_off + len(meta_blob)
    cols_off = dir_off + len(dir_blob)
    header = _V3_HEADER.pack(
        V3_MAGIC, FORMAT_VERSION, meta_off, len(meta_blob), dir_off,
        len(dir_blob), cols_off, len(columns),
        hashlib.sha256(meta_blob).digest(), hashlib.sha256(dir_blob).digest())

    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(header)
            handle.write(meta_blob)
            handle.write(dir_blob)
            handle.write(columns)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    os.replace(tmp_path, path)
    return path


def save_snapshot_v2(snapshot: IndexSnapshot, path: str | os.PathLike, *,
                     docstore: str | None = None, shard: dict | None = None,
                     bloom: dict | None = None) -> Path:
    """Write ``snapshot`` to ``path`` in the version-2 JSON-lines format;
    returns the path.

    Kept for compatibility tests and for measuring what the columnar
    version-3 container buys; new code should use :func:`save_snapshot`.
    The file is written to a temporary sibling and renamed into place, so
    readers never observe a half-written snapshot.  Any delta segments a
    previous file at ``path`` carried are folded away by the rewrite.

    Args:
        snapshot: the frozen snapshot to persist.
        docstore: file name (relative to ``path``'s directory) of the
            document store the snapshot's documents live in.  When given,
            the file records only ``ref`` lines — the deduplicated layout;
            the caller is responsible for the store actually covering the
            snapshot's doc_ids.  When ``None``, documents are inlined
            (standalone layout).
        shard: optional ``{"index": i, "count": n}`` partition coordinates
            recorded in the header (see :mod:`repro.ir.shard`).
        bloom: optional serialized term Bloom filter
            (:meth:`~repro.ir.shard.TermBloomFilter.to_dict`) recorded in
            the header so routers can read it without parsing postings.

    Raises:
        SnapshotError: if a document carries unserializable metadata.
    """
    path = Path(path)
    doc_ids = sorted(snapshot._documents)
    terms = sorted(snapshot._postings)
    header = {
        "magic": FORMAT_MAGIC,
        "format_version": 2,
        "index_version": snapshot.version,
        "analyzer": snapshot.analyzer.config(),
        "document_count": snapshot.document_count,
        "average_document_length": snapshot.average_document_length,
        "min_document_length": snapshot.min_document_length,
        "stored_documents": len(doc_ids),
        "stored_terms": len(terms),
        "docstore": docstore,
        "shard": shard,
        "bloom": bloom,
    }

    # Version-2 term records intern doc_ids: postings carry the position
    # of the document in this file's (sorted) doc/ref record order, not
    # the doc_id string — qunit doc_ids are long, and repeating them per
    # (term, document) would dominate the file size.
    position = {doc_id: i for i, doc_id in enumerate(doc_ids)}

    def records():
        yield header
        for doc_id in doc_ids:
            if docstore is None:
                yield _doc_record(doc_id, snapshot._documents[doc_id],
                                  snapshot._doc_lengths[doc_id])
            else:
                yield {"t": "ref", "id": doc_id}
        for term in terms:
            yield {
                "t": "term",
                "term": term,
                "df": snapshot._doc_frequencies.get(
                    term, len(snapshot._postings[term])),
                "postings": [[position[posting.doc_id], posting.weighted_tf]
                             for posting in snapshot._postings[term]],
            }

    return _write_checksummed(path, records())


def save_snapshot_v1(snapshot: IndexSnapshot, path: str | os.PathLike) -> Path:
    """Write ``snapshot`` in the legacy version-1 layout (inline documents,
    no docstore/shard/bloom header fields, no delta support).

    Kept for compatibility tests and for measuring what the deduplicated
    version-2 layout saves; new code should use :func:`save_snapshot`.
    """
    path = Path(path)
    doc_ids = sorted(snapshot._documents)
    terms = sorted(snapshot._postings)
    header = {
        "magic": FORMAT_MAGIC,
        "format_version": 1,
        "index_version": snapshot.version,
        "analyzer": snapshot.analyzer.config(),
        "document_count": snapshot.document_count,
        "average_document_length": snapshot.average_document_length,
        "min_document_length": snapshot.min_document_length,
        "stored_documents": len(doc_ids),
        "stored_terms": len(terms),
    }

    def records():
        yield header
        for doc_id in doc_ids:
            yield _doc_record(doc_id, snapshot._documents[doc_id],
                              snapshot._doc_lengths[doc_id])
        for term in terms:
            yield {
                "t": "term",
                "term": term,
                "df": snapshot._doc_frequencies.get(
                    term, len(snapshot._postings[term])),
                "postings": [[posting.doc_id, posting.weighted_tf]
                             for posting in snapshot._postings[term]],
            }

    return _write_checksummed(path, records())


# -- columnar container access (format v3) -----------------------------------


def _probe_magic(path: Path) -> bytes:
    """The file's first ``len(V3_MAGIC)`` bytes (format sniffing)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(V3_MAGIC))
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc


def _read_v3_struct(path: Path, handle) -> tuple:
    """Read and validate the fixed container header from ``handle``
    (positioned at 0); returns the unpacked extent/digest fields."""
    raw = handle.read(_V3_HEADER.size)
    if len(raw) < _V3_HEADER.size:
        raise _corrupt(path, "truncated container header")
    (magic, version, meta_off, meta_len, dir_off, dir_len, cols_off,
     cols_len, meta_sha, dir_sha) = _V3_HEADER.unpack(raw)
    if magic != V3_MAGIC:
        raise _corrupt(path, "not a qunits snapshot file (bad magic)")
    if version != 3:
        raise SnapshotError(
            f"snapshot file {str(path)!r} has format version {version!r}; "
            f"this build reads versions {SUPPORTED_VERSIONS}"
        )
    return (meta_off, meta_len, dir_off, dir_len, cols_off, cols_len,
            meta_sha, dir_sha)


def _parse_blob(path: Path, blob: bytes, what: str) -> dict:
    try:
        parsed = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise _corrupt(path, f"{what} is not valid JSON ({exc})") from exc
    if not isinstance(parsed, dict):
        raise _corrupt(path, f"{what} is not a JSON object")
    return parsed


def _read_v3_meta(path: Path) -> dict:
    """The meta blob of a v3 container — header-struct plus one seek;
    no term directory or column I/O (the router-cheap path)."""
    try:
        with open(path, "rb") as handle:
            (meta_off, meta_len, _dir_off, _dir_len, _cols_off, _cols_len,
             meta_sha, _dir_sha) = _read_v3_struct(path, handle)
            handle.seek(meta_off)
            meta_blob = handle.read(meta_len)
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc
    if len(meta_blob) < meta_len:
        raise _corrupt(path, "truncated meta blob (truncated?)")
    if hashlib.sha256(meta_blob).digest() != meta_sha:
        raise _corrupt(path, "meta checksum mismatch (corrupted)")
    return _parse_blob(path, meta_blob, "meta blob")


class _V3Backing:
    """An open mmap over one v3 container, shared by every lazy view of
    the snapshot.

    Owns the map plus the parsed meta/directory, materializes individual
    columns on demand, and verifies each column's sha256 exactly once (on
    first touch — cold start never pays for columns it does not read).
    The mapping is read-only; it is closed explicitly by transient users
    (header/doc_id reads) and otherwise lives as long as the snapshot
    referencing it, keeping the file's inode alive even across a
    concurrent re-save/prune of the generation (POSIX semantics).
    """

    def __init__(self, path: Path, handle, view: mmap.mmap, meta: dict,
                 directory: dict, cols_off: int, cols_len: int):
        self.path = path
        self._handle = handle
        self._view = view
        self.meta = meta
        self.directory = directory
        self._cols_off = cols_off
        self._cols_len = cols_len
        self.container_end = cols_off + cols_len
        self._verified: set[tuple[int, int]] = set()
        self._term_doc_ids: dict[str, tuple[str, ...]] = {}
        try:
            docs = directory["docs"]
            self.term_directory = directory["terms"]
            self._scorer_directory = directory.get("scorers", {})
            doc_ids = json.loads(
                self.column(docs["doc_ids"]).decode("utf-8"))
        except (KeyError, TypeError) as exc:
            self.close()
            raise _corrupt(
                path, f"malformed term directory ({exc!r})") from exc
        except (ValueError, UnicodeDecodeError) as exc:
            self.close()
            raise _corrupt(
                path, f"doc_id column is not valid JSON ({exc})") from exc
        except SnapshotError:
            self.close()
            raise
        if not isinstance(doc_ids, list) or \
                not all(isinstance(doc_id, str) for doc_id in doc_ids):
            self.close()
            raise _corrupt(path, "doc_id column is not a list of strings")
        self.doc_ids: list[str] = doc_ids

    @classmethod
    def open(cls, path: Path) -> "_V3Backing":
        try:
            handle = open(path, "rb")
        except OSError as exc:
            raise SnapshotError(
                f"cannot read snapshot file {str(path)!r}: {exc}") from exc
        try:
            (meta_off, meta_len, dir_off, dir_len, cols_off, cols_len,
             meta_sha, dir_sha) = _read_v3_struct(path, handle)
            size = os.fstat(handle.fileno()).st_size
            if size < cols_off + cols_len:
                raise _corrupt(
                    path, f"file is {size} bytes but the header promises "
                          f"{cols_off + cols_len} (truncated?)")
            try:
                view = mmap.mmap(handle.fileno(), 0,
                                 access=mmap.ACCESS_READ)
            except (OSError, ValueError) as exc:
                raise _corrupt(path, f"cannot mmap ({exc})") from exc
        except BaseException:
            handle.close()
            raise
        try:
            meta_blob = view[meta_off:meta_off + meta_len]
            if hashlib.sha256(meta_blob).digest() != meta_sha:
                raise _corrupt(path, "meta checksum mismatch (corrupted)")
            dir_blob = view[dir_off:dir_off + dir_len]
            if hashlib.sha256(dir_blob).digest() != dir_sha:
                raise _corrupt(
                    path, "term directory checksum mismatch (corrupted)")
            meta = _parse_blob(path, meta_blob, "meta blob")
            directory = _parse_blob(path, dir_blob, "term directory")
        except BaseException:
            view.close()
            handle.close()
            raise
        return cls(path, handle, view, meta, directory, cols_off, cols_len)

    def close(self) -> None:
        self._view.close()
        self._handle.close()

    # -- columns -------------------------------------------------------------

    def column(self, descriptor) -> bytes:
        """The raw bytes of one column, sha256-verified on first access."""
        try:
            offset, length, sha = descriptor
            offset = int(offset)
            length = int(length)
        except (TypeError, ValueError) as exc:
            raise _corrupt(
                self.path,
                f"malformed column descriptor {descriptor!r}") from exc
        if offset < 0 or length < 0 or offset + length > self._cols_len:
            raise _corrupt(
                self.path,
                f"column [{offset}, {length}] exceeds the {self._cols_len}"
                f"-byte columns region (truncated?)")
        start = self._cols_off + offset
        payload = self._view[start:start + length]
        key = (offset, length)
        if key not in self._verified:
            if hashlib.sha256(payload).hexdigest() != sha:
                raise _corrupt(self.path,
                               "column checksum mismatch (corrupted)")
            self._verified.add(key)
        return payload

    def _term_entry(self, term: str) -> dict:
        entry = self.term_directory[term]  # KeyError = unknown term
        if not isinstance(entry, dict):
            raise _corrupt(self.path,
                           f"malformed directory entry for term {term!r}")
        return entry

    def term_doc_ids(self, term: str) -> tuple[str, ...]:
        """The term's doc_ids, resolved from its interned-position column
        (cached per term — contributions reuse the postings' resolution)."""
        cached = self._term_doc_ids.get(term)
        if cached is None:
            entry = self._term_entry(term)
            try:
                positions = _unpack_u32(self.column(entry["pos"]))
            except KeyError as exc:
                raise _corrupt(
                    self.path, f"term {term!r} directory entry is missing "
                               f"its {exc.args[0]!r} column") from exc
            doc_ids = self.doc_ids
            try:
                cached = tuple(doc_ids[i] for i in positions)
            except IndexError:
                raise _corrupt(
                    self.path,
                    f"term {term!r} references a document position outside "
                    f"this file's {len(doc_ids)} document records") from None
            self._term_doc_ids[term] = cached
        return cached

    def term_postings(self, term: str) -> tuple[Posting, ...]:
        """Materialize one term's postings tuple from its columns.

        Raises ``KeyError`` for a term the directory does not hold (the
        lazy postings mapping's contract) and ``SnapshotError`` for
        malformed or corrupted columns.
        """
        entry = self._term_entry(term)
        doc_ids = self.term_doc_ids(term)
        try:
            tfs = _unpack_f64(self.column(entry["tf"]))
        except KeyError as exc:
            raise _corrupt(
                self.path, f"term {term!r} directory entry is missing its "
                           f"{exc.args[0]!r} column") from exc
        if len(tfs) != len(doc_ids):
            raise _corrupt(
                self.path, f"term {term!r} has {len(doc_ids)} positions "
                           f"but {len(tfs)} frequencies")
        return tuple(Posting(doc_id, tf)
                     for doc_id, tf in zip(doc_ids, tfs))

    def term_contributions(self, scorer_key, term: str):
        """The persisted :class:`~repro.ir.index.TermContributions` for
        ``(scorer_key, term)``, or ``None`` when none was saved."""
        per_term = self._scorer_directory.get(repr(scorer_key))
        entry = per_term.get(term) if isinstance(per_term, dict) else None
        if entry is None or term not in self.term_directory:
            return None
        try:
            contributions = tuple(_unpack_f64(self.column(entry["contrib"])))
            bound = entry["bound"]
        except (TypeError, KeyError) as exc:
            raise _corrupt(
                self.path, f"malformed contribution entry for term "
                           f"{term!r} ({exc!r})") from exc
        doc_ids = self.term_doc_ids(term)
        if len(contributions) != len(doc_ids):
            raise _corrupt(
                self.path, f"term {term!r} has {len(doc_ids)} postings but "
                           f"{len(contributions)} persisted contributions")
        return TermContributions(doc_ids, contributions, bound)

    def term_block_bounds(self, scorer_key, term: str, block_size: int):
        """The persisted block-max bounds for ``(scorer_key, term)`` at
        exactly ``block_size``, or ``None`` when none match."""
        per_term = self._scorer_directory.get(repr(scorer_key))
        entry = per_term.get(term) if isinstance(per_term, dict) else None
        if entry is None or not isinstance(entry, dict) or \
                entry.get("block_size") != block_size:
            return None
        try:
            blocks = tuple(_unpack_f64(self.column(entry["blocks"])))
        except KeyError as exc:
            raise _corrupt(
                self.path, f"malformed block-bound entry for term "
                           f"{term!r} ({exc!r})") from exc
        n = len(self.term_doc_ids(term))
        if len(blocks) != -(-n // block_size):
            raise _corrupt(
                self.path, f"term {term!r} has {len(blocks)} block bounds "
                           f"for {n} postings at block size {block_size}")
        return blocks

    # -- vectors -------------------------------------------------------------

    def vector_index(self):
        """The persisted :class:`~repro.ir.vector.VectorIndex`, or
        ``None`` when this container carries no vector extents (files
        written before the hybrid backend, migrated v1/v2 files, or
        saves with ``vectors=None`` — the graceful-degradation case the
        hybrid strategy falls back to lexical on)."""
        entry = self.directory.get("vectors")
        if entry is None:
            return None
        from repro.ir.vector import VectorIndex

        try:
            doc_ids = json.loads(
                self.column(entry["doc_ids"]).decode("utf-8"))
            matrix = _unpack_f64(self.column(entry["matrix"]))
            dims = int(entry["dims"])
            config = entry["embedder"]
        except (KeyError, TypeError, ValueError,
                UnicodeDecodeError) as exc:
            raise _corrupt(
                self.path,
                f"malformed vector extents ({exc!r})") from exc
        if not isinstance(doc_ids, list) or not isinstance(config, dict):
            raise _corrupt(self.path, "malformed vector extents")
        try:
            return VectorIndex(tuple(doc_ids), matrix, dims, config)
        except ValueError as exc:
            raise _corrupt(
                self.path, f"vector extents are inconsistent "
                           f"({exc})") from exc

    # -- documents and deltas ------------------------------------------------

    def doc_lengths_mapping(self) -> dict[str, float]:
        """``doc_id -> weighted length`` from the length column."""
        try:
            lengths = _unpack_f64(
                self.column(self.directory["docs"]["doc_lengths"]))
        except (TypeError, KeyError) as exc:
            raise _corrupt(self.path,
                           "missing document length column") from exc
        if len(lengths) != len(self.doc_ids):
            raise _corrupt(
                self.path, f"{len(self.doc_ids)} documents but "
                           f"{len(lengths)} stored lengths")
        return dict(zip(self.doc_ids, lengths))

    def inline_documents(self) -> dict[str, Document]:
        """Parse the standalone layout's inline document blob (one whole-
        blob parse, on first document access)."""
        descriptor = self.directory["docs"].get("documents")
        if descriptor is None:
            raise _corrupt(
                self.path, "snapshot is docstore-backed but was asked for "
                           "inline documents")
        try:
            records = json.loads(self.column(descriptor).decode("utf-8"))
            documents = {}
            for record in records:
                doc_id, document, _length = _doc_from_record(record)
                documents[doc_id] = document
        except (KeyError, TypeError, ValueError,
                UnicodeDecodeError) as exc:
            raise _corrupt(
                self.path, f"malformed document blob ({exc!r})") from exc
        if set(documents) != set(self.doc_ids):
            raise _corrupt(self.path,
                           "document blob does not match the doc_id column")
        return documents

    def delta_lines(self) -> list[str]:
        """Any delta-segment text trailing the container, as lines."""
        if len(self._view) <= self.container_end:
            return []
        tail = self._view[self.container_end:]
        try:
            text = tail.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _corrupt(
                self.path, f"delta tail is not UTF-8 ({exc})") from exc
        return text.splitlines(keepends=True)


class _LazyPostings(Mapping):
    """``term -> tuple[Posting, ...]`` materialized per term from the
    mmap'd columns, cached after first touch.  Pickles as a plain dict
    (materializing everything) — mmap handles do not cross processes."""

    __slots__ = ("_backing", "_cache")

    def __init__(self, backing: _V3Backing):
        self._backing = backing
        self._cache: dict[str, tuple[Posting, ...]] = {}

    def __getitem__(self, term: str) -> tuple[Posting, ...]:
        try:
            return self._cache[term]
        except KeyError:
            pass
        plist = self._backing.term_postings(term)
        self._cache[term] = plist
        return plist

    def __iter__(self):
        return iter(self._backing.term_directory)

    def __len__(self) -> int:
        return len(self._backing.term_directory)

    def __contains__(self, term) -> bool:
        return term in self._backing.term_directory

    def __reduce__(self):
        return (dict, (dict(self),))


class _LazyDocuments(Mapping):
    """``doc_id -> Document`` for the standalone layout: keys come from
    the (eagerly loaded) doc_id column, bodies from one whole-blob parse
    deferred until the first document access.  Pickles as a plain dict."""

    __slots__ = ("_backing", "_documents", "_ids")

    def __init__(self, backing: _V3Backing):
        self._backing = backing
        self._documents: dict[str, Document] | None = None
        self._ids: frozenset[str] | None = None

    def _materialized(self) -> dict[str, Document]:
        if self._documents is None:
            self._documents = self._backing.inline_documents()
        return self._documents

    def __getitem__(self, doc_id: str) -> Document:
        return self._materialized()[doc_id]

    def __iter__(self):
        return iter(self._backing.doc_ids)

    def __len__(self) -> int:
        return len(self._backing.doc_ids)

    def __contains__(self, doc_id) -> bool:
        if self._ids is None:
            self._ids = frozenset(self._backing.doc_ids)
        return doc_id in self._ids

    def __reduce__(self):
        return (dict, (dict(self),))


# -- snapshot readers --------------------------------------------------------


def read_snapshot_header(path: str | os.PathLike) -> dict:
    """The parsed header of a snapshot file (magic/version checked).

    Cheap enough for routers that need a shard file's Bloom filter or
    partition coordinates without its postings: one line for JSON-lines
    formats, the fixed struct header plus the meta blob for v3
    containers (the term directory and columns are not touched).

    Raises:
        SnapshotError: on unreadable files, bad magic, or an unsupported
            format version.
    """
    path = Path(path)
    if _probe_magic(path) == V3_MAGIC:
        return _read_v3_meta(path)
    try:
        with open(path, encoding="utf-8") as handle:
            first = handle.readline()
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise _corrupt(path, f"header is not UTF-8 ({exc})") from exc
    if not first:
        raise _corrupt(path, "empty file")
    header = _parse_line(path, first, "header")
    if header.get("magic") != FORMAT_MAGIC:
        raise _corrupt(path, "not a qunits snapshot file (bad magic)")
    if header.get("format_version") not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"snapshot file {str(path)!r} has format version "
            f"{header.get('format_version')!r}; this build reads versions "
            f"{SUPPORTED_VERSIONS}"
        )
    return header


def load_snapshot(path: str | os.PathLike,
                  store: DocumentStore | None = None) -> IndexSnapshot:
    """Read a snapshot saved by :func:`save_snapshot` (or the legacy v1
    writer), applying any delta segments.

    Args:
        path: the snapshot file.
        store: the document store backing the file's ``ref`` records.
            When ``None`` and the header names a docstore, the store is
            loaded from the sibling file automatically; pass a pre-loaded
            store to share one copy of the documents across many snapshot
            loads (what :meth:`~repro.core.store.CollectionStore.load`
            does).

    Returns:
        A fully self-contained snapshot: it answers searches (and hands
        out documents) without any live index.  Documents resolved through
        a store are *shared* with it, not copied.

    Raises:
        SnapshotError: on missing/truncated files, checksum mismatches
            (base or delta), format-version mismatches, dangling document
            references, and analyzer disagreements with the store.
    """
    snapshot, _header, _segments = _load_snapshot_file(Path(path), store)
    return snapshot


def load_snapshot_with_header(path: str | os.PathLike,
                              store: DocumentStore | None = None,
                              ) -> tuple[IndexSnapshot, dict]:
    """Like :func:`load_snapshot`, but also returning the parsed header.

    One file read serves callers that need header fields (shard
    coordinates, a Bloom filter) alongside the snapshot — re-reading
    the header through :func:`read_snapshot_header` would open and
    parse the file a second time, a cost
    :meth:`~repro.core.store.CollectionStore.load` pays once per
    definition on the cold-start path.
    """
    snapshot, header, _segments = _load_snapshot_file(Path(path), store)
    return snapshot, header


def delta_segment_count(path: str | os.PathLike) -> int:
    """How many delta segments trail the base snapshot in ``path``
    (0 for version-1 files and freshly compacted version-2 files)."""
    _snapshot, _header, segments = _load_snapshot_file(Path(path), None)
    return segments


def _load_snapshot_file(path: Path, store: DocumentStore | None,
                        ) -> tuple[IndexSnapshot, dict, int]:
    if _probe_magic(path) == V3_MAGIC:
        return _load_v3(path, store)
    lines = _read_lines(path)
    if len(lines) < 2:
        raise _corrupt(path, "missing header or footer (truncated?)")
    header = _parse_line(path, lines[0], "header")
    if header.get("magic") != FORMAT_MAGIC:
        raise _corrupt(path, "not a qunits snapshot file (bad magic)")
    format_version = header.get("format_version")
    if format_version == 1:
        return _load_v1(path, lines, header), header, 0
    if format_version == 2:
        return _load_v2(path, lines, header, store)
    raise SnapshotError(
        f"snapshot file {str(path)!r} has format version "
        f"{format_version!r}; this build reads versions {SUPPORTED_VERSIONS}"
    )


def _verify_base_digest(path: Path, lines: list[str], footer: dict) -> None:
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
    if digest.hexdigest() != footer.get("sha256"):
        raise _corrupt(path, "checksum mismatch (corrupted)")


def _load_v1(path: Path, lines: list[str], header: dict) -> IndexSnapshot:
    """The legacy single-file layout: footer last, documents inline."""
    footer_line = lines[-1]
    if not footer_line.endswith("\n"):
        raise _corrupt(path, "unterminated final line (truncated?)")
    footer = _parse_line(path, footer_line, "footer")
    if footer.get("t") != "end":
        raise _corrupt(path, "missing end-of-file footer (truncated?)")
    body = lines[1:-1]
    expected_records = header.get("stored_documents", 0) + header.get(
        "stored_terms", 0)
    if footer.get("records") != len(body) or expected_records != len(body):
        raise _corrupt(
            path,
            f"expected {expected_records} records, found {len(body)} "
            f"(truncated?)",
        )
    _verify_base_digest(path, lines[:-1], footer)

    analyzer = Analyzer.from_config(header.get("analyzer", {}))
    documents: dict[str, Document] = {}
    doc_lengths: dict[str, float] = {}
    postings: dict[str, tuple[Posting, ...]] = {}
    doc_frequencies: dict[str, int] = {}
    # A file can pass the checksum yet lack required keys (e.g. written by
    # a foreign tool); that is still a malformed snapshot, never a raw
    # KeyError escaping to the caller.
    try:
        for i, line in enumerate(body):
            record = _parse_line(path, line, f"record {i + 1}")
            kind = record.get("t")
            if kind == "doc":
                doc_id, document, length = _doc_from_record(record)
                documents[doc_id] = document
                doc_lengths[doc_id] = length
            elif kind == "term":
                term = record["term"]
                postings[term] = tuple(
                    Posting(doc_id, weighted_tf)
                    for doc_id, weighted_tf in record["postings"])
                doc_frequencies[term] = record["df"]
            else:
                raise _corrupt(path, f"record {i + 1} has unknown type {kind!r}")

        if len(documents) != header["stored_documents"]:
            raise _corrupt(path, "document record count does not match header")
        if len(postings) != header["stored_terms"]:
            raise _corrupt(path, "term record count does not match header")
        return IndexSnapshot(
            version=header["index_version"],
            analyzer=analyzer,
            documents=documents,
            postings=postings,
            doc_lengths=doc_lengths,
            doc_frequencies=doc_frequencies,
            document_count=header["document_count"],
            average_document_length=header["average_document_length"],
            min_document_length=header["min_document_length"],
        )
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise _corrupt(path, f"malformed record structure ({exc})") from exc


def _load_v2(path: Path, lines: list[str], header: dict,
             store: DocumentStore | None) -> tuple[IndexSnapshot, dict, int]:
    """The document-store + postings-overlay layout, plus delta segments."""
    try:
        expected_records = header["stored_documents"] + header["stored_terms"]
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    footer_index = 1 + expected_records
    if len(lines) <= footer_index:
        raise _corrupt(
            path,
            f"expected {expected_records} records before the footer, found "
            f"{len(lines) - 1} lines (truncated?)",
        )
    footer_line = lines[footer_index]
    if not footer_line.endswith("\n"):
        raise _corrupt(path, "unterminated footer line (truncated?)")
    footer = _parse_line(path, footer_line, "footer")
    if footer.get("t") != "end":
        raise _corrupt(path, "missing base footer (truncated?)")
    if footer.get("records") != expected_records:
        raise _corrupt(path, "footer record count does not match header")
    _verify_base_digest(path, lines[:footer_index], footer)

    docstore_name = header.get("docstore")
    if docstore_name is not None and store is None:
        store = load_document_store(path.parent / docstore_name)
    analyzer = Analyzer.from_config(header.get("analyzer", {}))
    if store is not None and store.analyzer != analyzer:
        raise SnapshotError(
            f"snapshot {str(path)!r} was built with analyzer {analyzer!r}, "
            f"but its document store uses {store.analyzer!r}; refusing to "
            f"mix tokenizations"
        )

    documents: dict[str, Document] = {}
    doc_lengths: dict[str, float] = {}
    postings: dict[str, tuple[Posting, ...]] = {}
    doc_frequencies: dict[str, int] = {}
    doc_order: list[str] = []  # record order; postings intern into it
    body = lines[1:footer_index]
    try:
        for i, line in enumerate(body):
            record = _parse_line(path, line, f"record {i + 1}")
            kind = record.get("t")
            if kind == "doc":
                doc_id, document, length = _doc_from_record(record)
                documents[doc_id] = document
                doc_lengths[doc_id] = length
                doc_order.append(doc_id)
            elif kind == "ref":
                doc_id = record["id"]
                if store is None:
                    raise _corrupt(
                        path, f"record {i + 1} references a document store "
                              f"but the header names none")
                if doc_id not in store.documents:
                    raise _corrupt(
                        path, f"document {doc_id!r} is not in the document "
                              f"store")
                documents[doc_id] = store.documents[doc_id]
                doc_lengths[doc_id] = store.doc_lengths[doc_id]
                doc_order.append(doc_id)
            elif kind == "term":
                term = record["term"]
                plist = []
                for index, weighted_tf in record["postings"]:
                    if not isinstance(index, int) or \
                            not 0 <= index < len(doc_order):
                        raise _corrupt(
                            path, f"term {term!r} references document index "
                                  f"{index!r}, outside this file's "
                                  f"{len(doc_order)} document records")
                    plist.append(Posting(doc_order[index], weighted_tf))
                postings[term] = tuple(plist)
                doc_frequencies[term] = record["df"]
            else:
                raise _corrupt(path, f"record {i + 1} has unknown type {kind!r}")
        if len(documents) != header["stored_documents"]:
            raise _corrupt(path, "document record count does not match header")
        if len(postings) != header["stored_terms"]:
            raise _corrupt(path, "term record count does not match header")

        stats = {
            "index_version": header["index_version"],
            "document_count": header["document_count"],
            "average_document_length": header["average_document_length"],
            "min_document_length": header["min_document_length"],
        }
        segments = _apply_deltas(path, lines[footer_index + 1:], documents,
                                 doc_lengths, postings, doc_frequencies,
                                 stats)
        return IndexSnapshot(
            version=stats["index_version"],
            analyzer=analyzer,
            documents=documents,
            postings=postings,
            doc_lengths=doc_lengths,
            doc_frequencies=doc_frequencies,
            document_count=stats["document_count"],
            average_document_length=stats["average_document_length"],
            min_document_length=stats["min_document_length"],
        ), header, segments
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise _corrupt(path, f"malformed record structure ({exc})") from exc


def _resolve_v3_store(path: Path, backing: _V3Backing,
                      store: DocumentStore | None) -> DocumentStore | None:
    """Resolve (and analyzer-check) the document store a v3 container's
    meta names, mirroring the v2 ``ref`` resolution rules."""
    docstore_name = backing.meta.get("docstore")
    if docstore_name is not None and store is None:
        store = load_document_store(path.parent / docstore_name)
    if store is not None:
        analyzer = Analyzer.from_config(backing.meta.get("analyzer", {}))
        if store.analyzer != analyzer:
            raise SnapshotError(
                f"snapshot {str(path)!r} was built with analyzer "
                f"{analyzer!r}, but its document store uses "
                f"{store.analyzer!r}; refusing to mix tokenizations"
            )
    return store


def _v3_documents(path: Path, backing: _V3Backing,
                  store: DocumentStore | None):
    """The documents mapping for a v3 load: store-shared dict for the
    docstore layout, a lazily parsed view for the standalone layout."""
    if backing.meta.get("docstore") is not None:
        if store is None:
            raise _corrupt(
                path, "snapshot references a document store but the meta "
                      "blob names none")
        documents: dict[str, Document] = {}
        for doc_id in backing.doc_ids:
            if doc_id not in store.documents:
                raise _corrupt(
                    path, f"document {doc_id!r} is not in the document "
                          f"store")
            documents[doc_id] = store.documents[doc_id]
        return documents
    return _LazyDocuments(backing)


def _columnar_snapshot(path: Path, backing: _V3Backing,
                       documents) -> ColumnarIndexSnapshot:
    """Assemble the lazy column-backed snapshot over an open backing."""
    meta = backing.meta
    try:
        if len(backing.doc_ids) != meta["stored_documents"]:
            raise _corrupt(path, "document record count does not match "
                                 "header")
        if len(backing.term_directory) != meta["stored_terms"]:
            raise _corrupt(path, "term record count does not match header")
        doc_frequencies: dict[str, int] = {}
        for term, entry in backing.term_directory.items():
            doc_frequencies[term] = entry["df"]
        return ColumnarIndexSnapshot(
            backing=backing,
            mmap_path=path,
            version=meta["index_version"],
            analyzer=Analyzer.from_config(meta.get("analyzer", {})),
            documents=documents,
            postings=_LazyPostings(backing),
            doc_lengths=backing.doc_lengths_mapping(),
            doc_frequencies=doc_frequencies,
            document_count=meta["document_count"],
            average_document_length=meta["average_document_length"],
            min_document_length=meta["min_document_length"],
        )
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise _corrupt(path, f"malformed record structure ({exc})") from exc


def _load_v3(path: Path, store: DocumentStore | None,
             ) -> tuple[IndexSnapshot, dict, int]:
    """The binary columnar container (mmap-backed, columns on demand).

    A delta-free container loads as a :class:`ColumnarIndexSnapshot`
    whose postings/contributions materialize per term from the map — the
    O(header + term directory) cold-start path.  A container with a
    trailing delta tail is materialized eagerly (postings mutate during
    folding), exactly like a v2 load.
    """
    backing = _V3Backing.open(path)
    try:
        meta = backing.meta
        if meta.get("magic") != FORMAT_MAGIC:
            raise _corrupt(path, "meta blob carries the wrong magic")
        store = _resolve_v3_store(path, backing, store)
        documents = _v3_documents(path, backing, store)
        delta_tail = backing.delta_lines()
        if not delta_tail:
            return _columnar_snapshot(path, backing, documents), meta, 0
        # Deltas mutate postings/documents in place: materialize the
        # columns into plain dicts, fold, and drop the map.
        try:
            documents = dict(documents)
            doc_lengths = backing.doc_lengths_mapping()
            postings = {term: backing.term_postings(term)
                        for term in backing.term_directory}
            doc_frequencies = {term: entry["df"]
                               for term, entry
                               in backing.term_directory.items()}
            if len(documents) != meta["stored_documents"]:
                raise _corrupt(path, "document record count does not match "
                                     "header")
            if len(postings) != meta["stored_terms"]:
                raise _corrupt(path, "term record count does not match "
                                     "header")
            stats = {
                "index_version": meta["index_version"],
                "document_count": meta["document_count"],
                "average_document_length": meta["average_document_length"],
                "min_document_length": meta["min_document_length"],
            }
            segments = _apply_deltas(path, delta_tail, documents,
                                     doc_lengths, postings, doc_frequencies,
                                     stats)
            return IndexSnapshot(
                version=stats["index_version"],
                analyzer=Analyzer.from_config(meta.get("analyzer", {})),
                documents=documents,
                postings=postings,
                doc_lengths=doc_lengths,
                doc_frequencies=doc_frequencies,
                document_count=stats["document_count"],
                average_document_length=stats["average_document_length"],
                min_document_length=stats["min_document_length"],
            ), meta, segments
        except KeyError as exc:
            raise _corrupt(
                path, f"missing required key {exc.args[0]!r}") from exc
        except (TypeError, ValueError) as exc:
            raise _corrupt(
                path, f"malformed record structure ({exc})") from exc
        finally:
            backing.close()
    except BaseException:
        backing.close()
        raise


def open_scoring_snapshot(path: str | os.PathLike) -> IndexSnapshot:
    """Open a snapshot for scoring only, skipping document bodies.

    For a delta-free v3 container this is the zero-copy worker path: the
    columns are mmap'd, no document store is opened, no document blob is
    parsed, and postings materialize per queried term — what a process-
    mode shard worker calls instead of receiving a pickled snapshot over
    the fork boundary (N workers then share one OS page cache).  Any
    other file (v1/v2, or a v3 container with a delta tail) falls back
    to a full :func:`load_snapshot` and returns its
    :meth:`~repro.ir.index.IndexSnapshot.scoring_view`.

    Raises:
        SnapshotError: as :func:`load_snapshot`.
    """
    path = Path(path)
    if _probe_magic(path) == V3_MAGIC:
        backing = _V3Backing.open(path)
        try:
            if backing.meta.get("magic") != FORMAT_MAGIC:
                raise _corrupt(path, "meta blob carries the wrong magic")
            if not backing.delta_lines():
                return _columnar_snapshot(path, backing, documents={})
        except BaseException:
            backing.close()
            raise
        backing.close()
    return load_snapshot(path).scoring_view()


def _apply_deltas(path: Path, rest: list[str], documents: dict,
                  doc_lengths: dict, postings: dict, doc_frequencies: dict,
                  stats: dict) -> int:
    """Fold trailing delta segments into the base mappings; returns the
    segment count.  Each segment is independently checksummed; a truncated
    or corrupted tail raises rather than silently serving a prefix."""
    segments = 0
    i = 0
    while i < len(rest):
        what = f"delta segment {segments + 1}"
        delta_line = rest[i]
        if i + 1 >= len(rest) or not rest[i + 1].endswith("\n"):
            raise _corrupt(path, f"{what} is missing its checksum line "
                                 f"(truncated?)")
        record = _parse_line(path, delta_line, what)
        end = _parse_line(path, rest[i + 1], f"{what} checksum")
        if record.get("t") != "delta" or end.get("t") != "delta-end":
            raise _corrupt(path, f"{what} has malformed record types")
        if record.get("seq") != segments + 1 or end.get("seq") != segments + 1:
            raise _corrupt(path, f"{what} is out of sequence")
        if hashlib.sha256(delta_line.encode("utf-8")).hexdigest() != \
                end.get("sha256"):
            raise _corrupt(path, f"{what} checksum mismatch (corrupted)")
        fold_delta_record(record, documents, doc_lengths, postings,
                          doc_frequencies, stats, path=path, what=what)
        segments += 1
        i += 2
    return segments


def fold_delta_record(record: dict, documents: dict, doc_lengths: dict,
                      postings: dict, doc_frequencies: dict, stats: dict,
                      *, path: Path | None = None,
                      what: str = "delta record") -> None:
    """Fold one verified delta record into base index mappings, in place.

    Shared by the per-snapshot delta tail (:func:`_apply_deltas`) and the
    collection journal (:func:`read_collection_journal` consumers): the
    record's documents and posting additions are merged and the running
    statistics in ``stats`` (``index_version``, ``document_count``,
    ``average_document_length``, ``min_document_length``) replaced with
    the record's.  A term entry with no surviving additions (a record
    narrowed by :func:`filter_delta_record`) still refreshes the term's
    document frequency when the term exists locally — shard snapshots
    carry collection-wide statistics — but never creates an empty
    postings list.

    Raises:
        SnapshotError: if the record re-adds a document already present.
    """
    for doc_record in record["docs"]:
        doc_id, document, length = _doc_from_record(doc_record)
        if doc_id in documents:
            raise _corrupt(path or Path("<journal>"),
                           f"{what} re-adds document {doc_id!r}")
        documents[doc_id] = document
        doc_lengths[doc_id] = length
    for term, df, additions in record["terms"]:
        if not additions:
            if term in postings:
                doc_frequencies[term] = df
            continue
        merged = list(postings.get(term, ()))
        merged.extend(Posting(doc_id, weighted_tf)
                      for doc_id, weighted_tf in additions)
        merged.sort(key=lambda posting: posting.doc_id)
        postings[term] = tuple(merged)
        doc_frequencies[term] = df
    stats["index_version"] = record["index_version"]
    stats["document_count"] = record["document_count"]
    stats["average_document_length"] = record["average_document_length"]
    stats["min_document_length"] = record["min_document_length"]


def build_delta_record(analyzer, documents, doc_lengths, document_frequency,
                       new_ids, *, seq: int, index_version: int,
                       document_count: int, average_document_length: float,
                       min_document_length: float) -> dict:
    """Serialize ``new_ids`` as one delta record (sans checksum line).

    Per-term weighted frequencies are recomputed by re-tokenizing each
    document with the same accumulation order as
    :meth:`~repro.ir.index.InvertedIndex.add`, so the floats in the
    record are bit-identical to live postings — O(new documents' text),
    never a scan of the index.  ``document_frequency`` must report the
    post-addition (current) collection-wide df for a term; the trailing
    statistics describe the post-addition index state.

    Shared by :class:`SnapshotJournal` (per-snapshot delta tails) and the
    collection-level journal (:func:`append_collection_txn`).
    """
    docs_records = []
    term_additions: dict[str, list[tuple[str, float]]] = {}
    for doc_id in new_ids:
        document = documents[doc_id]
        length = doc_lengths[doc_id]
        docs_records.append(_doc_record(doc_id, document, length))
        weighted_tfs: dict[str, float] = {}
        for field_name, text in document.fields:
            weight = document.weight(field_name)
            for token in analyzer.tokens(text):
                weighted_tfs[token] = weighted_tfs.get(token, 0.0) + weight
        for term, weighted_tf in weighted_tfs.items():
            term_additions.setdefault(term, []).append(
                (doc_id, weighted_tf))
    terms_payload = [
        [term, document_frequency(term), sorted(additions)]
        for term, additions in sorted(term_additions.items())
    ]
    return {
        "t": "delta",
        "seq": seq,
        "index_version": index_version,
        "document_count": document_count,
        "average_document_length": average_document_length,
        "min_document_length": min_document_length,
        "docs": docs_records,
        "terms": terms_payload,
    }


def filter_delta_record(record: dict, keep) -> dict:
    """A copy of a delta record narrowed to documents where ``keep(doc_id)``
    is true — how a collection journal's global records are projected onto
    one hash shard.  Collection-wide statistics (document counts, per-term
    document frequencies, average/min length, index version) are preserved
    verbatim: shard snapshots carry global statistics by design, so scores
    stay float-identical to the unsharded path."""
    return {
        **record,
        "docs": [doc_record for doc_record in record["docs"]
                 if keep(doc_record["id"])],
        "terms": [[term, df,
                   [addition for addition in additions if keep(addition[0])]]
                  for term, df, additions in record["terms"]],
    }


# -- compaction --------------------------------------------------------------


def compact_snapshot(path: str | os.PathLike,
                     store: DocumentStore | None = None) -> int:
    """Fold a snapshot file's delta segments into a clean base.

    Rewrites ``path`` atomically as a delta-free version-3 base with the
    same contents, returning the number of segments folded.  A
    docstore-backed file with no deltas keeps its store-reference layout
    (and shard/bloom header fields); a file that carried deltas is
    rewritten standalone, since delta documents are inline and not
    present in the store.  Version-1 and version-2 files are upgraded to
    the columnar version-3 container (what ``repro migrate`` runs).  An
    already-compact version-3 file is left untouched (returns 0, no
    rewrite).

    Args:
        path: the snapshot file.
        store: optional pre-loaded document store backing the file's
            ``ref`` records, so directory-wide compaction parses the
            shared store once instead of once per file.

    Raises:
        SnapshotError: if the file (or any delta segment) fails
            verification.
    """
    path = Path(path)
    snapshot, header, segments = _load_snapshot_file(path, store)
    if segments == 0 and header.get("format_version") == FORMAT_VERSION:
        return 0
    bloom = header.get("bloom")
    if bloom is not None and segments:
        # Delta documents may carry vocabulary the persisted filter has
        # never seen; the folded base must refresh it, or the compacted
        # file would pin a filter with false negatives — routing on it
        # would skip real postings.
        from repro.ir.shard import TermBloomFilter

        bloom = TermBloomFilter.build(snapshot.terms()).to_dict()
    # Old-format files upgrade in place, keeping their docstore linkage;
    # delta-bearing files fold into a standalone base (delta documents
    # are inline and absent from any store, so preserving the reference
    # layout would leave dangling ids).
    docstore = header.get("docstore") if segments == 0 else None
    save_snapshot(snapshot, path, docstore=docstore,
                  shard=header.get("shard"), bloom=bloom)
    return segments


# -- incremental journaling --------------------------------------------------


class SnapshotJournal:
    """Incremental on-disk persistence for a live
    :class:`~repro.ir.index.InvertedIndex`.

    The journal keeps one snapshot file continuously up to date with the
    index: a base snapshot plus checksummed delta segments, one appended
    per :meth:`commit` (O(new documents), never a file rewrite).  In
    ``auto`` mode (the default) the journal subscribes to the index, so
    every :meth:`~repro.ir.index.InvertedIndex.add` appends a segment by
    itself.

    Auto-compaction is size-proportional so bulk ingest stays amortized
    O(1) per document: the journal folds segments into a clean base once
    at least ``compact_threshold`` segments have accumulated *and* the
    delta documents amount to >= 25% of the base (a fixed every-K-adds
    rewrite would make loading N documents O(N^2) in file I/O).
    :meth:`compact` folds on demand regardless.

    Crash safety: the base is written atomically; each delta segment is
    verified against its own sha256 on load, so a torn append is detected
    (and raises) rather than serving a silently truncated index.
    """

    def __init__(self, index: InvertedIndex, path: str | os.PathLike,
                 auto: bool = True,
                 compact_threshold: int = DEFAULT_COMPACT_THRESHOLD):
        """Attach a journal for ``index`` at ``path``.

        If ``path`` does not exist, a base snapshot of the index's current
        contents is written.  If it exists, it must hold a subset of the
        index's documents (the usual flow is :meth:`open`, which rebuilds
        the index from the file first); documents present in the file but
        unknown to the index raise.

        Args:
            index: the live index to persist.
            path: the snapshot file to keep up to date.
            auto: subscribe to the index so every ``add`` commits itself.
            compact_threshold: minimum delta segments before the journal
                considers folding them into a clean base (must be >= 1;
                folding additionally waits until the delta reaches 25% of
                the base — see the class docstring).

        Raises:
            ValueError: on a non-positive ``compact_threshold``.
            SnapshotError: if an existing file fails verification or is
                not a subset of the index.
        """
        if compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {compact_threshold}")
        self.index = index
        self.path = Path(path)
        self.compact_threshold = compact_threshold
        if self.path.exists():
            persisted, _header, segments = _load_snapshot_file(self.path, None)
            unknown = [doc_id for doc_id in persisted._documents
                       if doc_id not in index._documents]
            if unknown:
                raise SnapshotError(
                    f"journal file {str(self.path)!r} holds documents the "
                    f"index does not (e.g. {unknown[0]!r}); it is not a "
                    f"snapshot of this index"
                )
            self._persisted = set(persisted._documents)
            self._segments = segments
            minimum = persisted.min_document_length
        else:
            save_snapshot(index.snapshot(), self.path)
            self._persisted = set(index._documents)
            self._segments = 0
            minimum = index.snapshot().min_document_length
        # Compaction accounting: documents in the base at the last full
        # rewrite vs. documents appended as deltas since.  An existing
        # file's base/delta split is approximated as all-base, which only
        # delays the next fold.
        self._base_docs = len(self._persisted)
        self._delta_docs = 0
        # Running minimum positive document length (None = none yet), kept
        # incrementally so commits never rescan the whole index.
        self._min_length: float | None = minimum if minimum > 0 else None
        if auto:
            index.subscribe(self._on_add)

    @classmethod
    def open(cls, path: str | os.PathLike, analyzer: Analyzer | None = None,
             **kwargs) -> "SnapshotJournal":
        """Open (or create) a journaled index at ``path``.

        If the file exists, a live index is rebuilt from it
        (:meth:`~repro.ir.index.InvertedIndex.from_snapshot`) and the
        journal resumes appending; otherwise an empty index is created and
        a base snapshot written.  ``analyzer`` applies only to the
        fresh-index case.

        Returns:
            The journal; its live index is at :attr:`SnapshotJournal.index`.
        """
        path = Path(path)
        if path.exists():
            index = InvertedIndex.from_snapshot(load_snapshot(path))
        else:
            index = InvertedIndex(analyzer)
        return cls(index, path, **kwargs)

    @property
    def delta_segments(self) -> int:
        """Delta segments currently trailing the base in the file."""
        return self._segments

    def pending(self) -> list[str]:
        """Doc_ids added to the index but not yet committed, sorted.

        Scans the index (O(index size)) — the manual-commit path; the
        ``auto`` listener commits each added document directly without
        this scan.
        """
        return sorted(doc_id for doc_id in self.index._documents
                      if doc_id not in self._persisted)

    def _on_add(self, document: Document) -> None:
        if document.doc_id not in self._persisted:
            self._commit_ids([document.doc_id])

    def commit(self) -> int:
        """Append one delta segment covering every uncommitted document.

        Returns the number of documents persisted (0 = nothing pending, no
        write).  The append itself is O(new documents' text); auto-compacts
        once :attr:`compact_threshold` segments accumulate.
        """
        new_ids = self.pending()
        if not new_ids:
            return 0
        self._commit_ids(new_ids)
        return len(new_ids)

    def _commit_ids(self, new_ids: list[str]) -> None:
        self._append_segment(new_ids)
        self._persisted.update(new_ids)
        self._segments += 1
        self._delta_docs += len(new_ids)
        # Size-proportional folding: enough segments *and* a delta worth
        # >= 25% of the base, so the total rewrite cost of a bulk load is
        # a geometric series (amortized O(1) per document).
        if self._segments >= self.compact_threshold and \
                self._delta_docs * 4 >= self._base_docs:
            self.compact()

    def compact(self) -> Path:
        """Rewrite the file as a clean base of the index's full current
        contents (folding deltas *and* anything uncommitted); returns the
        path."""
        save_snapshot(self.index.snapshot(), self.path)
        self._persisted = set(self.index._documents)
        self._segments = 0
        self._base_docs = len(self._persisted)
        self._delta_docs = 0
        minimum = self.index.snapshot().min_document_length
        self._min_length = minimum if minimum > 0 else None
        return self.path

    def snapshot(self) -> IndexSnapshot:
        """The live index's current frozen snapshot (not a file read)."""
        return self.index.snapshot()

    def _append_segment(self, new_ids: list[str]) -> None:
        """Serialize ``new_ids`` as one checksummed delta segment.

        Per-term weighted frequencies are recomputed by re-tokenizing each
        document with the same accumulation order as
        :meth:`InvertedIndex.add`, so the floats in the segment are
        bit-identical to the live postings — O(new documents' text), never
        a scan of the index.
        """
        index = self.index
        for doc_id in new_ids:
            length = index._doc_lengths[doc_id]
            if length > 0 and (self._min_length is None
                               or length < self._min_length):
                self._min_length = length
        record = build_delta_record(
            index.analyzer, index._documents, index._doc_lengths,
            index.document_frequency, new_ids,
            seq=self._segments + 1,
            index_version=index.version,
            document_count=index.document_count,
            average_document_length=index.average_document_length,
            min_document_length=self._min_length or 0.0,
        )
        line = _dumps(record) + "\n"
        end = {
            "t": "delta-end",
            "seq": self._segments + 1,
            "sha256": hashlib.sha256(line.encode("utf-8")).hexdigest(),
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.write(_dumps(end) + "\n")


# -- collection-level journal -------------------------------------------------


def append_collection_txn(path: str | os.PathLike, generation: str,
                          committed_bytes: int, records: list[dict]) -> int:
    """Append one transaction of delta records to a collection journal.

    Each record is a :func:`build_delta_record` payload carrying an extra
    ``"target"`` key (``None`` for the global snapshot, else a definition
    name) and a per-target ``seq``; it is written as a ``delta`` line
    followed by a ``delta-end`` checksum line (sha256 of the full delta
    line, target included).  The file is created with its header line
    when ``committed_bytes`` is 0; otherwise the file is truncated back
    to ``committed_bytes`` first, so a torn tail from an earlier crashed
    append can never corrupt the new transaction.  The write is fsynced.

    Returns the new committed byte size — the caller must record it in
    the collection manifest (atomically) to commit the transaction;
    until that swap lands, readers ignore everything past the manifest's
    ``committed_bytes`` and keep serving the previous state.

    Raises:
        SnapshotError: if the journal cannot be written.
    """
    path = Path(path)
    chunks = []
    for record in records:
        line = _dumps(record) + "\n"
        end = {
            "t": "delta-end",
            "seq": record["seq"],
            "target": record.get("target"),
            "sha256": hashlib.sha256(line.encode("utf-8")).hexdigest(),
        }
        chunks.append(line)
        chunks.append(_dumps(end) + "\n")
    payload = "".join(chunks).encode("utf-8")
    try:
        if committed_bytes <= 0 or not path.exists():
            header = _dumps({"magic": JOURNAL_MAGIC,
                             "format_version": JOURNAL_VERSION,
                             "generation": generation}) + "\n"
            payload = header.encode("utf-8") + payload
            with open(path, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            return len(payload)
        with open(path, "r+b") as handle:
            handle.truncate(committed_bytes)
            handle.seek(0, os.SEEK_END)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        return committed_bytes + len(payload)
    except OSError as exc:
        raise SnapshotError(
            f"cannot append to collection journal {str(path)!r}: {exc}"
        ) from exc


def read_collection_journal(path: str | os.PathLike, committed_bytes: int,
                            *, generation: str | None = None,
                            expected_counts: dict | None = None,
                            ) -> dict:
    """Parse and verify the committed prefix of a collection journal.

    Only the first ``committed_bytes`` bytes (the extent the manifest
    committed) are read: bytes past that point are a torn append whose
    manifest swap never landed and are ignored — crash recovery is
    simply serving the previous committed state.  Corruption *within*
    the committed prefix (bad checksum, out-of-sequence records, a short
    file) raises: the manifest vouched for those bytes.

    Args:
        path: the ``journal-<generation>.jrnl`` file.
        generation: when given, the header's generation must match.
        expected_counts: optional ``{target: segment count}`` mapping
            (``None`` key = global) from the manifest; the committed
            prefix must hold exactly these per-target record counts.

    Returns:
        ``{target: [record, ...]}`` with per-target records in commit
        order (``seq`` 1..n verified), targets being ``None`` for the
        global snapshot or a definition name.

    Raises:
        SnapshotError: on any verification failure.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            data = handle.read(committed_bytes)
    except OSError as exc:
        raise SnapshotError(
            f"cannot read collection journal {str(path)!r}: {exc}") from exc
    if len(data) < committed_bytes:
        raise _corrupt(path, f"journal holds {len(data)} bytes but the "
                             f"manifest committed {committed_bytes}")
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise _corrupt(path, f"not UTF-8 text ({exc})") from exc
    if not text.endswith("\n"):
        raise _corrupt(path, "committed journal prefix does not end on a "
                             "record boundary")
    lines = text.splitlines(keepends=True)
    if not lines:
        raise _corrupt(path, "journal is empty")
    header = _parse_line(path, lines[0], "journal header")
    if header.get("magic") != JOURNAL_MAGIC:
        raise _corrupt(path, "journal header carries the wrong magic")
    if header.get("format_version") != JOURNAL_VERSION:
        raise _corrupt(path, f"unsupported journal format_version "
                             f"{header.get('format_version')!r}")
    if generation is not None and header.get("generation") != generation:
        raise _corrupt(path, f"journal generation "
                             f"{header.get('generation')!r} does not match "
                             f"the manifest's {generation!r}")
    by_target: dict = {}
    i = 1
    while i < len(lines):
        what = f"journal record {i}"
        delta_line = lines[i]
        if i + 1 >= len(lines):
            raise _corrupt(path, f"{what} is missing its checksum line "
                                 f"inside the committed prefix")
        record = _parse_line(path, delta_line, what)
        end = _parse_line(path, lines[i + 1], f"{what} checksum")
        if record.get("t") != "delta" or end.get("t") != "delta-end":
            raise _corrupt(path, f"{what} has malformed record types")
        target = record.get("target")
        if target is not None and not isinstance(target, str):
            raise _corrupt(path, f"{what} has a malformed target")
        if end.get("target") != target:
            raise _corrupt(path, f"{what} checksum names a different target")
        seen = by_target.setdefault(target, [])
        if record.get("seq") != len(seen) + 1 or end.get("seq") != \
                len(seen) + 1:
            raise _corrupt(path, f"{what} is out of sequence for target "
                                 f"{target!r}")
        if hashlib.sha256(delta_line.encode("utf-8")).hexdigest() != \
                end.get("sha256"):
            raise _corrupt(path, f"{what} checksum mismatch (corrupted)")
        seen.append(record)
        i += 2
    if expected_counts is not None:
        actual = {target: len(records)
                  for target, records in by_target.items()}
        expected = {target: count for target, count in
                    expected_counts.items() if count}
        if actual != expected:
            raise _corrupt(path, f"committed journal segment counts "
                                 f"{actual!r} do not match the manifest's "
                                 f"{expected!r}")
    return by_target

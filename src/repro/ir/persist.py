"""Persistent snapshot storage: document store + postings overlays + deltas.

Collections in this system are expensive to derive (schema analysis, query
logs, instance materialization) but cheap to query; persistence splits the
two across process lifetimes: :func:`save_snapshot` writes a snapshot to
disk once, :func:`load_snapshot` brings it back in a form that serves
queries with no live :class:`~repro.ir.index.InvertedIndex` behind it.

``docs/PERSISTENCE.md`` specifies the on-disk formats precisely (record
grammars, checksum rules, version negotiation, compaction semantics); this
docstring is the orientation summary.

Format version 2 (current)
--------------------------

Version 2 splits a saved generation into a **document store** plus
**postings overlays**:

- A *document store* file (:func:`save_document_store`) holds every
  decorated instance document — and its weighted length — exactly once.
  Its header carries a ``doc_id -> [byte offset, length]`` index so a
  shard server can read *only its partition's* documents
  (:func:`load_document_store_partition`) instead of parsing the store.
- Snapshot files written with ``docstore=<name>`` record only ``ref``
  lines (doc_ids) instead of full ``doc`` records; on load the referenced
  :class:`DocumentStore` supplies the shared :class:`~repro.ir.documents.
  Document` objects, so N snapshots over the same corpus pin one copy of
  the documents instead of N.
- Snapshot files written without a ``docstore`` inline their documents
  (the standalone layout, used by :class:`SnapshotJournal`).

All files are UTF-8 JSON-lines with a header line, body records, and a
footer carrying a sha256 digest of every preceding line; truncation,
corruption, and unknown format versions raise
:class:`~repro.errors.SnapshotError` (files are never silently
reinterpreted).  Version-1 files (single snapshot, inline documents) are
still read; :func:`save_snapshot_v1` keeps the legacy writer available for
compatibility tests and size comparisons.

Delta segments
--------------

A version-2 snapshot file may carry **delta segments** after its base
footer: each segment is one ``delta`` record (new inline documents,
postings additions, refreshed collection statistics) followed by a
``delta-end`` record with a sha256 of the segment line.  Appending a delta
is O(new documents), not O(file) — :class:`SnapshotJournal` hooks
:meth:`~repro.ir.index.InvertedIndex.add` so every add appends a
checksummed segment instead of rewriting the snapshot, and compaction
(:func:`compact_snapshot`, or the journal's threshold) folds segments back
into a clean base.

Fidelity
--------

Floats are serialized with :mod:`json`, whose ``repr``-based encoding is
shortest-round-trip exact, so a loaded snapshot scores *float-identical*
to the one saved.  Tuples inside document metadata are encoded as JSON
arrays and restored as tuples on load, preserving
:class:`~repro.ir.documents.Document` equality across the round trip.
Delta postings additions are recomputed with the same per-token
accumulation order as :meth:`~repro.ir.index.InvertedIndex.add`, so
journaled snapshots also load float-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.errors import SnapshotError
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import IndexSnapshot, InvertedIndex, Posting

__all__ = [
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "STORE_MAGIC",
    "STORE_VERSION",
    "DEFAULT_COMPACT_THRESHOLD",
    "DocumentStore",
    "SnapshotJournal",
    "save_snapshot",
    "save_snapshot_v1",
    "load_snapshot",
    "load_snapshot_with_header",
    "save_document_store",
    "load_document_store",
    "load_document_store_partition",
    "read_snapshot_doc_ids",
    "read_snapshot_header",
    "compact_snapshot",
    "delta_segment_count",
]

FORMAT_MAGIC = "qunits-snapshot"
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
STORE_MAGIC = "qunits-docstore"
STORE_VERSION = 1
#: Minimum number of delta segments before a :class:`SnapshotJournal`
#: considers folding them back into a clean base snapshot (folding also
#: waits until the delta reaches 25% of the base — see the class docs).
DEFAULT_COMPACT_THRESHOLD = 16


def _to_jsonable(value: object) -> object:
    """Metadata values for serialization (tuples become arrays)."""
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise SnapshotError(
        f"unserializable metadata value of type {type(value).__name__}: {value!r}"
    )


def _from_jsonable(value: object) -> object:
    """Inverse of :func:`_to_jsonable` (arrays come back as tuples)."""
    if isinstance(value, list):
        return tuple(_from_jsonable(item) for item in value)
    return value


def _dumps(record: dict) -> str:
    try:
        return json.dumps(record, ensure_ascii=False, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"unserializable snapshot record: {exc}") from exc


def _doc_record(doc_id: str, document: Document, length: float) -> dict:
    return {
        "t": "doc",
        "id": doc_id,
        "fields": [[name, text] for name, text in document.fields],
        "weights": [[name, weight] for name, weight in document.field_weights],
        "meta": [[key, _to_jsonable(value)]
                 for key, value in document.metadata],
        "length": length,
    }


def _doc_from_record(record: dict) -> tuple[str, Document, float]:
    doc_id = record["id"]
    document = Document(
        doc_id=doc_id,
        fields=tuple((name, text) for name, text in record["fields"]),
        field_weights=tuple((name, weight)
                            for name, weight in record["weights"]),
        metadata=tuple((key, _from_jsonable(value))
                       for key, value in record["meta"]),
    )
    return doc_id, document, record["length"]


def _write_checksummed(path: Path, records) -> Path:
    """Write header+body ``records`` plus a digest footer, atomically.

    The file is written to a temporary sibling and renamed into place, so
    readers never observe a half-written file.  The footer's ``records``
    count excludes the header line, matching the loaders' expectations.
    A record may be a pre-serialized line (``str`` ending in a newline)
    instead of a dict — used when the writer needed the exact bytes up
    front, e.g. to compute the document store's offset index.
    """
    digest = hashlib.sha256()
    count = -1  # the header line is not a body record
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in records:
                line = record if isinstance(record, str) \
                    else _dumps(record) + "\n"
                digest.update(line.encode("utf-8"))
                handle.write(line)
                count += 1
            footer = {"t": "end", "records": count,
                      "sha256": digest.hexdigest()}
            handle.write(_dumps(footer) + "\n")
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    os.replace(tmp_path, path)
    return path


def _corrupt(path: Path, reason: str) -> SnapshotError:
    return SnapshotError(f"snapshot file {str(path)!r} is unreadable: {reason}")


def _parse_line(path: Path, line: str, what: str) -> dict:
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise _corrupt(path, f"{what} is not valid JSON ({exc})") from exc
    if not isinstance(record, dict):
        raise _corrupt(path, f"{what} is not a JSON object")
    return record


def _read_lines(path: Path) -> list[str]:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.readlines()
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc


# -- document store ----------------------------------------------------------


class DocumentStore:
    """The deduplicated per-generation document store.

    One store holds every decorated instance document (and its weighted
    length) exactly once; snapshot files saved against it reference
    documents by id (``ref`` records) instead of inlining them.  All
    snapshots loaded against the same store *share* its
    :class:`~repro.ir.documents.Document` objects, so a generation's
    documents are pinned in memory once no matter how many per-definition
    or per-shard snapshots reference them.
    """

    def __init__(self, analyzer: Analyzer, documents: dict[str, Document],
                 doc_lengths: dict[str, float]):
        """Wrap already-built mappings (no copies are taken).

        Args:
            analyzer: the analyzer the documents were tokenized with
                (checked against snapshots loaded from this store).
            documents: ``doc_id -> Document`` for every stored document.
            doc_lengths: ``doc_id -> weighted length``, same keys.
        """
        self.analyzer = analyzer
        self.documents = documents
        self.doc_lengths = doc_lengths

    @classmethod
    def from_snapshot(cls, snapshot: IndexSnapshot) -> "DocumentStore":
        """A store holding (copies of the mappings of) every document in
        ``snapshot`` — typically the collection-wide global snapshot, whose
        documents are a superset of every per-definition snapshot's."""
        return cls(snapshot.analyzer, dict(snapshot._documents),
                   dict(snapshot._doc_lengths))

    def __len__(self) -> int:
        return len(self.documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self.documents


def save_document_store(store: DocumentStore, path: str | os.PathLike) -> Path:
    """Write ``store`` to ``path`` (atomically); returns the path.

    The header carries a ``doc_index`` — ``doc_id -> [byte offset,
    length]`` of each document record, offsets relative to the end of the
    header line — so partition loads
    (:func:`load_document_store_partition`) can seek straight to their
    own documents instead of parsing the whole store.  The index has to
    live in the header (readable before any record), which is why the
    record lines are serialized up front here: their exact byte lengths
    are part of the header.

    Raises:
        SnapshotError: if a document carries unserializable metadata.
    """
    path = Path(path)
    doc_lines: list[str] = []
    doc_index: dict[str, list[int]] = {}
    offset = 0
    for doc_id in sorted(store.documents):
        line = _dumps(_doc_record(doc_id, store.documents[doc_id],
                                  store.doc_lengths[doc_id])) + "\n"
        size = len(line.encode("utf-8"))
        doc_index[doc_id] = [offset, size]
        doc_lines.append(line)
        offset += size
    header = {
        "magic": STORE_MAGIC,
        "format_version": STORE_VERSION,
        "analyzer": store.analyzer.config(),
        "stored_documents": len(store.documents),
        "doc_index": doc_index,
    }
    return _write_checksummed(path, [header, *doc_lines])


def load_document_store(path: str | os.PathLike) -> DocumentStore:
    """Read a document store saved by :func:`save_document_store`.

    Raises:
        SnapshotError: on missing/truncated files, checksum mismatches,
            and format-version mismatches.
    """
    path = Path(path)
    lines = _read_lines(path)
    if len(lines) < 2:
        raise _corrupt(path, "missing header or footer (truncated?)")
    header = _parse_line(path, lines[0], "header")
    if header.get("magic") != STORE_MAGIC:
        raise _corrupt(path, "not a qunits document store file (bad magic)")
    if header.get("format_version") != STORE_VERSION:
        raise SnapshotError(
            f"document store {str(path)!r} has format version "
            f"{header.get('format_version')!r}; this build reads version "
            f"{STORE_VERSION}"
        )
    footer_line = lines[-1]
    if not footer_line.endswith("\n"):
        raise _corrupt(path, "unterminated final line (truncated?)")
    footer = _parse_line(path, footer_line, "footer")
    if footer.get("t") != "end":
        raise _corrupt(path, "missing end-of-file footer (truncated?)")
    body = lines[1:-1]
    if footer.get("records") != len(body) or \
            header.get("stored_documents") != len(body):
        raise _corrupt(path, f"expected {header.get('stored_documents')} "
                             f"records, found {len(body)} (truncated?)")
    digest = hashlib.sha256()
    for line in lines[:-1]:
        digest.update(line.encode("utf-8"))
    if digest.hexdigest() != footer.get("sha256"):
        raise _corrupt(path, "checksum mismatch (corrupted)")

    documents: dict[str, Document] = {}
    doc_lengths: dict[str, float] = {}
    try:
        for i, line in enumerate(body):
            record = _parse_line(path, line, f"record {i + 1}")
            if record.get("t") != "doc":
                raise _corrupt(
                    path, f"record {i + 1} has unexpected type "
                          f"{record.get('t')!r}")
            doc_id, document, length = _doc_from_record(record)
            if doc_id in documents:
                raise _corrupt(path, f"duplicate document {doc_id!r}")
            documents[doc_id] = document
            doc_lengths[doc_id] = length
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise _corrupt(path, f"malformed record structure ({exc})") from exc
    return DocumentStore(Analyzer.from_config(header.get("analyzer", {})),
                         documents, doc_lengths)


def load_document_store_partition(path: str | os.PathLike,
                                  doc_ids) -> DocumentStore:
    """Read only ``doc_ids`` from a document store — O(partition), not
    O(store).

    Uses the header's ``doc_index`` (``doc_id -> [offset, length]``) to
    seek directly to the requested records; a store written before the
    index existed falls back to a full :func:`load_document_store` (whose
    result is a superset of the partition).  Partition reads trade the
    whole-file sha256 verification for the O(partition) I/O that is their
    point; each fetched record is still verified to parse and to carry
    the expected doc_id, and a full load (which always verifies the
    checksum) remains available for auditing.

    Args:
        path: the store file written by :func:`save_document_store`.
        doc_ids: the document ids to load (an iterable; duplicates are
            read once).

    Raises:
        SnapshotError: on unreadable files, bad magic, format-version
            mismatches, ids absent from the store, or records that fail
            verification.
    """
    path = Path(path)
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc
    with handle:
        first = handle.readline()
        if not first:
            raise _corrupt(path, "empty file")
        try:
            header = _parse_line(path, first.decode("utf-8"), "header")
        except UnicodeDecodeError as exc:
            raise _corrupt(path, f"header is not UTF-8 ({exc})") from exc
        if header.get("magic") != STORE_MAGIC:
            raise _corrupt(path, "not a qunits document store file "
                                 "(bad magic)")
        if header.get("format_version") != STORE_VERSION:
            raise SnapshotError(
                f"document store {str(path)!r} has format version "
                f"{header.get('format_version')!r}; this build reads "
                f"version {STORE_VERSION}"
            )
        doc_index = header.get("doc_index")
        if doc_index is None:
            # Pre-index store: the only way to find a record is to read
            # them all.  The full loader also verifies the checksum.
            return load_document_store(path)
        base = len(first)
        documents: dict[str, Document] = {}
        doc_lengths: dict[str, float] = {}
        for doc_id in sorted(set(doc_ids)):
            entry = doc_index.get(doc_id)
            if entry is None:
                raise _corrupt(
                    path, f"document {doc_id!r} is not in the store's "
                          f"doc_index")
            try:
                offset, size = entry
                handle.seek(base + offset)
                raw = handle.read(size).decode("utf-8")
            except (TypeError, ValueError, UnicodeDecodeError) as exc:
                raise _corrupt(
                    path, f"doc_index entry for {doc_id!r} is unusable "
                          f"({exc})") from exc
            record = _parse_line(path, raw, f"document {doc_id!r}")
            if record.get("t") != "doc" or record.get("id") != doc_id:
                raise _corrupt(
                    path, f"doc_index for {doc_id!r} points at a "
                          f"{record.get('t')!r} record for "
                          f"{record.get('id')!r}")
            try:
                _, document, length = _doc_from_record(record)
            except KeyError as exc:
                raise _corrupt(
                    path, f"missing required key {exc.args[0]!r}") from exc
            except (TypeError, ValueError) as exc:
                raise _corrupt(
                    path, f"malformed record structure ({exc})") from exc
            documents[doc_id] = document
            doc_lengths[doc_id] = length
    return DocumentStore(Analyzer.from_config(header.get("analyzer", {})),
                         documents, doc_lengths)


def read_snapshot_doc_ids(path: str | os.PathLike) -> list[str]:
    """The doc_ids of a snapshot file's base records (``ref`` or inline
    ``doc``), in record order — without loading postings, resolving a
    document store, or applying deltas.

    This is how a shard server discovers *which* documents its partition
    needs before fetching exactly those from the store
    (:func:`load_document_store_partition`).

    Raises:
        SnapshotError: on unreadable/truncated files, bad magic, or an
            unsupported format version.
    """
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            first = handle.readline()
            if not first:
                raise _corrupt(path, "empty file")
            header = _parse_line(path, first, "header")
            if header.get("magic") != FORMAT_MAGIC:
                raise _corrupt(path, "not a qunits snapshot file (bad magic)")
            if header.get("format_version") not in SUPPORTED_VERSIONS:
                raise SnapshotError(
                    f"snapshot file {str(path)!r} has format version "
                    f"{header.get('format_version')!r}; this build reads "
                    f"versions {SUPPORTED_VERSIONS}"
                )
            count = header.get("stored_documents", 0)
            doc_ids: list[str] = []
            for i in range(count):
                line = handle.readline()
                if not line:
                    raise _corrupt(
                        path, f"expected {count} document records, found "
                              f"{i} (truncated?)")
                record = _parse_line(path, line, f"record {i + 1}")
                if record.get("t") not in ("doc", "ref") or \
                        "id" not in record:
                    raise _corrupt(
                        path, f"record {i + 1} is not a document record")
                doc_ids.append(record["id"])
            return doc_ids
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc


# -- snapshot writers --------------------------------------------------------


def save_snapshot(snapshot: IndexSnapshot, path: str | os.PathLike, *,
                  docstore: str | None = None, shard: dict | None = None,
                  bloom: dict | None = None) -> Path:
    """Write ``snapshot`` to ``path`` in the version-2 format; returns it.

    The file is written to a temporary sibling and renamed into place, so
    readers never observe a half-written snapshot.  Any delta segments a
    previous file at ``path`` carried are folded away by the rewrite.

    Args:
        snapshot: the frozen snapshot to persist.
        docstore: file name (relative to ``path``'s directory) of the
            document store the snapshot's documents live in.  When given,
            the file records only ``ref`` lines — the deduplicated layout;
            the caller is responsible for the store actually covering the
            snapshot's doc_ids.  When ``None``, documents are inlined
            (standalone layout).
        shard: optional ``{"index": i, "count": n}`` partition coordinates
            recorded in the header (see :mod:`repro.ir.shard`).
        bloom: optional serialized term Bloom filter
            (:meth:`~repro.ir.shard.TermBloomFilter.to_dict`) recorded in
            the header so routers can read it without parsing postings.

    Raises:
        SnapshotError: if a document carries unserializable metadata.
    """
    path = Path(path)
    doc_ids = sorted(snapshot._documents)
    terms = sorted(snapshot._postings)
    header = {
        "magic": FORMAT_MAGIC,
        "format_version": FORMAT_VERSION,
        "index_version": snapshot.version,
        "analyzer": snapshot.analyzer.config(),
        "document_count": snapshot.document_count,
        "average_document_length": snapshot.average_document_length,
        "min_document_length": snapshot.min_document_length,
        "stored_documents": len(doc_ids),
        "stored_terms": len(terms),
        "docstore": docstore,
        "shard": shard,
        "bloom": bloom,
    }

    # Version-2 term records intern doc_ids: postings carry the position
    # of the document in this file's (sorted) doc/ref record order, not
    # the doc_id string — qunit doc_ids are long, and repeating them per
    # (term, document) would dominate the file size.
    position = {doc_id: i for i, doc_id in enumerate(doc_ids)}

    def records():
        yield header
        for doc_id in doc_ids:
            if docstore is None:
                yield _doc_record(doc_id, snapshot._documents[doc_id],
                                  snapshot._doc_lengths[doc_id])
            else:
                yield {"t": "ref", "id": doc_id}
        for term in terms:
            yield {
                "t": "term",
                "term": term,
                "df": snapshot._doc_frequencies.get(
                    term, len(snapshot._postings[term])),
                "postings": [[position[posting.doc_id], posting.weighted_tf]
                             for posting in snapshot._postings[term]],
            }

    return _write_checksummed(path, records())


def save_snapshot_v1(snapshot: IndexSnapshot, path: str | os.PathLike) -> Path:
    """Write ``snapshot`` in the legacy version-1 layout (inline documents,
    no docstore/shard/bloom header fields, no delta support).

    Kept for compatibility tests and for measuring what the deduplicated
    version-2 layout saves; new code should use :func:`save_snapshot`.
    """
    path = Path(path)
    doc_ids = sorted(snapshot._documents)
    terms = sorted(snapshot._postings)
    header = {
        "magic": FORMAT_MAGIC,
        "format_version": 1,
        "index_version": snapshot.version,
        "analyzer": snapshot.analyzer.config(),
        "document_count": snapshot.document_count,
        "average_document_length": snapshot.average_document_length,
        "min_document_length": snapshot.min_document_length,
        "stored_documents": len(doc_ids),
        "stored_terms": len(terms),
    }

    def records():
        yield header
        for doc_id in doc_ids:
            yield _doc_record(doc_id, snapshot._documents[doc_id],
                              snapshot._doc_lengths[doc_id])
        for term in terms:
            yield {
                "t": "term",
                "term": term,
                "df": snapshot._doc_frequencies.get(
                    term, len(snapshot._postings[term])),
                "postings": [[posting.doc_id, posting.weighted_tf]
                             for posting in snapshot._postings[term]],
            }

    return _write_checksummed(path, records())


# -- snapshot readers --------------------------------------------------------


def read_snapshot_header(path: str | os.PathLike) -> dict:
    """The parsed header line of a snapshot file (magic/version checked).

    Reads one line only — cheap enough for routers that need a shard
    file's Bloom filter or partition coordinates without its postings.

    Raises:
        SnapshotError: on unreadable files, bad magic, or an unsupported
            format version.
    """
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            first = handle.readline()
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc
    if not first:
        raise _corrupt(path, "empty file")
    header = _parse_line(path, first, "header")
    if header.get("magic") != FORMAT_MAGIC:
        raise _corrupt(path, "not a qunits snapshot file (bad magic)")
    if header.get("format_version") not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"snapshot file {str(path)!r} has format version "
            f"{header.get('format_version')!r}; this build reads versions "
            f"{SUPPORTED_VERSIONS}"
        )
    return header


def load_snapshot(path: str | os.PathLike,
                  store: DocumentStore | None = None) -> IndexSnapshot:
    """Read a snapshot saved by :func:`save_snapshot` (or the legacy v1
    writer), applying any delta segments.

    Args:
        path: the snapshot file.
        store: the document store backing the file's ``ref`` records.
            When ``None`` and the header names a docstore, the store is
            loaded from the sibling file automatically; pass a pre-loaded
            store to share one copy of the documents across many snapshot
            loads (what :meth:`~repro.core.collection.QunitCollection.load`
            does).

    Returns:
        A fully self-contained snapshot: it answers searches (and hands
        out documents) without any live index.  Documents resolved through
        a store are *shared* with it, not copied.

    Raises:
        SnapshotError: on missing/truncated files, checksum mismatches
            (base or delta), format-version mismatches, dangling document
            references, and analyzer disagreements with the store.
    """
    snapshot, _header, _segments = _load_snapshot_file(Path(path), store)
    return snapshot


def load_snapshot_with_header(path: str | os.PathLike,
                              store: DocumentStore | None = None,
                              ) -> tuple[IndexSnapshot, dict]:
    """Like :func:`load_snapshot`, but also returning the parsed header.

    One file read serves callers that need header fields (shard
    coordinates, a Bloom filter) alongside the snapshot — re-reading
    the header through :func:`read_snapshot_header` would open and
    parse the file a second time, a cost
    :meth:`~repro.core.collection.QunitCollection.load` pays once per
    definition on the cold-start path.
    """
    snapshot, header, _segments = _load_snapshot_file(Path(path), store)
    return snapshot, header


def delta_segment_count(path: str | os.PathLike) -> int:
    """How many delta segments trail the base snapshot in ``path``
    (0 for version-1 files and freshly compacted version-2 files)."""
    _snapshot, _header, segments = _load_snapshot_file(Path(path), None)
    return segments


def _load_snapshot_file(path: Path, store: DocumentStore | None,
                        ) -> tuple[IndexSnapshot, dict, int]:
    lines = _read_lines(path)
    if len(lines) < 2:
        raise _corrupt(path, "missing header or footer (truncated?)")
    header = _parse_line(path, lines[0], "header")
    if header.get("magic") != FORMAT_MAGIC:
        raise _corrupt(path, "not a qunits snapshot file (bad magic)")
    format_version = header.get("format_version")
    if format_version == 1:
        return _load_v1(path, lines, header), header, 0
    if format_version == 2:
        return _load_v2(path, lines, header, store)
    raise SnapshotError(
        f"snapshot file {str(path)!r} has format version "
        f"{format_version!r}; this build reads versions {SUPPORTED_VERSIONS}"
    )


def _verify_base_digest(path: Path, lines: list[str], footer: dict) -> None:
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
    if digest.hexdigest() != footer.get("sha256"):
        raise _corrupt(path, "checksum mismatch (corrupted)")


def _load_v1(path: Path, lines: list[str], header: dict) -> IndexSnapshot:
    """The legacy single-file layout: footer last, documents inline."""
    footer_line = lines[-1]
    if not footer_line.endswith("\n"):
        raise _corrupt(path, "unterminated final line (truncated?)")
    footer = _parse_line(path, footer_line, "footer")
    if footer.get("t") != "end":
        raise _corrupt(path, "missing end-of-file footer (truncated?)")
    body = lines[1:-1]
    expected_records = header.get("stored_documents", 0) + header.get(
        "stored_terms", 0)
    if footer.get("records") != len(body) or expected_records != len(body):
        raise _corrupt(
            path,
            f"expected {expected_records} records, found {len(body)} "
            f"(truncated?)",
        )
    _verify_base_digest(path, lines[:-1], footer)

    analyzer = Analyzer.from_config(header.get("analyzer", {}))
    documents: dict[str, Document] = {}
    doc_lengths: dict[str, float] = {}
    postings: dict[str, tuple[Posting, ...]] = {}
    doc_frequencies: dict[str, int] = {}
    # A file can pass the checksum yet lack required keys (e.g. written by
    # a foreign tool); that is still a malformed snapshot, never a raw
    # KeyError escaping to the caller.
    try:
        for i, line in enumerate(body):
            record = _parse_line(path, line, f"record {i + 1}")
            kind = record.get("t")
            if kind == "doc":
                doc_id, document, length = _doc_from_record(record)
                documents[doc_id] = document
                doc_lengths[doc_id] = length
            elif kind == "term":
                term = record["term"]
                postings[term] = tuple(
                    Posting(doc_id, weighted_tf)
                    for doc_id, weighted_tf in record["postings"])
                doc_frequencies[term] = record["df"]
            else:
                raise _corrupt(path, f"record {i + 1} has unknown type {kind!r}")

        if len(documents) != header["stored_documents"]:
            raise _corrupt(path, "document record count does not match header")
        if len(postings) != header["stored_terms"]:
            raise _corrupt(path, "term record count does not match header")
        return IndexSnapshot(
            version=header["index_version"],
            analyzer=analyzer,
            documents=documents,
            postings=postings,
            doc_lengths=doc_lengths,
            doc_frequencies=doc_frequencies,
            document_count=header["document_count"],
            average_document_length=header["average_document_length"],
            min_document_length=header["min_document_length"],
        )
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise _corrupt(path, f"malformed record structure ({exc})") from exc


def _load_v2(path: Path, lines: list[str], header: dict,
             store: DocumentStore | None) -> tuple[IndexSnapshot, dict, int]:
    """The document-store + postings-overlay layout, plus delta segments."""
    try:
        expected_records = header["stored_documents"] + header["stored_terms"]
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    footer_index = 1 + expected_records
    if len(lines) <= footer_index:
        raise _corrupt(
            path,
            f"expected {expected_records} records before the footer, found "
            f"{len(lines) - 1} lines (truncated?)",
        )
    footer_line = lines[footer_index]
    if not footer_line.endswith("\n"):
        raise _corrupt(path, "unterminated footer line (truncated?)")
    footer = _parse_line(path, footer_line, "footer")
    if footer.get("t") != "end":
        raise _corrupt(path, "missing base footer (truncated?)")
    if footer.get("records") != expected_records:
        raise _corrupt(path, "footer record count does not match header")
    _verify_base_digest(path, lines[:footer_index], footer)

    docstore_name = header.get("docstore")
    if docstore_name is not None and store is None:
        store = load_document_store(path.parent / docstore_name)
    analyzer = Analyzer.from_config(header.get("analyzer", {}))
    if store is not None and store.analyzer != analyzer:
        raise SnapshotError(
            f"snapshot {str(path)!r} was built with analyzer {analyzer!r}, "
            f"but its document store uses {store.analyzer!r}; refusing to "
            f"mix tokenizations"
        )

    documents: dict[str, Document] = {}
    doc_lengths: dict[str, float] = {}
    postings: dict[str, tuple[Posting, ...]] = {}
    doc_frequencies: dict[str, int] = {}
    doc_order: list[str] = []  # record order; postings intern into it
    body = lines[1:footer_index]
    try:
        for i, line in enumerate(body):
            record = _parse_line(path, line, f"record {i + 1}")
            kind = record.get("t")
            if kind == "doc":
                doc_id, document, length = _doc_from_record(record)
                documents[doc_id] = document
                doc_lengths[doc_id] = length
                doc_order.append(doc_id)
            elif kind == "ref":
                doc_id = record["id"]
                if store is None:
                    raise _corrupt(
                        path, f"record {i + 1} references a document store "
                              f"but the header names none")
                if doc_id not in store.documents:
                    raise _corrupt(
                        path, f"document {doc_id!r} is not in the document "
                              f"store")
                documents[doc_id] = store.documents[doc_id]
                doc_lengths[doc_id] = store.doc_lengths[doc_id]
                doc_order.append(doc_id)
            elif kind == "term":
                term = record["term"]
                plist = []
                for index, weighted_tf in record["postings"]:
                    if not isinstance(index, int) or \
                            not 0 <= index < len(doc_order):
                        raise _corrupt(
                            path, f"term {term!r} references document index "
                                  f"{index!r}, outside this file's "
                                  f"{len(doc_order)} document records")
                    plist.append(Posting(doc_order[index], weighted_tf))
                postings[term] = tuple(plist)
                doc_frequencies[term] = record["df"]
            else:
                raise _corrupt(path, f"record {i + 1} has unknown type {kind!r}")
        if len(documents) != header["stored_documents"]:
            raise _corrupt(path, "document record count does not match header")
        if len(postings) != header["stored_terms"]:
            raise _corrupt(path, "term record count does not match header")

        stats = {
            "index_version": header["index_version"],
            "document_count": header["document_count"],
            "average_document_length": header["average_document_length"],
            "min_document_length": header["min_document_length"],
        }
        segments = _apply_deltas(path, lines[footer_index + 1:], documents,
                                 doc_lengths, postings, doc_frequencies,
                                 stats)
        return IndexSnapshot(
            version=stats["index_version"],
            analyzer=analyzer,
            documents=documents,
            postings=postings,
            doc_lengths=doc_lengths,
            doc_frequencies=doc_frequencies,
            document_count=stats["document_count"],
            average_document_length=stats["average_document_length"],
            min_document_length=stats["min_document_length"],
        ), header, segments
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise _corrupt(path, f"malformed record structure ({exc})") from exc


def _apply_deltas(path: Path, rest: list[str], documents: dict,
                  doc_lengths: dict, postings: dict, doc_frequencies: dict,
                  stats: dict) -> int:
    """Fold trailing delta segments into the base mappings; returns the
    segment count.  Each segment is independently checksummed; a truncated
    or corrupted tail raises rather than silently serving a prefix."""
    segments = 0
    i = 0
    while i < len(rest):
        what = f"delta segment {segments + 1}"
        delta_line = rest[i]
        if i + 1 >= len(rest) or not rest[i + 1].endswith("\n"):
            raise _corrupt(path, f"{what} is missing its checksum line "
                                 f"(truncated?)")
        record = _parse_line(path, delta_line, what)
        end = _parse_line(path, rest[i + 1], f"{what} checksum")
        if record.get("t") != "delta" or end.get("t") != "delta-end":
            raise _corrupt(path, f"{what} has malformed record types")
        if record.get("seq") != segments + 1 or end.get("seq") != segments + 1:
            raise _corrupt(path, f"{what} is out of sequence")
        if hashlib.sha256(delta_line.encode("utf-8")).hexdigest() != \
                end.get("sha256"):
            raise _corrupt(path, f"{what} checksum mismatch (corrupted)")
        for doc_record in record["docs"]:
            doc_id, document, length = _doc_from_record(doc_record)
            if doc_id in documents:
                raise _corrupt(path, f"{what} re-adds document {doc_id!r}")
            documents[doc_id] = document
            doc_lengths[doc_id] = length
        for term, df, additions in record["terms"]:
            merged = list(postings.get(term, ()))
            merged.extend(Posting(doc_id, weighted_tf)
                          for doc_id, weighted_tf in additions)
            merged.sort(key=lambda posting: posting.doc_id)
            postings[term] = tuple(merged)
            doc_frequencies[term] = df
        stats["index_version"] = record["index_version"]
        stats["document_count"] = record["document_count"]
        stats["average_document_length"] = record["average_document_length"]
        stats["min_document_length"] = record["min_document_length"]
        segments += 1
        i += 2
    return segments


# -- compaction --------------------------------------------------------------


def compact_snapshot(path: str | os.PathLike,
                     store: DocumentStore | None = None) -> int:
    """Fold a snapshot file's delta segments into a clean base.

    Rewrites ``path`` atomically as a delta-free base snapshot with the
    same contents, returning the number of segments folded.  A
    docstore-backed file with no deltas keeps its ``ref`` layout (and
    shard/bloom header fields); a file that carried deltas is rewritten
    standalone, since delta documents are inline and not present in the
    store.  Version-1 files are upgraded to version 2.  An
    already-compact version-2 file is left untouched (returns 0, no
    rewrite).

    Args:
        path: the snapshot file.
        store: optional pre-loaded document store backing the file's
            ``ref`` records, so directory-wide compaction parses the
            shared store once instead of once per file.

    Raises:
        SnapshotError: if the file (or any delta segment) fails
            verification.
    """
    path = Path(path)
    snapshot, header, segments = _load_snapshot_file(path, store)
    if segments == 0 and header.get("format_version") == FORMAT_VERSION:
        return 0
    bloom = header.get("bloom")
    if bloom is not None and segments:
        # Delta documents may carry vocabulary the persisted filter has
        # never seen; the folded base must refresh it, or the compacted
        # file would pin a filter with false negatives — routing on it
        # would skip real postings.
        from repro.ir.shard import TermBloomFilter

        bloom = TermBloomFilter.build(snapshot.terms()).to_dict()
    # Version-1 files upgrade in place; delta-bearing files fold into a
    # standalone base (delta documents are inline and absent from any
    # store, so preserving ``ref`` layout would leave dangling ids).
    save_snapshot(snapshot, path, shard=header.get("shard"), bloom=bloom)
    return segments


# -- incremental journaling --------------------------------------------------


class SnapshotJournal:
    """Incremental on-disk persistence for a live
    :class:`~repro.ir.index.InvertedIndex`.

    The journal keeps one snapshot file continuously up to date with the
    index: a base snapshot plus checksummed delta segments, one appended
    per :meth:`commit` (O(new documents), never a file rewrite).  In
    ``auto`` mode (the default) the journal subscribes to the index, so
    every :meth:`~repro.ir.index.InvertedIndex.add` appends a segment by
    itself.

    Auto-compaction is size-proportional so bulk ingest stays amortized
    O(1) per document: the journal folds segments into a clean base once
    at least ``compact_threshold`` segments have accumulated *and* the
    delta documents amount to >= 25% of the base (a fixed every-K-adds
    rewrite would make loading N documents O(N^2) in file I/O).
    :meth:`compact` folds on demand regardless.

    Crash safety: the base is written atomically; each delta segment is
    verified against its own sha256 on load, so a torn append is detected
    (and raises) rather than serving a silently truncated index.
    """

    def __init__(self, index: InvertedIndex, path: str | os.PathLike,
                 auto: bool = True,
                 compact_threshold: int = DEFAULT_COMPACT_THRESHOLD):
        """Attach a journal for ``index`` at ``path``.

        If ``path`` does not exist, a base snapshot of the index's current
        contents is written.  If it exists, it must hold a subset of the
        index's documents (the usual flow is :meth:`open`, which rebuilds
        the index from the file first); documents present in the file but
        unknown to the index raise.

        Args:
            index: the live index to persist.
            path: the snapshot file to keep up to date.
            auto: subscribe to the index so every ``add`` commits itself.
            compact_threshold: minimum delta segments before the journal
                considers folding them into a clean base (must be >= 1;
                folding additionally waits until the delta reaches 25% of
                the base — see the class docstring).

        Raises:
            ValueError: on a non-positive ``compact_threshold``.
            SnapshotError: if an existing file fails verification or is
                not a subset of the index.
        """
        if compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {compact_threshold}")
        self.index = index
        self.path = Path(path)
        self.compact_threshold = compact_threshold
        if self.path.exists():
            persisted, _header, segments = _load_snapshot_file(self.path, None)
            unknown = [doc_id for doc_id in persisted._documents
                       if doc_id not in index._documents]
            if unknown:
                raise SnapshotError(
                    f"journal file {str(self.path)!r} holds documents the "
                    f"index does not (e.g. {unknown[0]!r}); it is not a "
                    f"snapshot of this index"
                )
            self._persisted = set(persisted._documents)
            self._segments = segments
            minimum = persisted.min_document_length
        else:
            save_snapshot(index.snapshot(), self.path)
            self._persisted = set(index._documents)
            self._segments = 0
            minimum = index.snapshot().min_document_length
        # Compaction accounting: documents in the base at the last full
        # rewrite vs. documents appended as deltas since.  An existing
        # file's base/delta split is approximated as all-base, which only
        # delays the next fold.
        self._base_docs = len(self._persisted)
        self._delta_docs = 0
        # Running minimum positive document length (None = none yet), kept
        # incrementally so commits never rescan the whole index.
        self._min_length: float | None = minimum if minimum > 0 else None
        if auto:
            index.subscribe(self._on_add)

    @classmethod
    def open(cls, path: str | os.PathLike, analyzer: Analyzer | None = None,
             **kwargs) -> "SnapshotJournal":
        """Open (or create) a journaled index at ``path``.

        If the file exists, a live index is rebuilt from it
        (:meth:`~repro.ir.index.InvertedIndex.from_snapshot`) and the
        journal resumes appending; otherwise an empty index is created and
        a base snapshot written.  ``analyzer`` applies only to the
        fresh-index case.

        Returns:
            The journal; its live index is at :attr:`SnapshotJournal.index`.
        """
        path = Path(path)
        if path.exists():
            index = InvertedIndex.from_snapshot(load_snapshot(path))
        else:
            index = InvertedIndex(analyzer)
        return cls(index, path, **kwargs)

    @property
    def delta_segments(self) -> int:
        """Delta segments currently trailing the base in the file."""
        return self._segments

    def pending(self) -> list[str]:
        """Doc_ids added to the index but not yet committed, sorted.

        Scans the index (O(index size)) — the manual-commit path; the
        ``auto`` listener commits each added document directly without
        this scan.
        """
        return sorted(doc_id for doc_id in self.index._documents
                      if doc_id not in self._persisted)

    def _on_add(self, document: Document) -> None:
        if document.doc_id not in self._persisted:
            self._commit_ids([document.doc_id])

    def commit(self) -> int:
        """Append one delta segment covering every uncommitted document.

        Returns the number of documents persisted (0 = nothing pending, no
        write).  The append itself is O(new documents' text); auto-compacts
        once :attr:`compact_threshold` segments accumulate.
        """
        new_ids = self.pending()
        if not new_ids:
            return 0
        self._commit_ids(new_ids)
        return len(new_ids)

    def _commit_ids(self, new_ids: list[str]) -> None:
        self._append_segment(new_ids)
        self._persisted.update(new_ids)
        self._segments += 1
        self._delta_docs += len(new_ids)
        # Size-proportional folding: enough segments *and* a delta worth
        # >= 25% of the base, so the total rewrite cost of a bulk load is
        # a geometric series (amortized O(1) per document).
        if self._segments >= self.compact_threshold and \
                self._delta_docs * 4 >= self._base_docs:
            self.compact()

    def compact(self) -> Path:
        """Rewrite the file as a clean base of the index's full current
        contents (folding deltas *and* anything uncommitted); returns the
        path."""
        save_snapshot(self.index.snapshot(), self.path)
        self._persisted = set(self.index._documents)
        self._segments = 0
        self._base_docs = len(self._persisted)
        self._delta_docs = 0
        minimum = self.index.snapshot().min_document_length
        self._min_length = minimum if minimum > 0 else None
        return self.path

    def snapshot(self) -> IndexSnapshot:
        """The live index's current frozen snapshot (not a file read)."""
        return self.index.snapshot()

    def _append_segment(self, new_ids: list[str]) -> None:
        """Serialize ``new_ids`` as one checksummed delta segment.

        Per-term weighted frequencies are recomputed by re-tokenizing each
        document with the same accumulation order as
        :meth:`InvertedIndex.add`, so the floats in the segment are
        bit-identical to the live postings — O(new documents' text), never
        a scan of the index.
        """
        index = self.index
        docs_records = []
        term_additions: dict[str, list[tuple[str, float]]] = {}
        for doc_id in new_ids:
            document = index._documents[doc_id]
            length = index._doc_lengths[doc_id]
            docs_records.append(_doc_record(doc_id, document, length))
            if length > 0 and (self._min_length is None
                               or length < self._min_length):
                self._min_length = length
            weighted_tfs: dict[str, float] = {}
            for field_name, text in document.fields:
                weight = document.weight(field_name)
                for token in index.analyzer.tokens(text):
                    weighted_tfs[token] = weighted_tfs.get(token, 0.0) + weight
            for term, weighted_tf in weighted_tfs.items():
                term_additions.setdefault(term, []).append(
                    (doc_id, weighted_tf))
        terms_payload = [
            [term, index.document_frequency(term), sorted(additions)]
            for term, additions in sorted(term_additions.items())
        ]
        record = {
            "t": "delta",
            "seq": self._segments + 1,
            "index_version": index.version,
            "document_count": index.document_count,
            "average_document_length": index.average_document_length,
            "min_document_length": self._min_length or 0.0,
            "docs": docs_records,
            "terms": terms_payload,
        }
        line = _dumps(record) + "\n"
        end = {
            "t": "delta-end",
            "seq": self._segments + 1,
            "sha256": hashlib.sha256(line.encode("utf-8")).hexdigest(),
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.write(_dumps(end) + "\n")

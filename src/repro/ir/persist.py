"""Persistent :class:`~repro.ir.index.IndexSnapshot` storage.

Collections in this system are expensive to derive (schema analysis, query
logs, instance materialization) but cheap to query; persistence splits the
two across process lifetimes: :func:`save_snapshot` writes a snapshot to
disk once, :func:`load_snapshot` brings it back in a form that serves
queries with no live :class:`~repro.ir.index.InvertedIndex` behind it.

File format (version 1)
-----------------------

A snapshot file is UTF-8 text, one JSON object per line (JSON-lines):

``line 1`` — header::

    {"magic": "qunits-snapshot", "format_version": 1,
     "index_version": <int>,
     "analyzer": {"remove_stopwords": <bool>, "stem": <bool>,
                  "min_token_length": <int>},
     "document_count": <int>, "average_document_length": <float>,
     "min_document_length": <float>,
     "stored_documents": <int>, "stored_terms": <int>}

``stored_documents`` / ``stored_terms`` count the records that follow;
``document_count`` is the *collection-wide* statistic scorers use, which
exceeds ``stored_documents`` for shard snapshots (see
:mod:`repro.ir.shard`).

``next stored_documents lines`` — one document record each::

    {"t": "doc", "id": <doc_id>, "fields": [[name, text], ...],
     "weights": [[name, weight], ...], "meta": [[key, value], ...],
     "length": <float>}

``next stored_terms lines`` — one term record each::

    {"t": "term", "term": <term>, "df": <int>,
     "postings": [[doc_id, weighted_tf], ...]}

``df`` is stored explicitly (not recomputed from the postings length) so
shard snapshots round-trip their collection-wide document frequencies.

``last line`` — footer::

    {"t": "end", "records": <int>, "sha256": <hex digest>}

``sha256`` is the digest of every preceding line's UTF-8 bytes, each
including its trailing newline.  A missing or malformed footer means the
file was truncated; a digest mismatch means it was corrupted; both raise
:class:`~repro.errors.SnapshotError`, as does an unrecognized
``format_version`` (files are never silently reinterpreted).

Fidelity
--------

Floats are serialized with :mod:`json`, whose ``repr``-based encoding is
shortest-round-trip exact, so a loaded snapshot scores *float-identical*
to the one saved.  Tuples inside document metadata are encoded as JSON
arrays and restored as tuples on load, preserving
:class:`~repro.ir.documents.Document` equality across the round trip.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.errors import SnapshotError
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import IndexSnapshot, Posting

__all__ = ["FORMAT_MAGIC", "FORMAT_VERSION", "save_snapshot", "load_snapshot"]

FORMAT_MAGIC = "qunits-snapshot"
FORMAT_VERSION = 1


def _to_jsonable(value: object) -> object:
    """Metadata values for serialization (tuples become arrays)."""
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise SnapshotError(
        f"unserializable metadata value of type {type(value).__name__}: {value!r}"
    )


def _from_jsonable(value: object) -> object:
    """Inverse of :func:`_to_jsonable` (arrays come back as tuples)."""
    if isinstance(value, list):
        return tuple(_from_jsonable(item) for item in value)
    return value


def _dumps(record: dict) -> str:
    try:
        return json.dumps(record, ensure_ascii=False, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"unserializable snapshot record: {exc}") from exc


def save_snapshot(snapshot: IndexSnapshot, path: str | os.PathLike) -> Path:
    """Write ``snapshot`` to ``path`` in the format above; returns the path.

    The file is written to a temporary sibling and renamed into place, so
    readers never observe a half-written snapshot.
    """
    path = Path(path)
    doc_ids = sorted(snapshot._documents)
    terms = sorted(snapshot._postings)
    header = {
        "magic": FORMAT_MAGIC,
        "format_version": FORMAT_VERSION,
        "index_version": snapshot.version,
        "analyzer": snapshot.analyzer.config(),
        "document_count": snapshot.document_count,
        "average_document_length": snapshot.average_document_length,
        "min_document_length": snapshot.min_document_length,
        "stored_documents": len(doc_ids),
        "stored_terms": len(terms),
    }

    def records():
        yield header
        for doc_id in doc_ids:
            document = snapshot._documents[doc_id]
            yield {
                "t": "doc",
                "id": doc_id,
                "fields": [[name, text] for name, text in document.fields],
                "weights": [[name, weight]
                            for name, weight in document.field_weights],
                "meta": [[key, _to_jsonable(value)]
                         for key, value in document.metadata],
                "length": snapshot._doc_lengths[doc_id],
            }
        for term in terms:
            yield {
                "t": "term",
                "term": term,
                "df": snapshot._doc_frequencies.get(
                    term, len(snapshot._postings[term])),
                "postings": [[posting.doc_id, posting.weighted_tf]
                             for posting in snapshot._postings[term]],
            }

    digest = hashlib.sha256()
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in records():
                line = _dumps(record) + "\n"
                digest.update(line.encode("utf-8"))
                handle.write(line)
            footer = {
                "t": "end",
                "records": len(doc_ids) + len(terms),
                "sha256": digest.hexdigest(),
            }
            handle.write(_dumps(footer) + "\n")
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    os.replace(tmp_path, path)
    return path


def _corrupt(path: Path, reason: str) -> SnapshotError:
    return SnapshotError(f"snapshot file {str(path)!r} is unreadable: {reason}")


def _parse_line(path: Path, line: str, what: str) -> dict:
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise _corrupt(path, f"{what} is not valid JSON ({exc})") from exc
    if not isinstance(record, dict):
        raise _corrupt(path, f"{what} is not a JSON object")
    return record


def load_snapshot(path: str | os.PathLike) -> IndexSnapshot:
    """Read a snapshot saved by :func:`save_snapshot`.

    Raises :class:`~repro.errors.SnapshotError` on missing/truncated files,
    checksum mismatches, and format-version mismatches.  The returned
    snapshot is fully self-contained: it answers searches (and hands out
    documents) without any live index.
    """
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot file {str(path)!r}: {exc}") from exc
    if len(lines) < 2:
        raise _corrupt(path, "missing header or footer (truncated?)")

    header = _parse_line(path, lines[0], "header")
    if header.get("magic") != FORMAT_MAGIC:
        raise _corrupt(path, "not a qunits snapshot file (bad magic)")
    format_version = header.get("format_version")
    if format_version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot file {str(path)!r} has format version "
            f"{format_version!r}; this build reads version {FORMAT_VERSION}"
        )

    footer_line = lines[-1]
    if not footer_line.endswith("\n"):
        raise _corrupt(path, "unterminated final line (truncated?)")
    footer = _parse_line(path, footer_line, "footer")
    if footer.get("t") != "end":
        raise _corrupt(path, "missing end-of-file footer (truncated?)")

    body = lines[1:-1]
    expected_records = header.get("stored_documents", 0) + header.get(
        "stored_terms", 0)
    if footer.get("records") != len(body) or expected_records != len(body):
        raise _corrupt(
            path,
            f"expected {expected_records} records, found {len(body)} "
            f"(truncated?)",
        )
    digest = hashlib.sha256()
    for line in lines[:-1]:
        digest.update(line.encode("utf-8"))
    if digest.hexdigest() != footer.get("sha256"):
        raise _corrupt(path, "checksum mismatch (corrupted)")

    analyzer = Analyzer.from_config(header.get("analyzer", {}))
    documents: dict[str, Document] = {}
    doc_lengths: dict[str, float] = {}
    postings: dict[str, tuple[Posting, ...]] = {}
    doc_frequencies: dict[str, int] = {}
    # A file can pass the checksum yet lack required keys (e.g. written by
    # a foreign tool); that is still a malformed snapshot, never a raw
    # KeyError escaping to the caller.
    try:
        for i, line in enumerate(body):
            record = _parse_line(path, line, f"record {i + 1}")
            kind = record.get("t")
            if kind == "doc":
                doc_id = record["id"]
                documents[doc_id] = Document(
                    doc_id=doc_id,
                    fields=tuple((name, text)
                                 for name, text in record["fields"]),
                    field_weights=tuple(
                        (name, weight) for name, weight in record["weights"]),
                    metadata=tuple((key, _from_jsonable(value))
                                   for key, value in record["meta"]),
                )
                doc_lengths[doc_id] = record["length"]
            elif kind == "term":
                term = record["term"]
                postings[term] = tuple(
                    Posting(doc_id, weighted_tf)
                    for doc_id, weighted_tf in record["postings"])
                doc_frequencies[term] = record["df"]
            else:
                raise _corrupt(path, f"record {i + 1} has unknown type {kind!r}")

        if len(documents) != header["stored_documents"]:
            raise _corrupt(path, "document record count does not match header")
        if len(postings) != header["stored_terms"]:
            raise _corrupt(path, "term record count does not match header")
        return IndexSnapshot(
            version=header["index_version"],
            analyzer=analyzer,
            documents=documents,
            postings=postings,
            doc_lengths=doc_lengths,
            doc_frequencies=doc_frequencies,
            document_count=header["document_count"],
            average_document_length=header["average_document_length"],
            min_document_length=header["min_document_length"],
        )
    except KeyError as exc:
        raise _corrupt(path, f"missing required key {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise _corrupt(path, f"malformed record structure ({exc})") from exc

"""Inverted index over :class:`~repro.ir.documents.Document` collections.

Term frequencies are accumulated with per-field weights at indexing time, so
scorers see a single weighted frequency per (term, document).  The index
keeps enough statistics for both TF-IDF and BM25: document frequencies,
weighted document lengths, and the collection average length.

The mutable index is optimized for building; retrieval goes through an
:class:`IndexSnapshot` — a frozen, *self-contained* copy of the index
contents with sorted postings arrays and a per-(scorer, term) cache of
score contributions and max-score upper bounds (see :mod:`repro.ir.topk`).
Because a snapshot owns its data outright (it holds no reference back to
the index it came from), it can outlive the index, be persisted to disk
(:mod:`repro.ir.persist`), or be partitioned into shards for parallel
scoring (:mod:`repro.ir.shard`).  Every :meth:`InvertedIndex.add` bumps
:attr:`InvertedIndex.version` and drops the cached snapshot, so
:meth:`InvertedIndex.snapshot` always reflects the current contents; a
snapshot held across an ``add`` simply keeps serving the contents it was
built from, and derived caches can detect staleness by comparing versions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import IndexError_
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document

__all__ = ["Posting", "TermContributions", "InvertedIndex", "IndexSnapshot",
           "ColumnarIndexSnapshot"]


@dataclass(frozen=True)
class Posting:
    """One (document, weighted term frequency) entry in a postings list."""

    doc_id: str
    weighted_tf: float


@dataclass(frozen=True)
class TermContributions:
    """Cached per-term scoring data for one (scorer, term) pair.

    ``doc_ids`` and ``contributions`` are aligned, doc_id-sorted arrays;
    ``bound`` is the largest single contribution — the term's max-score
    upper bound used for early termination.
    """

    doc_ids: tuple[str, ...]
    contributions: tuple[float, ...]
    bound: float


_NO_CONTRIBUTIONS = TermContributions((), (), 0.0)


class InvertedIndex:
    """An append-only inverted index with weighted fields."""

    def __init__(self, analyzer: Analyzer | None = None):
        self.analyzer = analyzer or Analyzer()
        self._postings: dict[str, dict[str, float]] = {}
        self._documents: dict[str, Document] = {}
        self._doc_lengths: dict[str, float] = {}
        self._total_length = 0.0
        self._version = 0
        self._snapshot: IndexSnapshot | None = None
        self._listeners: list = []

    @classmethod
    def from_snapshot(cls, snapshot: "IndexSnapshot") -> "InvertedIndex":
        """Rebuild a live, append-able index from a frozen snapshot.

        Used by :class:`~repro.ir.persist.SnapshotJournal` to resume
        appending to a persisted index.  Intended for *whole-collection*
        snapshots: shard snapshots carry collection-wide document
        frequencies that a rebuilt index cannot represent (it recomputes
        frequencies from its own postings).

        Args:
            snapshot: the frozen snapshot to rebuild from.

        Returns:
            A live index whose contents (documents, postings, lengths,
            version) equal the snapshot's.  The total-length accumulator is
            recomputed by summation, so derived statistics of *future*
            snapshots may differ from a never-frozen original in the last
            float ulp; the rebuilt contents themselves are exact.
        """
        index = cls(snapshot.analyzer)
        index._documents = dict(snapshot._documents)
        index._doc_lengths = dict(snapshot._doc_lengths)
        index._postings = {
            term: {posting.doc_id: posting.weighted_tf for posting in plist}
            for term, plist in snapshot._postings.items()
        }
        index._total_length = sum(index._doc_lengths.values())
        index._version = snapshot.version
        return index

    # -- building -----------------------------------------------------------

    def add(self, document: Document) -> None:
        """Index one document (its id must be new), all-or-nothing.

        Tokenization and validation run before any index state is
        touched, so a rejected document leaves the index (and any
        subscribed listeners' view of it) exactly as it was.

        Raises:
            IndexError_: on a duplicate ``doc_id`` or a non-positive field
                weight; the index is unchanged.
        """
        if document.doc_id in self._documents:
            raise IndexError_(f"duplicate document id {document.doc_id!r}")
        length = 0.0
        token_weights: dict[str, float] = {}
        for field_name, text in document.fields:
            weight = document.weight(field_name)
            if weight <= 0:
                raise IndexError_(
                    f"document {document.doc_id!r} field {field_name!r} "
                    f"has non-positive weight {weight}"
                )
            for token in self.analyzer.tokens(text):
                token_weights[token] = token_weights.get(token, 0.0) + weight
                length += weight
        self._version += 1
        self._snapshot = None
        self._documents[document.doc_id] = document
        for token, weighted_tf in token_weights.items():
            self._postings.setdefault(token, {})[document.doc_id] = weighted_tf
        self._doc_lengths[document.doc_id] = length
        self._total_length += length
        for listener in self._listeners:
            listener(document)

    def subscribe(self, listener) -> None:
        """Register ``listener`` to be called with each successfully added
        :class:`~repro.ir.documents.Document` (after the index is updated).
        :class:`~repro.ir.persist.SnapshotJournal` hooks here to append a
        delta segment per ``add`` instead of rewriting its snapshot file."""
        self._listeners.append(listener)

    def add_all(self, documents: Iterable[Document]) -> int:
        count = 0
        for document in documents:
            self.add(document)
            count += 1
        return count

    # -- snapshots ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter, bumped on every :meth:`add`."""
        return self._version

    def snapshot(self) -> "IndexSnapshot":
        """The frozen read-optimized copy of the current contents (cached;
        rebuilt after any :meth:`add`)."""
        if self._snapshot is None:
            self._snapshot = IndexSnapshot.from_index(self)
        return self._snapshot

    # -- statistics ---------------------------------------------------------

    @property
    def document_count(self) -> int:
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    @property
    def average_document_length(self) -> float:
        if not self._documents:
            return 0.0
        return self._total_length / len(self._documents)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def document_length(self, doc_id: str) -> float:
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document {doc_id!r}") from None

    # -- access -------------------------------------------------------------

    def postings(self, term: str) -> list[Posting]:
        bucket = self._postings.get(term, {})
        return [Posting(doc_id, tf) for doc_id, tf in bucket.items()]

    def document(self, doc_id: str) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document {doc_id!r}") from None

    def documents(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def validate(self) -> None:
        """Invariant check: postings only reference known documents and
        document lengths equal the sum of their weighted term frequencies."""
        recomputed: dict[str, float] = {doc_id: 0.0 for doc_id in self._documents}
        for term, bucket in self._postings.items():
            for doc_id, tf in bucket.items():
                if doc_id not in self._documents:
                    raise IndexError_(
                        f"term {term!r} references unknown document {doc_id!r}"
                    )
                if tf <= 0:
                    raise IndexError_(
                        f"term {term!r} has non-positive tf for {doc_id!r}"
                    )
                recomputed[doc_id] += tf
        for doc_id, length in recomputed.items():
            if abs(length - self._doc_lengths[doc_id]) > 1e-9:
                raise IndexError_(
                    f"document {doc_id!r} length mismatch: "
                    f"stored {self._doc_lengths[doc_id]}, recomputed {length}"
                )


class IndexSnapshot:
    """A frozen, self-contained, read-optimized copy of an index.

    The snapshot owns every statistic retrieval needs — documents, doc_id-
    sorted postings tuples, per-document lengths, per-term document
    frequencies, and the collection aggregates — so it serves queries with
    no live :class:`InvertedIndex` behind it.  That self-containment is
    what makes snapshots durable artifacts: they can be persisted and
    reloaded (:mod:`repro.ir.persist`) or hash-partitioned into shards
    that score in parallel (:mod:`repro.ir.shard`).  On top of the frozen
    data sits a per-(scorer, term) cache of score contributions and
    max-score upper bounds, reused across queries by the top-k fast path.

    A snapshot never goes stale: one held across an
    :meth:`InvertedIndex.add` keeps serving the contents it was built
    from, while :meth:`InvertedIndex.snapshot` hands out a fresh copy
    (distinguishable by :attr:`version`).  Snapshots also implement enough
    of the :class:`InvertedIndex` read protocol (``postings``,
    ``document_frequency``, ``document_length``, ``document``,
    ``document_count``, ``average_document_length``) that exhaustive
    scorers and :class:`~repro.ir.retrieval.Searcher` work over either
    interchangeably; :meth:`snapshot` returns ``self``.

    Sharded snapshots deliberately carry the *collection-wide* statistics
    (``document_count``, ``average_document_length``,
    ``min_document_length``, document frequencies) rather than their own
    partition's, so per-shard scoring is float-identical to scoring the
    whole collection — hence ``document_count`` may exceed
    ``len(snapshot)``.
    """

    #: Path of the mmap-backed columnar container this snapshot serves
    #: from, when any (set by :class:`ColumnarIndexSnapshot`); ``None``
    #: for live and fully-materialized snapshots.  Shard executors use it
    #: to hand worker processes a *path* to mmap instead of a pickled
    #: snapshot (see :class:`~repro.ir.shard.ShardedTopK`).
    mmap_path = None

    #: Whether :meth:`vectors` may *build* document vectors on demand.
    #: Only true for snapshots frozen straight from a live index
    #: (:meth:`from_index`), where the documents are authoritative.
    #: Loaded snapshots serve vectors exclusively from persisted vector
    #: extents (:class:`ColumnarIndexSnapshot`) — a file saved without
    #: them yields ``None``, the signal the hybrid retrieval strategy
    #: degrades to lexical on (see :mod:`repro.ir.retrieval`).
    _buildable_vectors = False

    def __init__(self, *, version: int, analyzer: Analyzer,
                 documents: dict[str, Document],
                 postings: dict[str, tuple[Posting, ...]],
                 doc_lengths: dict[str, float],
                 doc_frequencies: dict[str, int],
                 document_count: int,
                 average_document_length: float,
                 min_document_length: float):
        # Mappings are stored as handed in, not copied: callers transfer
        # ownership (or knowingly share — snapshots never mutate them, so
        # shards can alias one frozen doc_frequencies dict instead of
        # duplicating the whole vocabulary per shard).  from_index copies
        # what it takes from the *live* index explicitly.
        self.version = version
        self.analyzer = analyzer
        self.document_count = document_count
        self.average_document_length = average_document_length
        #: Shortest positive document length in the collection — the
        #: normalization ceiling for length-normalized scorers (documents
        #: with zero length never appear in postings).
        self.min_document_length = min_document_length
        self._documents = documents
        self._postings = postings
        self._doc_lengths = doc_lengths
        self._doc_frequencies = doc_frequencies
        self._contributions: dict[tuple, TermContributions] = {}
        self._block_bounds: dict[tuple, tuple[float, ...]] = {}
        self._vector_indexes: dict[tuple, object] = {}

    @classmethod
    def from_index(cls, index: InvertedIndex) -> "IndexSnapshot":
        """Freeze the full current contents of ``index`` into a snapshot."""
        postings = {
            term: tuple(Posting(doc_id, bucket[doc_id])
                        for doc_id in sorted(bucket))
            for term, bucket in index._postings.items()
        }
        positive = [length for length in index._doc_lengths.values() if length > 0]
        snapshot = cls(
            version=index.version,
            analyzer=index.analyzer,
            documents=dict(index._documents),
            postings=postings,
            doc_lengths=dict(index._doc_lengths),
            doc_frequencies={term: len(plist)
                             for term, plist in postings.items()},
            document_count=index.document_count,
            average_document_length=index.average_document_length,
            min_document_length=min(positive) if positive else 0.0,
        )
        snapshot._buildable_vectors = True
        return snapshot

    def snapshot(self) -> "IndexSnapshot":
        """Snapshots are already frozen; returns ``self`` (index protocol)."""
        return self

    # -- statistics ----------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        return self._doc_frequencies.get(term, 0)

    def document_length(self, doc_id: str) -> float:
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document {doc_id!r}") from None

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    # -- access --------------------------------------------------------------

    def postings(self, term: str) -> tuple[Posting, ...]:
        """The term's postings as a doc_id-sorted tuple."""
        return self._postings.get(term, ())

    def terms(self) -> Iterator[str]:
        return iter(self._postings)

    def document(self, doc_id: str) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document {doc_id!r}") from None

    def documents(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    # -- scoring caches ------------------------------------------------------

    def term_contributions(self, scorer, term: str) -> TermContributions:
        """Cached per-document contributions of ``scorer`` for ``term``.

        ``scorer`` must implement the fast-path hooks described in
        :mod:`repro.ir.scoring`; results are cached under
        ``scorer.cache_key()`` so equal-parameter scorers share entries.
        """
        key = (scorer.cache_key(), term)
        cached = self._contributions.get(key)
        if cached is None:
            doc_ids, contributions = scorer.term_contributions(self, term)
            if not doc_ids:
                cached = _NO_CONTRIBUTIONS
            else:
                cached = TermContributions(tuple(doc_ids),
                                           tuple(contributions),
                                           max(contributions))
            self._contributions[key] = cached
        return cached

    def term_block_bounds(self, scorer, term: str,
                          block_size: int) -> tuple[float, ...]:
        """Per-block maxima of the term's contribution array.

        Block ``i`` caps the contribution of postings ``[i * block_size,
        (i + 1) * block_size)`` — the block-max refinement used by
        :func:`repro.ir.wand.wand_scores`.  Cached per ``(scorer
        cache key, term, block_size)`` on the snapshot, so like the
        contribution cache it is version-invalidated for free: an
        :meth:`InvertedIndex.add` produces a *new* snapshot whose caches
        start empty, while this snapshot keeps serving its frozen data.

        Raises:
            ValueError: on a non-positive ``block_size``.
        """
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        key = (scorer.cache_key(), term, block_size)
        cached = self._block_bounds.get(key)
        if cached is None:
            contributions = self.term_contributions(scorer, term).contributions
            cached = tuple(
                max(contributions[start:start + block_size])
                for start in range(0, len(contributions), block_size)
            )
            self._block_bounds[key] = cached
        return cached

    # -- vectors -------------------------------------------------------------

    def vectors(self, embedder):
        """The snapshot's :class:`~repro.ir.vector.VectorIndex` for
        ``embedder``, or ``None`` when none is available.

        A snapshot frozen from a live index embeds its own documents on
        first demand (cached per embedder identity, like the scorer
        caches).  Loaded snapshots serve only *persisted* vector extents
        (see :class:`ColumnarIndexSnapshot`); a file saved without them
        — or with extents from a different embedder configuration —
        returns ``None``, and the hybrid strategy degrades to lexical
        with a warning instead of silently re-embedding text the load
        may not even carry (docstore-backed scoring views have no
        document bodies).
        """
        key = embedder.cache_key()
        if key not in self._vector_indexes:
            self._vector_indexes[key] = self._build_vectors(embedder)
        return self._vector_indexes[key]

    def _build_vectors(self, embedder):
        if not self._buildable_vectors:
            return None
        from repro.ir.vector import VectorIndex

        return VectorIndex.build(embedder, self._documents)

    def scoring_view(self) -> "IndexSnapshot":
        """A copy without the document store.

        Scoring touches postings, lengths, document frequencies, and the
        collection aggregates — never document content — so this is what
        ships to sharded worker processes: the full field texts and
        metadata stay behind, cutting pickle and worker-memory cost to the
        statistics alone.  Document lookups on the view raise; hits are
        resolved to documents in the parent process.
        """
        return IndexSnapshot(
            version=self.version,
            analyzer=self.analyzer,
            documents={},
            postings=self._postings,
            doc_lengths=self._doc_lengths,
            doc_frequencies=self._doc_frequencies,
            document_count=self.document_count,
            average_document_length=self.average_document_length,
            min_document_length=self.min_document_length,
        )

    def __getstate__(self) -> dict:
        """Pickle without the contribution/block-bound caches (workers
        rebuild their own, and scorer cache keys may contain process-local
        ids)."""
        state = self.__dict__.copy()
        state["_contributions"] = {}
        state["_block_bounds"] = {}
        state["_vector_indexes"] = {}
        return state


def _rebuild_plain_snapshot(version, analyzer, documents, postings,
                            doc_lengths, doc_frequencies, document_count,
                            average_document_length,
                            min_document_length) -> "IndexSnapshot":
    """Unpickle target for :meth:`ColumnarIndexSnapshot.__reduce__` — a
    column-backed snapshot crosses process boundaries as a plain,
    fully-materialized snapshot (an mmap handle cannot)."""
    return IndexSnapshot(
        version=version, analyzer=analyzer, documents=documents,
        postings=postings, doc_lengths=doc_lengths,
        doc_frequencies=doc_frequencies, document_count=document_count,
        average_document_length=average_document_length,
        min_document_length=min_document_length,
    )


class ColumnarIndexSnapshot(IndexSnapshot):
    """A snapshot whose postings/contribution/block-bound data live in an
    mmap-backed columnar container (:mod:`repro.ir.persist` format v3).

    Behaves exactly like a plain :class:`IndexSnapshot` — the ``postings``
    and ``documents`` mappings it is handed are lazy views that
    materialize per term (or per document blob) straight out of the
    mmap'd columns — but additionally consults *persisted* per-(scorer,
    term) contribution and block-bound columns before computing them,
    so the scorers the save precomputed for skip the arithmetic
    entirely on load.  ``backing`` is duck-typed (see
    ``repro.ir.persist._V3Backing``): it must provide
    ``term_contributions(scorer_key, term)`` and
    ``term_block_bounds(scorer_key, term, block_size)``, each returning
    ``None`` when no matching column was persisted.

    Float-exactness holds either way: persisted columns are bit-exact
    float64 round trips of the same arithmetic the lazy path runs.
    """

    def __init__(self, *, backing, mmap_path, **kwargs):
        super().__init__(**kwargs)
        self._backing = backing
        self.mmap_path = mmap_path

    def term_contributions(self, scorer, term: str) -> TermContributions:
        key = (scorer.cache_key(), term)
        cached = self._contributions.get(key)
        if cached is None:
            cached = self._backing.term_contributions(key[0], term)
            if cached is None:
                return super().term_contributions(scorer, term)
            self._contributions[key] = cached
        return cached

    def term_block_bounds(self, scorer, term: str,
                          block_size: int) -> tuple[float, ...]:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        key = (scorer.cache_key(), term, block_size)
        cached = self._block_bounds.get(key)
        if cached is None:
            cached = self._backing.term_block_bounds(key[0], term, block_size)
            if cached is None:
                return super().term_block_bounds(scorer, term, block_size)
            self._block_bounds[key] = cached
        return cached

    def _build_vectors(self, embedder):
        # Persisted vector extents only: the container either carries a
        # matrix built by this embedder configuration, or the hybrid
        # strategy degrades to lexical.  Re-embedding here would be
        # wrong — docstore-backed loads may have no document bodies, and
        # silently rebuilding would hide a save that forgot its vectors.
        persisted = self._backing.vector_index()
        if persisted is None or persisted.embedder_config != \
                embedder.config():
            return None
        return persisted

    def scoring_view(self) -> "IndexSnapshot":
        """A document-free view that *keeps* the columnar backing (and
        :attr:`mmap_path`), so shard executors can still route workers to
        the file instead of pickling the view."""
        return ColumnarIndexSnapshot(
            backing=self._backing,
            mmap_path=self.mmap_path,
            version=self.version,
            analyzer=self.analyzer,
            documents={},
            postings=self._postings,
            doc_lengths=self._doc_lengths,
            doc_frequencies=self._doc_frequencies,
            document_count=self.document_count,
            average_document_length=self.average_document_length,
            min_document_length=self.min_document_length,
        )

    def __reduce__(self):
        # Pickling safety net: materialize everything (mmap handles do not
        # cross process boundaries).  The shard executors avoid this cost
        # by shipping mmap_path instead — this path only runs when a
        # caller pickles a columnar snapshot directly.
        return (_rebuild_plain_snapshot, (
            self.version, self.analyzer, dict(self._documents),
            dict(self._postings), dict(self._doc_lengths),
            dict(self._doc_frequencies), self.document_count,
            self.average_document_length, self.min_document_length,
        ))

"""Inverted index over :class:`~repro.ir.documents.Document` collections.

Term frequencies are accumulated with per-field weights at indexing time, so
scorers see a single weighted frequency per (term, document).  The index
keeps enough statistics for both TF-IDF and BM25: document frequencies,
weighted document lengths, and the collection average length.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import IndexError_
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document

__all__ = ["Posting", "InvertedIndex"]


@dataclass(frozen=True)
class Posting:
    """One (document, weighted term frequency) entry in a postings list."""

    doc_id: str
    weighted_tf: float


class InvertedIndex:
    """An append-only inverted index with weighted fields."""

    def __init__(self, analyzer: Analyzer | None = None):
        self.analyzer = analyzer or Analyzer()
        self._postings: dict[str, dict[str, float]] = {}
        self._documents: dict[str, Document] = {}
        self._doc_lengths: dict[str, float] = {}
        self._total_length = 0.0

    # -- building -----------------------------------------------------------

    def add(self, document: Document) -> None:
        if document.doc_id in self._documents:
            raise IndexError_(f"duplicate document id {document.doc_id!r}")
        self._documents[document.doc_id] = document
        length = 0.0
        for field_name, text in document.fields:
            weight = document.weight(field_name)
            if weight <= 0:
                raise IndexError_(
                    f"document {document.doc_id!r} field {field_name!r} "
                    f"has non-positive weight {weight}"
                )
            for token in self.analyzer.tokens(text):
                bucket = self._postings.setdefault(token, {})
                bucket[document.doc_id] = bucket.get(document.doc_id, 0.0) + weight
                length += weight
        self._doc_lengths[document.doc_id] = length
        self._total_length += length

    def add_all(self, documents: Iterable[Document]) -> int:
        count = 0
        for document in documents:
            self.add(document)
            count += 1
        return count

    # -- statistics ---------------------------------------------------------

    @property
    def document_count(self) -> int:
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    @property
    def average_document_length(self) -> float:
        if not self._documents:
            return 0.0
        return self._total_length / len(self._documents)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def document_length(self, doc_id: str) -> float:
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document {doc_id!r}") from None

    # -- access -------------------------------------------------------------

    def postings(self, term: str) -> list[Posting]:
        bucket = self._postings.get(term, {})
        return [Posting(doc_id, tf) for doc_id, tf in bucket.items()]

    def document(self, doc_id: str) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document {doc_id!r}") from None

    def documents(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def validate(self) -> None:
        """Invariant check: postings only reference known documents and
        document lengths equal the sum of their weighted term frequencies."""
        recomputed: dict[str, float] = {doc_id: 0.0 for doc_id in self._documents}
        for term, bucket in self._postings.items():
            for doc_id, tf in bucket.items():
                if doc_id not in self._documents:
                    raise IndexError_(
                        f"term {term!r} references unknown document {doc_id!r}"
                    )
                if tf <= 0:
                    raise IndexError_(
                        f"term {term!r} has non-positive tf for {doc_id!r}"
                    )
                recomputed[doc_id] += tf
        for doc_id, length in recomputed.items():
            if abs(length - self._doc_lengths[doc_id]) > 1e-9:
                raise IndexError_(
                    f"document {doc_id!r} length mismatch: "
                    f"stored {self._doc_lengths[doc_id]}, recomputed {length}"
                )

"""Inverted index over :class:`~repro.ir.documents.Document` collections.

Term frequencies are accumulated with per-field weights at indexing time, so
scorers see a single weighted frequency per (term, document).  The index
keeps enough statistics for both TF-IDF and BM25: document frequencies,
weighted document lengths, and the collection average length.

The mutable index is optimized for building; retrieval goes through an
:class:`IndexSnapshot` — a frozen, read-optimized view with sorted postings
arrays and a per-(scorer, term) cache of score contributions and max-score
upper bounds (see :mod:`repro.ir.topk`).  Snapshot invalidation rule: every
:meth:`InvertedIndex.add` bumps :attr:`InvertedIndex.version` and drops the
cached snapshot, so :meth:`InvertedIndex.snapshot` always reflects the
current contents and stale derived caches can be detected by comparing
versions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import IndexError_
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document

__all__ = ["Posting", "TermContributions", "InvertedIndex", "IndexSnapshot"]


@dataclass(frozen=True)
class Posting:
    """One (document, weighted term frequency) entry in a postings list."""

    doc_id: str
    weighted_tf: float


@dataclass(frozen=True)
class TermContributions:
    """Cached per-term scoring data for one (scorer, term) pair.

    ``doc_ids`` and ``contributions`` are aligned, doc_id-sorted arrays;
    ``bound`` is the largest single contribution — the term's max-score
    upper bound used for early termination.
    """

    doc_ids: tuple[str, ...]
    contributions: tuple[float, ...]
    bound: float


_NO_CONTRIBUTIONS = TermContributions((), (), 0.0)


class InvertedIndex:
    """An append-only inverted index with weighted fields."""

    def __init__(self, analyzer: Analyzer | None = None):
        self.analyzer = analyzer or Analyzer()
        self._postings: dict[str, dict[str, float]] = {}
        self._documents: dict[str, Document] = {}
        self._doc_lengths: dict[str, float] = {}
        self._total_length = 0.0
        self._version = 0
        self._snapshot: IndexSnapshot | None = None

    # -- building -----------------------------------------------------------

    def add(self, document: Document) -> None:
        if document.doc_id in self._documents:
            raise IndexError_(f"duplicate document id {document.doc_id!r}")
        self._version += 1
        self._snapshot = None
        self._documents[document.doc_id] = document
        length = 0.0
        for field_name, text in document.fields:
            weight = document.weight(field_name)
            if weight <= 0:
                raise IndexError_(
                    f"document {document.doc_id!r} field {field_name!r} "
                    f"has non-positive weight {weight}"
                )
            for token in self.analyzer.tokens(text):
                bucket = self._postings.setdefault(token, {})
                bucket[document.doc_id] = bucket.get(document.doc_id, 0.0) + weight
                length += weight
        self._doc_lengths[document.doc_id] = length
        self._total_length += length

    def add_all(self, documents: Iterable[Document]) -> int:
        count = 0
        for document in documents:
            self.add(document)
            count += 1
        return count

    # -- snapshots ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter, bumped on every :meth:`add`."""
        return self._version

    def snapshot(self) -> "IndexSnapshot":
        """The frozen read-optimized view of the current contents (cached;
        rebuilt after any :meth:`add`)."""
        if self._snapshot is None:
            self._snapshot = IndexSnapshot(self)
        return self._snapshot

    # -- statistics ---------------------------------------------------------

    @property
    def document_count(self) -> int:
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    @property
    def average_document_length(self) -> float:
        if not self._documents:
            return 0.0
        return self._total_length / len(self._documents)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def document_length(self, doc_id: str) -> float:
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document {doc_id!r}") from None

    # -- access -------------------------------------------------------------

    def postings(self, term: str) -> list[Posting]:
        bucket = self._postings.get(term, {})
        return [Posting(doc_id, tf) for doc_id, tf in bucket.items()]

    def document(self, doc_id: str) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document {doc_id!r}") from None

    def documents(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def validate(self) -> None:
        """Invariant check: postings only reference known documents and
        document lengths equal the sum of their weighted term frequencies."""
        recomputed: dict[str, float] = {doc_id: 0.0 for doc_id in self._documents}
        for term, bucket in self._postings.items():
            for doc_id, tf in bucket.items():
                if doc_id not in self._documents:
                    raise IndexError_(
                        f"term {term!r} references unknown document {doc_id!r}"
                    )
                if tf <= 0:
                    raise IndexError_(
                        f"term {term!r} has non-positive tf for {doc_id!r}"
                    )
                recomputed[doc_id] += tf
        for doc_id, length in recomputed.items():
            if abs(length - self._doc_lengths[doc_id]) > 1e-9:
                raise IndexError_(
                    f"document {doc_id!r} length mismatch: "
                    f"stored {self._doc_lengths[doc_id]}, recomputed {length}"
                )


class IndexSnapshot:
    """A frozen, read-optimized view of one :class:`InvertedIndex`.

    Postings are exposed as doc_id-sorted tuples, collection statistics are
    captured once, and per-(scorer, term) score contributions — together
    with their max-score upper bounds — are cached across queries.  The
    snapshot is only handed out by :meth:`InvertedIndex.snapshot`, which
    discards it whenever a document is added.  Postings are materialized
    lazily from the live index, so a snapshot held across an ``add``
    *refuses to serve* (raises :class:`~repro.errors.IndexError_`) rather
    than silently mixing frozen statistics with fresh postings — fetch a
    new snapshot instead.
    """

    def __init__(self, index: InvertedIndex):
        self._index = index
        self.version = index.version
        self.document_count = index.document_count
        self.average_document_length = index.average_document_length
        positive = [l for l in index._doc_lengths.values() if l > 0]
        #: Shortest positive document length — the normalization ceiling
        #: for length-normalized scorers (documents with zero length never
        #: appear in postings).
        self.min_document_length = min(positive) if positive else 0.0
        self._postings: dict[str, tuple[Posting, ...]] = {}
        self._contributions: dict[tuple, TermContributions] = {}

    def _check_current(self) -> None:
        if self._index.version != self.version:
            raise IndexError_(
                f"stale IndexSnapshot (version {self.version}, index is at "
                f"{self._index.version}); call InvertedIndex.snapshot() again"
            )

    def postings(self, term: str) -> tuple[Posting, ...]:
        """The term's postings as a doc_id-sorted tuple (cached)."""
        cached = self._postings.get(term)
        if cached is None:
            self._check_current()
            bucket = self._index._postings.get(term, {})
            cached = tuple(Posting(doc_id, bucket[doc_id])
                           for doc_id in sorted(bucket))
            self._postings[term] = cached
        return cached

    def document_frequency(self, term: str) -> int:
        self._check_current()
        return self._index.document_frequency(term)

    def document_length(self, doc_id: str) -> float:
        self._check_current()
        return self._index.document_length(doc_id)

    def term_contributions(self, scorer, term: str) -> TermContributions:
        """Cached per-document contributions of ``scorer`` for ``term``.

        ``scorer`` must implement the fast-path hooks described in
        :mod:`repro.ir.scoring`; results are cached under
        ``scorer.cache_key()`` so equal-parameter scorers share entries.
        """
        key = (scorer.cache_key(), term)
        cached = self._contributions.get(key)
        if cached is None:
            doc_ids, contributions = scorer.term_contributions(self, term)
            if not doc_ids:
                cached = _NO_CONTRIBUTIONS
            else:
                cached = TermContributions(tuple(doc_ids),
                                           tuple(contributions),
                                           max(contributions))
            self._contributions[key] = cached
        return cached

"""Ranked retrieval: analyze a query, score against an index, return top-k.

Fast-path architecture
----------------------

:meth:`Searcher.search` serves results through three layers, falling back
one layer at a time:

1. **Result cache** — an LRU keyed on ``(index version, analyzer tokens,
   scorer cache key, limit)``.  Adding a document bumps the index version,
   so stale entries can never be served; they simply age out of the LRU.
2. **Top-k fast path** — when the scorer supports it (BM25, TF-IDF, and
   prior-weighted wrappers around them), scoring runs over the index's
   frozen :class:`~repro.ir.index.IndexSnapshot` via
   :func:`repro.ir.wand.retrieve`, which dispatches on the searcher's
   ``strategy``: term-at-a-time max-score
   (:func:`repro.ir.topk.topk_scores`), document-at-a-time WAND or
   block-max WAND (:mod:`repro.ir.wand`), or per-query ``"auto"``
   selection on query length.  All strategies share the snapshot's cached
   per-term contribution arrays and return identical rankings.  With
   ``shards >= 2`` the snapshot is hash-partitioned and shards are scored
   in parallel, then merged (see :mod:`repro.ir.shard`) — still
   rank-identical.
3. **Exhaustive path** — :meth:`Searcher.search_exhaustive`, the reference
   implementation that scores every matching document and sorts.  The fast
   path is rank-identical to it by construction (property-tested in
   ``tests/test_property_based.py``).

A searcher works over either a live :class:`~repro.ir.index.InvertedIndex`
or a frozen :class:`~repro.ir.index.IndexSnapshot` — e.g. one loaded from
disk by :func:`repro.ir.persist.load_snapshot` — since snapshots are
self-contained and implement the read protocol.

:meth:`Searcher.search_many` batches queries through the same machinery:
one snapshot serves the whole batch, duplicate queries collapse into cache
hits, and per-term contribution arrays are shared across the batch — the
"multiple items per round" counterpart to single-query search.  Under
sharding, the whole batch is dispatched as one task per shard, amortizing
inter-process overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass

from repro.ir.documents import Document
from repro.ir.index import IndexSnapshot, InvertedIndex
from repro.ir.scoring import Bm25Scorer, Scorer
from repro.ir.shard import PARALLELISM_MODES, ShardedTopK
from repro.ir.wand import STRATEGIES, retrieve

__all__ = ["SearchHit", "Searcher"]


@dataclass(frozen=True)
class SearchHit:
    """One ranked result: the document, its score, and its 0-based rank."""

    document: Document
    score: float
    rank: int

    @property
    def doc_id(self) -> str:
        return self.document.doc_id


class Searcher:
    """A query interface over one inverted index (or frozen snapshot).

    Ties are broken by ``doc_id`` so rankings are fully deterministic — a
    property every benchmark in this repo depends on.

    ``cache_size`` bounds the LRU result cache (0 disables it).  Scorer
    parameters are treated as immutable once the searcher is constructed;
    swap scorers by constructing a new searcher.

    ``shards >= 2`` turns on sharded scoring for fast-path queries:
    postings are hash-partitioned and scored via ``parallelism``
    (``"serial"``, ``"thread"``, or ``"process"`` — see
    :mod:`repro.ir.shard`), with query batches Bloom-routed only to shards
    that can match.  Results are rank-identical either way.  A prebuilt
    :class:`~repro.ir.shard.ShardedTopK` (e.g. restored from per-shard
    snapshot files) can be handed in via ``sharded`` to skip the in-memory
    re-partition.  :meth:`close` releases the shard executor; searchers
    are usable as context managers.

    ``strategy`` selects the fast-path retrieval algorithm (see
    :mod:`repro.ir.wand`): ``"maxscore"`` (term-at-a-time), ``"wand"`` /
    ``"blockmax"`` (document-at-a-time), or ``"auto"`` (the default),
    which resolves per query on its term count.  Strategies return
    identical rankings — float-exact, tie-breaks included — so the result
    cache is shared across them.
    """

    def __init__(self, index: InvertedIndex | IndexSnapshot,
                 scorer: Scorer | None = None, cache_size: int = 256,
                 shards: int = 0, parallelism: str = "thread",
                 sharded: ShardedTopK | None = None,
                 strategy: str = "auto"):
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        if shards < 0:
            raise ValueError(f"shards must be non-negative, got {shards}")
        if parallelism not in PARALLELISM_MODES:
            raise ValueError(
                f"parallelism must be one of {PARALLELISM_MODES}, "
                f"got {parallelism!r}"
            )
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        self.index = index
        self.scorer = scorer or Bm25Scorer()
        self.strategy = strategy
        self.cache_size = cache_size
        self.shards = shards if sharded is None else \
            max(shards, len(sharded.shards))
        self.parallelism = parallelism
        #: Result-cache effectiveness counters, cumulative over the
        #: searcher's lifetime (read by the serving pipeline's ``--explain``
        #: instrumentation; duplicate queries in one batch each count one
        #: lookup).
        self.cache_hits = 0
        self.cache_misses = 0
        self._cache: OrderedDict[tuple, tuple[SearchHit, ...]] = OrderedDict()
        self._sharded: ShardedTopK | None = sharded
        # A handed-in shard set may be shared across searchers (e.g. the
        # collection's restored partitions); only shard sets this searcher
        # builds itself are its to shut down.
        self._owns_sharded = sharded is None

    def search(self, query: str, limit: int = 10) -> list[SearchHit]:
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        terms = self.index.analyzer.tokens(query)
        if not terms:
            return []
        return list(self._search_terms(tuple(terms), limit))

    def search_many(self, queries: Iterable[str],
                    limit: int = 10) -> list[list[SearchHit]]:
        """Ranked results for a batch of queries, in input order.

        Equivalent to ``[search(q, limit) for q in queries]`` but built for
        throughput: the whole batch runs against one index snapshot, term
        contribution arrays are shared between queries, and duplicate
        queries are answered from the result cache.  Under sharding, all
        cache-missing queries go to the shard executor as one batch.
        """
        queries = list(queries)
        if not (self.shards >= 2 and self.scorer.supports_topk()):
            return [self.search(query, limit) for query in queries]
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        analyzer = self.index.analyzer
        term_tuples = [tuple(analyzer.tokens(query)) for query in queries]
        # Resolve cache hits immediately (storing this batch's own results
        # can evict pre-batch entries from the LRU, so a later re-lookup
        # could come up empty); distinct misses go to the shards as one
        # batch, deduplicated.
        resolved: list[tuple[SearchHit, ...] | None] = []
        pending: dict[tuple[str, ...], tuple[SearchHit, ...]] = {}
        for terms in term_tuples:
            resolved.append(self._cached_hits(terms, limit) if terms else ())
            if terms and resolved[-1] is None:
                pending.setdefault(terms, ())
        if pending:
            sharded = self._sharded_topk()
            ranked_lists = sharded.topk_many(
                self.scorer, [list(terms) for terms in pending], limit,
                self.strategy)
            for terms, ranked in zip(pending, ranked_lists):
                pending[terms] = self._store_hits(terms, limit, ranked)
        return [list(hits) if hits is not None else list(pending[terms])
                for hits, terms in zip(resolved, term_tuples)]

    def search_exhaustive(self, query: str, limit: int = 10) -> list[SearchHit]:
        """Reference path: score every matching document and sort.

        Kept as the ground truth the fast path is verified against, and as
        the fallback for scorers without fast-path support.  Bypasses the
        result cache.
        """
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        terms = self.index.analyzer.tokens(query)
        if not terms:
            return []
        ranked = self._ranked_exhaustive(list(terms), limit)
        return [SearchHit(self.index.document(doc_id), score, rank)
                for rank, (doc_id, score) in enumerate(ranked)]

    def best(self, query: str) -> SearchHit | None:
        hits = self.search(query, limit=1)
        return hits[0] if hits else None

    @property
    def routing_stats(self) -> dict | None:
        """Cumulative Bloom-routing statistics of the shard set this
        searcher dispatches to (see :attr:`ShardedTopK.routing_stats`),
        or ``None`` while no shard set exists — the plumbing the serving
        pipeline reads to report "shards routed" per batch."""
        return self._sharded.routing_stats if self._sharded is not None \
            else None

    def close(self) -> None:
        """Release the shard executor this searcher owns, if any
        (idempotent).  A shared shard set handed in at construction is
        left running — its owner (e.g. the collection) closes it."""
        if self._sharded is not None and self._owns_sharded:
            self._sharded.close()
            self._sharded = None

    def __enter__(self) -> "Searcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _cache_key(self, terms: tuple[str, ...], limit: int) -> tuple:
        return (self.index.version, terms, self.scorer.cache_key(), limit)

    def _cached_hits(self, terms: tuple[str, ...],
                     limit: int) -> tuple[SearchHit, ...] | None:
        key = self._cache_key(terms, limit)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        return cached

    def _store_hits(self, terms: tuple[str, ...], limit: int,
                    ranked: list[tuple[str, float]]) -> tuple[SearchHit, ...]:
        hits = tuple(SearchHit(self.index.document(doc_id), score, rank)
                     for rank, (doc_id, score) in enumerate(ranked))
        if self.cache_size:
            self._cache[self._cache_key(terms, limit)] = hits
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return hits

    def _sharded_topk(self) -> ShardedTopK:
        """The shard set for the current snapshot (rebuilt after any add;
        a stale *shared* set is abandoned to its owner, never closed)."""
        snapshot = self.index.snapshot()
        if self._sharded is None or self._sharded.version != snapshot.version:
            self.close()
            self._sharded = ShardedTopK(snapshot, self.shards,
                                        self.parallelism)
            self._owns_sharded = True
        return self._sharded

    def _search_terms(self, terms: tuple[str, ...],
                      limit: int) -> tuple[SearchHit, ...]:
        cached = self._cached_hits(terms, limit)
        if cached is not None:
            return cached
        if self.scorer.supports_topk():
            if self.shards >= 2:
                ranked = self._sharded_topk().topk(self.scorer, list(terms),
                                                   limit, self.strategy)
            else:
                snapshot = self.index.snapshot()
                ranked = retrieve(snapshot, self.scorer, list(terms), limit,
                                  self.strategy)
        else:
            ranked = self._ranked_exhaustive(list(terms), limit)
        return self._store_hits(terms, limit, ranked)

    def _ranked_exhaustive(self, terms: list[str],
                           limit: int) -> list[tuple[str, float]]:
        scores = self.scorer.scores(self.index, terms)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

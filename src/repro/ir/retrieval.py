"""Ranked retrieval: analyze a query, score against an index, return top-k."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.scoring import Bm25Scorer, Scorer

__all__ = ["SearchHit", "Searcher"]


@dataclass(frozen=True)
class SearchHit:
    """One ranked result: the document, its score, and its 0-based rank."""

    document: Document
    score: float
    rank: int

    @property
    def doc_id(self) -> str:
        return self.document.doc_id


class Searcher:
    """A query interface over one inverted index.

    Ties are broken by ``doc_id`` so rankings are fully deterministic — a
    property every benchmark in this repo depends on.
    """

    def __init__(self, index: InvertedIndex, scorer: Scorer | None = None):
        self.index = index
        self.scorer = scorer or Bm25Scorer()

    def search(self, query: str, limit: int = 10) -> list[SearchHit]:
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        terms = self.index.analyzer.tokens(query)
        if not terms:
            return []
        scores = self.scorer.scores(self.index, terms)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        hits = []
        for rank, (doc_id, score) in enumerate(ranked[:limit]):
            hits.append(SearchHit(self.index.document(doc_id), score, rank))
        return hits

    def best(self, query: str) -> SearchHit | None:
        hits = self.search(query, limit=1)
        return hits[0] if hits else None

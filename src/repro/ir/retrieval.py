"""Ranked retrieval: analyze a query, score against an index, return top-k.

Fast-path architecture
----------------------

:meth:`Searcher.search` serves results through three layers, falling back
one layer at a time:

1. **Result cache** — an LRU keyed on ``(index version, analyzer tokens,
   scorer cache key, limit)``.  Adding a document bumps the index version,
   so stale entries can never be served; they simply age out of the LRU.
2. **Top-k fast path** — when the scorer supports it (BM25, TF-IDF, and
   prior-weighted wrappers around them), scoring runs over the index's
   frozen :class:`~repro.ir.index.IndexSnapshot` via
   :func:`repro.ir.topk.topk_scores`: cached per-term contribution arrays,
   max-score early termination, bounded-heap selection.
3. **Exhaustive path** — :meth:`Searcher.search_exhaustive`, the reference
   implementation that scores every matching document and sorts.  The fast
   path is rank-identical to it by construction (property-tested in
   ``tests/test_property_based.py``).

:meth:`Searcher.search_many` batches queries through the same machinery:
one snapshot serves the whole batch, duplicate queries collapse into cache
hits, and per-term contribution arrays are shared across the batch — the
"multiple items per round" counterpart to single-query search.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass

from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.scoring import Bm25Scorer, Scorer
from repro.ir.topk import topk_scores

__all__ = ["SearchHit", "Searcher"]


@dataclass(frozen=True)
class SearchHit:
    """One ranked result: the document, its score, and its 0-based rank."""

    document: Document
    score: float
    rank: int

    @property
    def doc_id(self) -> str:
        return self.document.doc_id


class Searcher:
    """A query interface over one inverted index.

    Ties are broken by ``doc_id`` so rankings are fully deterministic — a
    property every benchmark in this repo depends on.

    ``cache_size`` bounds the LRU result cache (0 disables it).  Scorer
    parameters are treated as immutable once the searcher is constructed;
    swap scorers by constructing a new searcher.
    """

    def __init__(self, index: InvertedIndex, scorer: Scorer | None = None,
                 cache_size: int = 256):
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        self.index = index
        self.scorer = scorer or Bm25Scorer()
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, tuple[SearchHit, ...]] = OrderedDict()

    def search(self, query: str, limit: int = 10) -> list[SearchHit]:
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        terms = self.index.analyzer.tokens(query)
        if not terms:
            return []
        return list(self._search_terms(tuple(terms), limit))

    def search_many(self, queries: Iterable[str],
                    limit: int = 10) -> list[list[SearchHit]]:
        """Ranked results for a batch of queries, in input order.

        Equivalent to ``[search(q, limit) for q in queries]`` but built for
        throughput: the whole batch runs against one index snapshot, term
        contribution arrays are shared between queries, and duplicate
        queries are answered from the result cache.
        """
        return [self.search(query, limit) for query in queries]

    def search_exhaustive(self, query: str, limit: int = 10) -> list[SearchHit]:
        """Reference path: score every matching document and sort.

        Kept as the ground truth the fast path is verified against, and as
        the fallback for scorers without fast-path support.  Bypasses the
        result cache.
        """
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        terms = self.index.analyzer.tokens(query)
        if not terms:
            return []
        ranked = self._ranked_exhaustive(list(terms), limit)
        return [SearchHit(self.index.document(doc_id), score, rank)
                for rank, (doc_id, score) in enumerate(ranked)]

    def best(self, query: str) -> SearchHit | None:
        hits = self.search(query, limit=1)
        return hits[0] if hits else None

    # -- internals ---------------------------------------------------------

    def _search_terms(self, terms: tuple[str, ...],
                      limit: int) -> tuple[SearchHit, ...]:
        key = (self.index.version, terms, self.scorer.cache_key(), limit)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        if self.scorer.supports_topk():
            snapshot = self.index.snapshot()
            ranked = topk_scores(snapshot, self.scorer, list(terms), limit)
        else:
            ranked = self._ranked_exhaustive(list(terms), limit)
        hits = tuple(SearchHit(self.index.document(doc_id), score, rank)
                     for rank, (doc_id, score) in enumerate(ranked))
        if self.cache_size:
            self._cache[key] = hits
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return hits

    def _ranked_exhaustive(self, terms: list[str],
                           limit: int) -> list[tuple[str, float]]:
        scores = self.scorer.scores(self.index, terms)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

"""Ranked retrieval: analyze a query, score against an index, return top-k.

Fast-path architecture
----------------------

:meth:`Searcher.search` serves results through three layers, falling back
one layer at a time:

1. **Result cache** — an LRU keyed on ``(index version, analyzer tokens,
   scorer cache key, limit)``.  Adding a document bumps the index version,
   so stale entries can never be served; they simply age out of the LRU.
   Lexical strategies share entries (they are rank- and score-identical);
   hybrid results carry an extra key segment (fusion parameters plus the
   embedder identity) since fusion *changes* rankings.
2. **Top-k fast path** — when the scorer supports it (BM25, TF-IDF, and
   prior-weighted wrappers around them), scoring runs over the index's
   frozen :class:`~repro.ir.index.IndexSnapshot` via
   :func:`repro.ir.wand.retrieve`, which dispatches on the searcher's
   ``strategy``: term-at-a-time max-score
   (:func:`repro.ir.topk.topk_scores`), document-at-a-time WAND or
   block-max WAND (:mod:`repro.ir.wand`), or per-query ``"auto"``
   selection on query length.  All lexical strategies share the
   snapshot's cached per-term contribution arrays and return identical
   rankings.  With ``shards >= 2`` the snapshot is hash-partitioned and
   shards are scored in parallel, then merged (see
   :mod:`repro.ir.shard`) — still rank-identical.
3. **Exhaustive path** — :meth:`Searcher.search_exhaustive`, the reference
   implementation that scores every matching document and sorts.  The fast
   path is rank-identical to it by construction (property-tested in
   ``tests/test_property_based.py``).

Hybrid retrieval
----------------

Strategy ``"hybrid"`` adds a second scoring backend on top of layer 2:
the query is embedded (:mod:`repro.ir.embed`), scored against the
snapshot's :class:`~repro.ir.vector.VectorIndex` by brute-force cosine,
and the lexical and vector rankings are combined with reciprocal-rank
fusion (:func:`repro.ir.vector.reciprocal_rank_fusion`).  Fusion breaks
the rank-identical-to-exhaustive invariant of the lexical strategies, so
the suite replaces it with three provable properties: with
``vector_weight == 0`` hybrid returns the lexical results *verbatim*
(scores included); fused rankings are deterministic and invariant under
shard counts, executors, and Bloom routing (both input rankings are —
cosine is per-document, so per-shard vector partitions merged with
:func:`~repro.ir.topk.merge_ranked` equal the global scan); and an index
with no vectors available (a snapshot loaded from a file saved without
vector extents, or migrated from v1/v2) **degrades gracefully**: the
searcher warns once, counts the event in
:attr:`Searcher.hybrid_fallbacks`, and serves the lexical ranking —
never an exception.

A searcher works over either a live :class:`~repro.ir.index.InvertedIndex`
or a frozen :class:`~repro.ir.index.IndexSnapshot` — e.g. one loaded from
disk by :func:`repro.ir.persist.load_snapshot` — since snapshots are
self-contained and implement the read protocol.

:meth:`Searcher.search_many` batches queries through the same machinery:
one snapshot serves the whole batch, duplicate queries collapse into cache
hits, and per-term contribution arrays are shared across the batch — the
"multiple items per round" counterpart to single-query search.  Under
sharding, the whole batch is dispatched as one task per shard, amortizing
inter-process overhead.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass

from repro.ir.documents import Document
from repro.ir.embed import HashingEmbedder
from repro.ir.index import IndexSnapshot, InvertedIndex
from repro.ir.scoring import Bm25Scorer, Scorer
from repro.ir.shard import PARALLELISM_MODES, ShardedTopK
from repro.ir.topk import merge_ranked
from repro.ir.vector import (
    DEFAULT_RRF_K,
    DEFAULT_VECTOR_WEIGHT,
    HYBRID_DEPTH_MULTIPLIER,
    reciprocal_rank_fusion,
)
from repro.ir.wand import STRATEGIES, retrieve

__all__ = ["SearchHit", "Searcher"]


@dataclass(frozen=True)
class SearchHit:
    """One ranked result: the document, its score, and its 0-based rank."""

    document: Document
    score: float
    rank: int

    @property
    def doc_id(self) -> str:
        return self.document.doc_id


class Searcher:
    """A query interface over one inverted index (or frozen snapshot).

    Ties are broken by ``doc_id`` so rankings are fully deterministic — a
    property every benchmark in this repo depends on.

    ``cache_size`` bounds the LRU result cache (0 disables it).  Scorer
    parameters are treated as immutable once the searcher is constructed;
    swap scorers by constructing a new searcher.

    ``shards >= 2`` turns on sharded scoring for fast-path queries:
    postings are hash-partitioned and scored via ``parallelism``
    (``"serial"`` or ``"process"`` — see :mod:`repro.ir.shard`), with
    query batches Bloom-routed only to shards that can match.  Results
    are rank-identical either way.  A prebuilt
    :class:`~repro.ir.shard.ShardedTopK` (e.g. restored from per-shard
    snapshot files) can be handed in via ``sharded`` to skip the in-memory
    re-partition.  :meth:`close` releases the shard executor; searchers
    are usable as context managers.

    ``strategy`` selects the retrieval algorithm (see
    :mod:`repro.ir.wand`): ``"maxscore"`` (term-at-a-time), ``"wand"`` /
    ``"blockmax"`` (document-at-a-time), ``"auto"`` (the default, which
    resolves per query on its term count), or ``"hybrid"`` — lexical
    retrieval fused with cosine scoring over document embeddings by
    reciprocal rank (see the module docstring).  Lexical strategies
    return identical rankings — float-exact, tie-breaks included — so
    the result cache is shared across them; every search method also
    accepts a per-call ``strategy`` override.  ``vector_weight`` and
    ``rrf_k`` are the hybrid fusion defaults (also overridable per
    call); ``embedder`` is the shared
    :class:`~repro.ir.embed.HashingEmbedder` — it must match the
    configuration any persisted vector extents were built with.
    """

    def __init__(self, index: InvertedIndex | IndexSnapshot,
                 scorer: Scorer | None = None, cache_size: int = 256,
                 shards: int = 0, parallelism: str = "serial",
                 sharded: ShardedTopK | None = None,
                 strategy: str = "auto",
                 embedder: HashingEmbedder | None = None,
                 vector_weight: float = DEFAULT_VECTOR_WEIGHT,
                 rrf_k: int = DEFAULT_RRF_K):
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        if shards < 0:
            raise ValueError(f"shards must be non-negative, got {shards}")
        if parallelism not in PARALLELISM_MODES:
            raise ValueError(
                f"parallelism must be one of {PARALLELISM_MODES}, "
                f"got {parallelism!r}"
            )
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        if vector_weight < 0:
            raise ValueError(
                f"vector_weight must be >= 0, got {vector_weight}")
        if rrf_k < 1:
            raise ValueError(f"rrf_k must be >= 1, got {rrf_k}")
        self.index = index
        self.scorer = scorer or Bm25Scorer()
        self.strategy = strategy
        self.embedder = embedder or HashingEmbedder()
        self.vector_weight = vector_weight
        self.rrf_k = rrf_k
        self.cache_size = cache_size
        self.shards = shards if sharded is None else \
            max(shards, len(sharded.shards))
        self.parallelism = parallelism
        #: Result-cache effectiveness counters, cumulative over the
        #: searcher's lifetime (read by the serving pipeline's ``--explain``
        #: instrumentation; duplicate queries in one batch each count one
        #: lookup).
        self.cache_hits = 0
        self.cache_misses = 0
        #: How many hybrid searches degraded to lexical because no vector
        #: index was available (cumulative; the serving pipeline reports
        #: the per-batch delta in the ``--explain`` trace).
        self.hybrid_fallbacks = 0
        self._warned_fallback = False
        self._cache: OrderedDict[tuple, tuple[SearchHit, ...]] = OrderedDict()
        self._sharded: ShardedTopK | None = sharded
        self._vector_partitions: list | None = None
        self._vector_partitions_key: tuple | None = None
        # A handed-in shard set may be shared across searchers (e.g. the
        # collection's restored partitions); only shard sets this searcher
        # builds itself are its to shut down.
        self._owns_sharded = sharded is None

    def search(self, query: str, limit: int = 10,
               strategy: str | None = None,
               vector_weight: float | None = None,
               rrf_k: int | None = None) -> list[SearchHit]:
        """Ranked results for one query.  ``strategy`` /
        ``vector_weight`` / ``rrf_k`` override the searcher's defaults
        for this call only (``None`` keeps each default)."""
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        strategy = self._resolve_request(strategy)
        vector_weight, rrf_k = self._fusion_params(vector_weight, rrf_k)
        terms = self.index.analyzer.tokens(query)
        if not terms:
            return []
        return list(self._search_terms(tuple(terms), limit, strategy,
                                       vector_weight, rrf_k))

    def search_many(self, queries: Iterable[str], limit: int = 10,
                    strategy: str | None = None,
                    vector_weight: float | None = None,
                    rrf_k: int | None = None) -> list[list[SearchHit]]:
        """Ranked results for a batch of queries, in input order.

        Equivalent to ``[search(q, limit) for q in queries]`` but built for
        throughput: the whole batch runs against one index snapshot, term
        contribution arrays are shared between queries, and duplicate
        queries are answered from the result cache.  Under sharding, all
        cache-missing queries go to the shard executor as one batch; with
        ``strategy="hybrid"`` each miss's lexical ranking comes back from
        that batch and is fused with its vector ranking in-process.
        """
        strategy = self._resolve_request(strategy)
        vector_weight, rrf_k = self._fusion_params(vector_weight, rrf_k)
        queries = list(queries)
        if not (self.shards >= 2 and self.scorer.supports_topk()):
            return [self.search(query, limit, strategy=strategy,
                                vector_weight=vector_weight, rrf_k=rrf_k)
                    for query in queries]
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        analyzer = self.index.analyzer
        term_tuples = [tuple(analyzer.tokens(query)) for query in queries]
        family = self._cache_family(strategy, vector_weight, rrf_k)
        # Resolve cache hits immediately (storing this batch's own results
        # can evict pre-batch entries from the LRU, so a later re-lookup
        # could come up empty); distinct misses go to the shards as one
        # batch, deduplicated.
        resolved: list[tuple[SearchHit, ...] | None] = []
        pending: dict[tuple[str, ...], tuple[SearchHit, ...]] = {}
        for terms in term_tuples:
            resolved.append(
                self._cached_hits(terms, limit, family) if terms else ())
            if terms and resolved[-1] is None:
                pending.setdefault(terms, ())
        if pending:
            fuse = False
            if strategy == "hybrid" and vector_weight > 0:
                fuse = self._vector_index() is not None
                if not fuse:
                    self._note_fallback()
            fetch = max(limit * HYBRID_DEPTH_MULTIPLIER, limit) if fuse \
                else limit
            sharded = self._sharded_topk()
            ranked_lists = sharded.topk_many(
                self.scorer, [list(terms) for terms in pending], fetch,
                strategy)
            for terms, ranked in zip(pending, ranked_lists):
                if fuse:
                    ranked = self._fuse(terms, ranked, limit,
                                        vector_weight, rrf_k)
                pending[terms] = self._store_hits(terms, limit, family,
                                                  ranked[:limit])
        return [list(hits) if hits is not None else list(pending[terms])
                for hits, terms in zip(resolved, term_tuples)]

    def search_exhaustive(self, query: str, limit: int = 10) -> list[SearchHit]:
        """Reference path: score every matching document and sort.

        Kept as the ground truth the fast path is verified against, and as
        the fallback for scorers without fast-path support.  Bypasses the
        result cache.
        """
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        terms = self.index.analyzer.tokens(query)
        if not terms:
            return []
        ranked = self._ranked_exhaustive(list(terms), limit)
        return [SearchHit(self.index.document(doc_id), score, rank)
                for rank, (doc_id, score) in enumerate(ranked)]

    def best(self, query: str) -> SearchHit | None:
        hits = self.search(query, limit=1)
        return hits[0] if hits else None

    @property
    def routing_stats(self) -> dict | None:
        """Cumulative Bloom-routing statistics of the shard set this
        searcher dispatches to (see :attr:`ShardedTopK.routing_stats`),
        or ``None`` while no shard set exists — the plumbing the serving
        pipeline reads to report "shards routed" per batch."""
        return self._sharded.routing_stats if self._sharded is not None \
            else None

    def close(self) -> None:
        """Release the shard executor this searcher owns, if any
        (idempotent).  A shared shard set handed in at construction is
        left running — its owner (e.g. the collection) closes it."""
        if self._sharded is not None and self._owns_sharded:
            self._sharded.close()
            self._sharded = None

    def __enter__(self) -> "Searcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _resolve_request(self, strategy: str | None) -> str:
        """The effective strategy for one call (validated)."""
        if strategy is None:
            return self.strategy
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        return strategy

    def _fusion_params(self, vector_weight: float | None,
                       rrf_k: int | None) -> tuple[float, int]:
        """Effective (validated) fusion parameters for one call."""
        if vector_weight is None:
            vector_weight = self.vector_weight
        elif vector_weight < 0:
            raise ValueError(
                f"vector_weight must be >= 0, got {vector_weight}")
        if rrf_k is None:
            rrf_k = self.rrf_k
        elif rrf_k < 1:
            raise ValueError(f"rrf_k must be >= 1, got {rrf_k}")
        return vector_weight, rrf_k

    def _cache_family(self, strategy: str, vector_weight: float,
                      rrf_k: int) -> tuple:
        """The cache-key segment distinguishing result families.

        Lexical strategies — and hybrid with ``vector_weight == 0``,
        which returns lexical results verbatim — share one family;
        fusing runs are keyed by their fusion parameters and embedder
        identity so a tuned request can never serve a default-tuned
        entry (or vice versa).
        """
        if strategy == "hybrid" and vector_weight > 0:
            return ("hybrid", vector_weight, rrf_k,
                    self.embedder.cache_key())
        return ()

    def _cache_key(self, terms: tuple[str, ...], limit: int,
                   family: tuple) -> tuple:
        return (self.index.version, terms, self.scorer.cache_key(),
                limit, *family)

    def _cached_hits(self, terms: tuple[str, ...], limit: int,
                     family: tuple) -> tuple[SearchHit, ...] | None:
        key = self._cache_key(terms, limit, family)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        return cached

    def _store_hits(self, terms: tuple[str, ...], limit: int, family: tuple,
                    ranked: list[tuple[str, float]]) -> tuple[SearchHit, ...]:
        hits = tuple(SearchHit(self.index.document(doc_id), score, rank)
                     for rank, (doc_id, score) in enumerate(ranked))
        if self.cache_size:
            self._cache[self._cache_key(terms, limit, family)] = hits
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return hits

    def _sharded_topk(self) -> ShardedTopK:
        """The shard set for the current snapshot (rebuilt after any add;
        a stale *shared* set is abandoned to its owner, never closed)."""
        snapshot = self.index.snapshot()
        if self._sharded is None or self._sharded.version != snapshot.version:
            self.close()
            self._sharded = ShardedTopK(snapshot, self.shards,
                                        self.parallelism)
            self._owns_sharded = True
        return self._sharded

    def _search_terms(self, terms: tuple[str, ...], limit: int,
                      strategy: str, vector_weight: float,
                      rrf_k: int) -> tuple[SearchHit, ...]:
        family = self._cache_family(strategy, vector_weight, rrf_k)
        cached = self._cached_hits(terms, limit, family)
        if cached is not None:
            return cached
        if not self.scorer.supports_topk():
            ranked = self._ranked_exhaustive(list(terms), limit)
        elif strategy == "hybrid" and vector_weight > 0:
            ranked = self._hybrid_ranked(terms, limit, vector_weight, rrf_k)
        else:
            # Lexical fast path.  "hybrid" with weight 0 lands here too
            # (retrieve() resolves its lexical component as "auto"), so
            # it is rank- AND score-identical to the lexical strategies
            # — the identity the property suite pins.
            ranked = self._fast_ranked(terms, limit, strategy)
        return self._store_hits(terms, limit, family, ranked)

    def _fast_ranked(self, terms: tuple[str, ...], fetch: int,
                     strategy: str) -> list[tuple[str, float]]:
        if self.shards >= 2:
            return self._sharded_topk().topk(self.scorer, list(terms),
                                             fetch, strategy)
        return retrieve(self.index.snapshot(), self.scorer, list(terms),
                        fetch, strategy)

    def _hybrid_ranked(self, terms: tuple[str, ...], limit: int,
                       vector_weight: float,
                       rrf_k: int) -> list[tuple[str, float]]:
        """Lexical + vector rankings fused by reciprocal rank; degrades
        to the plain lexical ranking (with a one-time warning) when the
        index has no vectors for the searcher's embedder."""
        if self._vector_index() is None:
            self._note_fallback()
            return self._fast_ranked(terms, limit, strategy="hybrid")
        fetch = max(limit * HYBRID_DEPTH_MULTIPLIER, limit)
        lexical = self._fast_ranked(terms, fetch, strategy="hybrid")
        return self._fuse(terms, lexical, limit, vector_weight, rrf_k)

    def _fuse(self, terms: tuple[str, ...],
              lexical: list[tuple[str, float]], limit: int,
              vector_weight: float, rrf_k: int) -> list[tuple[str, float]]:
        """Fuse a lexical ranking with the query's vector ranking."""
        fetch = max(limit * HYBRID_DEPTH_MULTIPLIER, limit)
        query_vector = self.embedder.embed_query(" ".join(terms))
        vector_ranked = self._vector_topk(query_vector, fetch)
        return reciprocal_rank_fusion(lexical, vector_ranked, limit,
                                      vector_weight, rrf_k)

    def _vector_index(self):
        """The current snapshot's vector index for this searcher's
        embedder (``None`` = unavailable, the graceful-fallback case)."""
        return self.index.snapshot().vectors(self.embedder)

    def _vector_topk(self, query_vector, fetch: int,
                     ) -> list[tuple[str, float]]:
        """The vector side's ranking.  Sharded searchers score per-shard
        vector partitions and merge — float-identical to the global scan
        (cosine is per-document; property-tested), and aligned with the
        lexical shards so a partitioned deployment never rescans
        globally."""
        vector_index = self._vector_index()
        if self.shards < 2:
            return vector_index.topk(query_vector, fetch)
        key = (self.index.snapshot().version, self.shards)
        if self._vector_partitions is None or \
                self._vector_partitions_key != key:
            self._vector_partitions = vector_index.shard(self.shards)
            self._vector_partitions_key = key
        return merge_ranked(
            [partition.topk(query_vector, fetch)
             for partition in self._vector_partitions], fetch)

    def _note_fallback(self) -> None:
        self.hybrid_fallbacks += 1
        if not self._warned_fallback:
            self._warned_fallback = True
            warnings.warn(
                "hybrid retrieval requested but the index has no vector "
                "extents for this embedder (snapshot saved without "
                "vectors, or migrated from v1/v2 — re-save to add them); "
                "serving lexical results instead",
                RuntimeWarning, stacklevel=2)

    def _ranked_exhaustive(self, terms: list[str],
                           limit: int) -> list[tuple[str, float]]:
        scores = self.scorer.scores(self.index, terms)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

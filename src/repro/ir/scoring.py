"""Ranking functions over the inverted index: TF-IDF and BM25.

Both are the standard formulations.  TF-IDF uses log-scaled term frequency
and smoothed idf; BM25 uses the Robertson/Sparck-Jones idf with the usual
k1/b length normalization.  The paper's claim is precisely that these
*unmodified* IR scorers suffice once the database is qunit-ized, so we keep
them textbook.

Fast-path hooks
---------------

Each scorer can additionally support the top-k fast path in
:mod:`repro.ir.topk` by implementing four hooks:

``term_contributions(snapshot, term)``
    The per-document score contribution of one term, as aligned
    ``(doc_ids, contributions)`` sequences.  Must compute *bit-identical*
    floats to the exhaustive :meth:`Scorer.scores` accumulation so the fast
    path stays rank-identical (contributions are cached per term in the
    :class:`~repro.ir.index.IndexSnapshot`, which is the max-score /
    WAND-style "precompute upper bounds at index time" trick).

``finalize(snapshot, doc_id, raw)``
    Map an accumulated raw score to the final score (TF-IDF's length
    normalization, prior multiplication).  Must be monotone non-decreasing
    in ``raw`` — the early-termination proof relies on it.

``ceiling(snapshot, raw)``
    An upper bound of ``finalize`` over *every* document that can appear in
    a postings list, given a raw-score upper bound.  Used to decide when no
    unseen document can still enter the top k.

``prune_bound(snapshot, score)``
    The raw-space inverse of ``ceiling``: a raw value ``r`` such that
    ``ceiling(snapshot, raw) < score`` for every ``raw < r`` (``None``
    when no inverse is available).  Optional — purely a fast path: the
    document-at-a-time pivot scan in :mod:`repro.ir.wand` turns one
    ``ceiling`` call per cursor prefix into plain float comparisons
    against ``r``.  Implementations must never *overestimate* ``r``
    (skipping too much breaks rank identity); underestimating merely
    evaluates a few extra documents, so the built-ins nudge their inverse
    down two ulps wherever a float multiply/divide round-trip could
    overshoot.

``cache_key()``
    A hashable identity of the scorer parameters, keying both the
    per-snapshot contribution cache and the :class:`~repro.ir.retrieval.
    Searcher` result cache.  Scorer parameters are treated as immutable
    after construction.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Sequence

from repro.ir.index import InvertedIndex, IndexSnapshot

__all__ = ["Scorer", "TfIdfScorer", "Bm25Scorer", "PriorWeightedScorer"]


class _InstanceCacheKey:
    """Hashable identity wrapper for the default :meth:`Scorer.cache_key`.

    Hashes/compares by wrapper identity while pinning the scorer with a
    strong reference, so (a) unhashable scorers (e.g. ``__eq__``-defining
    dataclasses) still get a working default key, and (b) the scorer can
    never be garbage-collected while a cache references its key — unlike
    a raw ``id()``, whose reuse after collection would let one scorer be
    served another's cached contributions.
    """

    __slots__ = ("scorer",)

    def __init__(self, scorer: "Scorer"):
        self.scorer = scorer


class Scorer:
    """Interface: score every document matching any query term."""

    def scores(self, index: InvertedIndex, terms: list[str]) -> dict[str, float]:
        raise NotImplementedError

    # -- fast-path hooks (see module docstring and repro.ir.topk) ----------

    def cache_key(self) -> tuple:
        """Hashable identity of this scorer's parameters.

        The default is per-instance (see :class:`_InstanceCacheKey`): safe
        for any scorer, but every instance gets its own cache entries.
        Override with a value-based key (as the built-ins do) so
        equal-parameter scorers share cache entries and survive pickling
        into shard workers; include the class in it so subclasses that
        change the scoring math never share entries with their base.
        """
        try:
            return self._default_cache_key
        except AttributeError:
            key = (type(self).__qualname__, _InstanceCacheKey(self))
            # object.__setattr__ so frozen-dataclass scorers work too.
            object.__setattr__(self, "_default_cache_key", key)
            return key

    def supports_topk(self) -> bool:
        """Whether this scorer implements the fast-path hooks."""
        return False

    def term_contributions(
        self, snapshot: IndexSnapshot, term: str,
    ) -> tuple[Sequence[str], Sequence[float]]:
        raise NotImplementedError

    def finalize(self, snapshot: IndexSnapshot, doc_id: str,
                 raw: float) -> float:
        return raw

    def ceiling(self, snapshot: IndexSnapshot, raw: float) -> float:
        return raw

    def prune_bound(self, snapshot: IndexSnapshot,
                    score: float) -> float | None:
        """Raw-space inverse of :meth:`ceiling` (see the module docstring).

        ``None`` — the safe default — makes the document-at-a-time path
        fall back to per-prefix :meth:`ceiling` calls.  A subclass that
        overrides :meth:`ceiling` must override this consistently (or
        leave it ``None``); the built-ins all provide exact or
        conservatively-nudged inverses.
        """
        return None


def _nudge_down(value: float) -> float:
    """Two ulps below ``value`` — the safety margin for prune bounds
    derived through a float multiply/divide round-trip (see the
    ``prune_bound`` contract in the module docstring)."""
    down = math.nextafter(value, -math.inf)
    return math.nextafter(down, -math.inf)


class TfIdfScorer(Scorer):
    """Cosine-flavoured TF-IDF: sum over terms of (1+log tf) * idf, with
    document-length normalization by the euclidean-ish sqrt length.

    The term-frequency component is clamped at ``1 + log(max(tf, 1))`` so a
    weighted frequency below 1 — legal whenever a field weight is
    fractional — can never turn a *match* into a penalty.
    """

    @staticmethod
    def _idf(n_docs: int, df: int) -> float:
        return math.log((n_docs + 1) / (df + 0.5))

    @staticmethod
    def _tf_component(weighted_tf: float) -> float:
        return 1.0 + math.log(max(weighted_tf, 1.0))

    def scores(self, index: InvertedIndex, terms: list[str]) -> dict[str, float]:
        accumulator: dict[str, float] = {}
        n_docs = index.document_count
        if n_docs == 0:
            return accumulator
        for term in terms:
            df = index.document_frequency(term)
            if df == 0:
                continue
            idf = self._idf(n_docs, df)
            for posting in index.postings(term):
                tf_component = self._tf_component(posting.weighted_tf)
                accumulator[posting.doc_id] = (
                    accumulator.get(posting.doc_id, 0.0) + tf_component * idf
                )
        for doc_id in accumulator:
            length = index.document_length(doc_id)
            if length > 0:
                accumulator[doc_id] /= math.sqrt(length)
        return accumulator

    # -- fast path ---------------------------------------------------------

    def cache_key(self) -> tuple:
        return (type(self).__qualname__,)

    def supports_topk(self) -> bool:
        return True

    def term_contributions(
        self, snapshot: IndexSnapshot, term: str,
    ) -> tuple[Sequence[str], Sequence[float]]:
        df = snapshot.document_frequency(term)
        if df == 0:
            return (), ()
        idf = self._idf(snapshot.document_count, df)
        doc_ids: list[str] = []
        contributions: list[float] = []
        for posting in snapshot.postings(term):
            doc_ids.append(posting.doc_id)
            contributions.append(self._tf_component(posting.weighted_tf) * idf)
        return doc_ids, contributions

    def finalize(self, snapshot: IndexSnapshot, doc_id: str,
                 raw: float) -> float:
        length = snapshot.document_length(doc_id)
        return raw / math.sqrt(length) if length > 0 else raw

    def ceiling(self, snapshot: IndexSnapshot, raw: float) -> float:
        # Every document in a postings list has positive length, so the
        # shortest posted document maximizes the normalized score.
        shortest = snapshot.min_document_length
        return raw / math.sqrt(shortest) if shortest > 0 else raw

    def prune_bound(self, snapshot: IndexSnapshot,
                    score: float) -> float | None:
        shortest = snapshot.min_document_length
        if shortest <= 0:
            return score
        return _nudge_down(score * math.sqrt(shortest))


class PriorWeightedScorer(Scorer):
    """Wraps a base scorer with per-document static priors.

    This is how PageRank-flavoured signals enter the qunit paradigm
    without touching the database: the prior (e.g. entity popularity) is
    just another document feature, multiplied into the text score — the
    "structured information as one source of information amongst many"
    point of Sec. 3.
    """

    def __init__(self, base: Scorer, priors: dict[str, float],
                 default: float = 1.0):
        if default <= 0:
            raise ValueError(f"default prior must be positive, got {default}")
        for doc_id, prior in priors.items():
            if prior <= 0:
                raise ValueError(
                    f"prior for {doc_id!r} must be positive, got {prior}"
                )
        self.base = base
        self.priors = dict(priors)
        self.default = default
        self._max_prior = max(max(self.priors.values(), default=default),
                              default)
        # Value-based identity: stable across pickling, so worker processes
        # in sharded retrieval reuse their contribution/result caches
        # instead of growing a fresh entry set per unpickled copy.  A
        # digest keeps the key small however large the prior table is
        # (repr of floats is shortest-round-trip exact).
        digest = hashlib.sha256(
            repr((sorted(self.priors.items()), self.default)).encode("utf-8")
        ).hexdigest()
        self._cache_key = (type(self).__qualname__, base.cache_key(), digest)

    def scores(self, index: InvertedIndex, terms: list[str]) -> dict[str, float]:
        base_scores = self.base.scores(index, terms)
        return {
            doc_id: score * self.priors.get(doc_id, self.default)
            for doc_id, score in base_scores.items()
        }

    # -- fast path ---------------------------------------------------------

    def cache_key(self) -> tuple:
        return self._cache_key

    def supports_topk(self) -> bool:
        return self.base.supports_topk()

    def term_contributions(
        self, snapshot: IndexSnapshot, term: str,
    ) -> tuple[Sequence[str], Sequence[float]]:
        # Priors apply at finalize time; raw accumulation is the base's,
        # so the snapshot can share one contribution cache per base scorer.
        cached = snapshot.term_contributions(self.base, term)
        return cached.doc_ids, cached.contributions

    def finalize(self, snapshot: IndexSnapshot, doc_id: str,
                 raw: float) -> float:
        return (self.base.finalize(snapshot, doc_id, raw)
                * self.priors.get(doc_id, self.default))

    def ceiling(self, snapshot: IndexSnapshot, raw: float) -> float:
        return self.base.ceiling(snapshot, raw) * self._max_prior

    def prune_bound(self, snapshot: IndexSnapshot,
                    score: float) -> float | None:
        base_score = _nudge_down(score / self._max_prior)
        return self.base.prune_bound(snapshot, base_score)


class Bm25Scorer(Scorer):
    """Okapi BM25 with parameters ``k1`` (tf saturation) and ``b`` (length)."""

    def __init__(self, k1: float = 1.2, b: float = 0.75):
        if k1 < 0:
            raise ValueError(f"k1 must be non-negative, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.k1 = k1
        self.b = b

    @staticmethod
    def _idf(n_docs: int, df: int) -> float:
        return math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))

    def _contribution(self, idf: float, tf: float, length: float,
                      avg_len: float) -> float:
        denom = tf + self.k1 * (1.0 - self.b + self.b * length / avg_len)
        return idf * (tf * (self.k1 + 1.0)) / denom

    def scores(self, index: InvertedIndex, terms: list[str]) -> dict[str, float]:
        accumulator: dict[str, float] = {}
        n_docs = index.document_count
        if n_docs == 0:
            return accumulator
        avg_len = index.average_document_length or 1.0
        for term in terms:
            df = index.document_frequency(term)
            if df == 0:
                continue
            idf = self._idf(n_docs, df)
            for posting in index.postings(term):
                length = index.document_length(posting.doc_id)
                accumulator[posting.doc_id] = (
                    accumulator.get(posting.doc_id, 0.0)
                    + self._contribution(idf, posting.weighted_tf, length,
                                         avg_len)
                )
        return accumulator

    # -- fast path ---------------------------------------------------------

    def cache_key(self) -> tuple:
        return (type(self).__qualname__, self.k1, self.b)

    def supports_topk(self) -> bool:
        return True

    def prune_bound(self, snapshot: IndexSnapshot,
                    score: float) -> float | None:
        # BM25 needs no finalization, so the ceiling is the identity and
        # its raw-space inverse is exact.
        return score

    def term_contributions(
        self, snapshot: IndexSnapshot, term: str,
    ) -> tuple[Sequence[str], Sequence[float]]:
        df = snapshot.document_frequency(term)
        if df == 0:
            return (), ()
        idf = self._idf(snapshot.document_count, df)
        avg_len = snapshot.average_document_length or 1.0
        doc_ids: list[str] = []
        contributions: list[float] = []
        for posting in snapshot.postings(term):
            doc_ids.append(posting.doc_id)
            contributions.append(
                self._contribution(idf, posting.weighted_tf,
                                   snapshot.document_length(posting.doc_id),
                                   avg_len)
            )
        return doc_ids, contributions

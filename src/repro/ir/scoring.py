"""Ranking functions over the inverted index: TF-IDF and BM25.

Both are the standard formulations.  TF-IDF uses log-scaled term frequency
and smoothed idf; BM25 uses the Robertson/Sparck-Jones idf with the usual
k1/b length normalization.  The paper's claim is precisely that these
*unmodified* IR scorers suffice once the database is qunit-ized, so we keep
them textbook.
"""

from __future__ import annotations

import math

from repro.ir.index import InvertedIndex

__all__ = ["Scorer", "TfIdfScorer", "Bm25Scorer", "PriorWeightedScorer"]


class Scorer:
    """Interface: score every document matching any query term."""

    def scores(self, index: InvertedIndex, terms: list[str]) -> dict[str, float]:
        raise NotImplementedError


class TfIdfScorer(Scorer):
    """Cosine-flavoured TF-IDF: sum over terms of (1+log tf) * idf, with
    document-length normalization by the euclidean-ish sqrt length."""

    def scores(self, index: InvertedIndex, terms: list[str]) -> dict[str, float]:
        accumulator: dict[str, float] = {}
        n_docs = index.document_count
        if n_docs == 0:
            return accumulator
        for term in terms:
            df = index.document_frequency(term)
            if df == 0:
                continue
            idf = math.log((n_docs + 1) / (df + 0.5))
            for posting in index.postings(term):
                tf_component = 1.0 + math.log(posting.weighted_tf)
                accumulator[posting.doc_id] = (
                    accumulator.get(posting.doc_id, 0.0) + tf_component * idf
                )
        for doc_id in accumulator:
            length = index.document_length(doc_id)
            if length > 0:
                accumulator[doc_id] /= math.sqrt(length)
        return accumulator


class PriorWeightedScorer(Scorer):
    """Wraps a base scorer with per-document static priors.

    This is how PageRank-flavoured signals enter the qunit paradigm
    without touching the database: the prior (e.g. entity popularity) is
    just another document feature, multiplied into the text score — the
    "structured information as one source of information amongst many"
    point of Sec. 3.
    """

    def __init__(self, base: Scorer, priors: dict[str, float],
                 default: float = 1.0):
        if default <= 0:
            raise ValueError(f"default prior must be positive, got {default}")
        for doc_id, prior in priors.items():
            if prior <= 0:
                raise ValueError(
                    f"prior for {doc_id!r} must be positive, got {prior}"
                )
        self.base = base
        self.priors = dict(priors)
        self.default = default

    def scores(self, index: InvertedIndex, terms: list[str]) -> dict[str, float]:
        base_scores = self.base.scores(index, terms)
        return {
            doc_id: score * self.priors.get(doc_id, self.default)
            for doc_id, score in base_scores.items()
        }


class Bm25Scorer(Scorer):
    """Okapi BM25 with parameters ``k1`` (tf saturation) and ``b`` (length)."""

    def __init__(self, k1: float = 1.2, b: float = 0.75):
        if k1 < 0:
            raise ValueError(f"k1 must be non-negative, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.k1 = k1
        self.b = b

    def scores(self, index: InvertedIndex, terms: list[str]) -> dict[str, float]:
        accumulator: dict[str, float] = {}
        n_docs = index.document_count
        if n_docs == 0:
            return accumulator
        avg_len = index.average_document_length or 1.0
        for term in terms:
            df = index.document_frequency(term)
            if df == 0:
                continue
            idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
            for posting in index.postings(term):
                tf = posting.weighted_tf
                length = index.document_length(posting.doc_id)
                denom = tf + self.k1 * (1.0 - self.b + self.b * length / avg_len)
                accumulator[posting.doc_id] = (
                    accumulator.get(posting.doc_id, 0.0)
                    + idf * (tf * (self.k1 + 1.0)) / denom
                )
        return accumulator

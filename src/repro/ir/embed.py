"""Deterministic character-n-gram hashing embedder.

The hybrid retrieval backend (strategy ``"hybrid"``, see
:mod:`repro.ir.vector` and :mod:`repro.ir.retrieval`) needs document and
query vectors that are

- **dependency-free** — pure python, no model weights, no downloads;
- **deterministic** — bit-identical floats for the same text across
  processes, platforms, and interpreter restarts (snapshots persist the
  vectors, and a loaded vector must equal a recomputed one); and
- **robust to surface variation** — the paper's motivating scenario is
  the query whose *phrasing* misses the decorated instance text; typos,
  joined words, and morphological drift should still land near the
  document.

Character n-grams hashed into a fixed-width signed bucket space give all
three: each n-gram of the normalized text (:func:`repro.utils.text.
normalize`) is hashed with blake2b — stable everywhere, unlike ``hash()``
under ``PYTHONHASHSEED`` — to a bucket index and a sign, accumulated with
the field's weight, and the final vector is L2-normalized so cosine
similarity is a plain dot product.  A one-character typo perturbs only
the few n-grams that cross it, so the query vector moves a little instead
of losing a whole token the way the inverted index does.

The embedder's :meth:`~HashingEmbedder.config` round-trips through the
snapshot container (:mod:`repro.ir.persist` persists it next to the
vector columns) so a load can verify the stored vectors were produced by
the same configuration before serving them.
"""

from __future__ import annotations

import hashlib
import math

from repro.ir.documents import Document
from repro.utils.text import normalize

__all__ = ["HashingEmbedder", "DEFAULT_DIMS", "DEFAULT_NGRAM_SIZES"]

#: Default vector width.  256 float64 buckets keep a 10k-document matrix
#: around 20 MB — small enough to scan brute-force in pure python —
#: while collisions stay rare for the n-gram vocabularies our synthetic
#: corpora produce.
DEFAULT_DIMS = 256

#: Default character n-gram sizes.  Trigrams carry most of the typo
#: robustness; 4-grams sharpen precision on longer tokens.
DEFAULT_NGRAM_SIZES = (3, 4)


class HashingEmbedder:
    """Fixed-width signed-hashing embedder over character n-grams.

    Instances are immutable and cheap; share one across an index.  Two
    embedders with equal :meth:`config` produce bit-identical vectors
    (property-tested across processes in
    ``tests/test_property_based.py``).
    """

    __slots__ = ("dims", "ngram_sizes", "seed")

    def __init__(self, dims: int = DEFAULT_DIMS,
                 ngram_sizes: tuple[int, ...] = DEFAULT_NGRAM_SIZES,
                 seed: int = 0):
        """An embedder producing ``dims``-wide L2-normalized vectors.

        Args:
            dims: vector width (>= 8).
            ngram_sizes: character n-gram sizes to hash (each >= 2).
            seed: hash salt, part of the persisted config — vectors from
                different seeds are incomparable.

        Raises:
            ValueError: on a too-small width or empty/invalid n-gram
                sizes.
        """
        if dims < 8:
            raise ValueError(f"dims must be >= 8, got {dims}")
        sizes = tuple(int(n) for n in ngram_sizes)
        if not sizes or any(n < 2 for n in sizes):
            raise ValueError(
                f"ngram_sizes must be non-empty and each >= 2, "
                f"got {ngram_sizes!r}")
        self.dims = dims
        self.ngram_sizes = sizes
        self.seed = int(seed)

    # -- identity ------------------------------------------------------------

    def config(self) -> dict:
        """A JSON-safe description of this embedder; persisted next to
        vector columns so loads can verify compatibility.  Inverse of
        :meth:`from_config`."""
        return {
            "kind": "char_ngram_hash",
            "dims": self.dims,
            "ngram_sizes": list(self.ngram_sizes),
            "seed": self.seed,
        }

    @classmethod
    def from_config(cls, config: dict) -> "HashingEmbedder":
        """Rebuild an embedder from :meth:`config` output.

        Raises:
            ValueError: on an unknown kind or malformed config.
        """
        if config.get("kind") != "char_ngram_hash":
            raise ValueError(
                f"unknown embedder kind {config.get('kind')!r}")
        try:
            return cls(dims=config["dims"],
                       ngram_sizes=tuple(config["ngram_sizes"]),
                       seed=config.get("seed", 0))
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"malformed embedder config: {config!r}") from exc

    def cache_key(self) -> tuple:
        """A hashable value-based identity (equal configs hash equal —
        the same contract scorer ``cache_key`` follows)."""
        return ("char_ngram_hash", self.dims, self.ngram_sizes, self.seed)

    def __eq__(self, other) -> bool:
        return isinstance(other, HashingEmbedder) and \
            self.cache_key() == other.cache_key()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def __repr__(self) -> str:
        return (f"HashingEmbedder(dims={self.dims}, "
                f"ngram_sizes={self.ngram_sizes}, seed={self.seed})")

    # -- embedding -----------------------------------------------------------

    def _accumulate(self, buckets: list[float], text: str,
                    weight: float) -> None:
        """Add ``text``'s signed n-gram hashes into ``buckets``.

        The text is normalized and space-padded so n-grams see token
        boundaries; each (size, gram) pair hashes through one blake2b
        digest to a bucket and a sign.  Accumulation order is the scan
        order of the string — fully deterministic, so float sums are
        bit-identical across runs.
        """
        padded = f" {normalize(text)} "
        if padded == "  ":
            return
        dims = self.dims
        prefix = str(self.seed).encode("ascii")
        for n in self.ngram_sizes:
            for start in range(len(padded) - n + 1):
                gram = padded[start:start + n]
                digest = hashlib.blake2b(
                    prefix + b"\x00" + str(n).encode("ascii") + b"\x00"
                    + gram.encode("utf-8"),
                    digest_size=8).digest()
                value = int.from_bytes(digest, "big")
                sign = 1.0 if value & 1 else -1.0
                buckets[(value >> 1) % dims] += sign * weight

    @staticmethod
    def _normalized(buckets: list[float]) -> tuple[float, ...]:
        norm = math.sqrt(math.fsum(v * v for v in buckets))
        if norm == 0.0:
            return tuple(buckets)
        return tuple(v / norm for v in buckets)

    def embed_text(self, text: str) -> tuple[float, ...]:
        """The L2-normalized vector for one piece of text (all-zero for
        text that normalizes to nothing)."""
        buckets = [0.0] * self.dims
        self._accumulate(buckets, text, 1.0)
        return self._normalized(buckets)

    def embed_query(self, query: str) -> tuple[float, ...]:
        """The vector for a query string (same space as documents)."""
        return self.embed_text(query)

    def embed_document(self, document: Document) -> tuple[float, ...]:
        """The vector for a document, honoring per-field weights (a
        title field contributes proportionally more than a body field,
        mirroring how the inverted index weights term frequencies)."""
        buckets = [0.0] * self.dims
        for field_name, text in document.fields:
            if text:
                self._accumulate(buckets, text, document.weight(field_name))
        return self._normalized(buckets)

"""Relevance feedback: Rocchio-style query expansion.

Sec. 3 argues the qunit separation "makes our system easier to extend and
enhance with additional IR methods for ranking, such as relevance
feedback."  This module supplies that extension: given documents the user
(or pseudo-feedback) marked relevant, the query vector is expanded with
their most characteristic terms and re-run — the classic Rocchio update
with only the positive term (β), which is the standard choice for
pseudo-relevance feedback.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.ir.index import InvertedIndex
from repro.ir.retrieval import Searcher, SearchHit

__all__ = ["RocchioFeedback"]


class RocchioFeedback:
    """Expands queries from relevant documents.

    ``alpha`` weights the original query terms, ``beta`` the feedback
    terms; ``expansion_terms`` caps how many new terms are added.
    """

    def __init__(self, alpha: float = 1.0, beta: float = 0.6,
                 expansion_terms: int = 8):
        if alpha < 0 or beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if expansion_terms < 0:
            raise ValueError("expansion_terms must be non-negative")
        self.alpha = alpha
        self.beta = beta
        self.expansion_terms = expansion_terms

    # -- term selection ----------------------------------------------------------

    def expansion_for(self, index: InvertedIndex,
                      relevant_doc_ids: list[str],
                      original_terms: list[str]) -> list[tuple[str, float]]:
        """(term, weight) pairs to add to the query.

        Terms are scored by summed tf-idf mass across the relevant
        documents; original query terms are excluded (they are already
        weighted by alpha).
        """
        if not relevant_doc_ids:
            return []
        n_docs = index.document_count
        mass: Counter = Counter()
        for doc_id in relevant_doc_ids:
            document = index.document(doc_id)
            for token in index.analyzer.tokens(document.full_text()):
                mass[token] += 1
        original = set(original_terms)
        scored: list[tuple[str, float]] = []
        for term, tf in mass.items():
            if term in original:
                continue
            df = index.document_frequency(term)
            if df == 0:
                continue
            idf = math.log((n_docs + 1) / (df + 0.5))
            scored.append((term, tf * idf))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        top = scored[: self.expansion_terms]
        if not top:
            return []
        # Normalize feedback weights so beta is comparable across queries.
        peak = top[0][1]
        return [(term, self.beta * weight / peak) for term, weight in top]

    # -- feedback search -----------------------------------------------------------

    def search(self, searcher: Searcher, query: str,
               relevant_doc_ids: list[str], limit: int = 10) -> list[SearchHit]:
        """Re-run ``query`` expanded with terms from the relevant docs."""
        index = searcher.index
        original_terms = index.analyzer.tokens(query)
        expansion = self.expansion_for(index, relevant_doc_ids, original_terms)

        weighted: dict[str, float] = {
            term: self.alpha for term in original_terms
        }
        for term, weight in expansion:
            weighted[term] = weighted.get(term, 0.0) + weight

        scores: dict[str, float] = {}
        for term, weight in weighted.items():
            term_scores = searcher.scorer.scores(index, [term])
            for doc_id, value in term_scores.items():
                scores[doc_id] = scores.get(doc_id, 0.0) + weight * value
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [
            SearchHit(index.document(doc_id), score, rank)
            for rank, (doc_id, score) in enumerate(ranked[:limit])
        ]

    def pseudo_feedback_search(self, searcher: Searcher, query: str,
                               assume_top: int = 3,
                               limit: int = 10) -> list[SearchHit]:
        """Pseudo-relevance feedback: assume the initial top-k are relevant."""
        initial = searcher.search(query, limit=assume_top)
        if not initial:
            return []
        return self.search(searcher, query,
                           [hit.doc_id for hit in initial], limit)

"""Vector retrieval: brute-force cosine top-k and reciprocal-rank fusion.

The second scoring backend next to the inverted index.  A
:class:`VectorIndex` holds one L2-normalized embedding per document
(:mod:`repro.ir.embed`) in a flat float64 row-major matrix; cosine
similarity is then a plain dot product, and :meth:`VectorIndex.topk`
scans the matrix brute-force — no approximate structures, so results are
exact and deterministic, and a pure-python scan stays fast at the
collection sizes a single process serves.

Shardability is the property the retrieval layer leans on: cosine
against one document never depends on any other document, so
partitioning the matrix by the same CRC32 document hash the inverted
index shards use (:func:`repro.ir.shard.shard_id`) and merging per-shard
top-k lists reproduces the global ranking *float-exactly* (property-
tested).  That lets the sharded searcher fuse per-shard vector
partitions with per-shard lexical results without a global rescan.

:func:`reciprocal_rank_fusion` combines the lexical and vector rankings
by rank alone — ``1 / (k + rank)`` per list, the vector list weighted —
which sidesteps the incomparability of BM25 scores and cosines.  Fusion
is deterministic and depends only on the two input *rankings*, so any
execution order (shard counts, executors, Bloom routing) that preserves
each ranking preserves the fused output.
"""

from __future__ import annotations

import zlib
from array import array
from collections.abc import Iterable, Mapping

__all__ = [
    "VectorIndex",
    "reciprocal_rank_fusion",
    "DEFAULT_RRF_K",
    "DEFAULT_VECTOR_WEIGHT",
    "HYBRID_DEPTH_MULTIPLIER",
]

#: The rank-smoothing constant of reciprocal-rank fusion; 60 is the
#: standard choice from the original RRF paper (Cormack et al., 2009) —
#: large enough that a few rank swaps deep in a list barely move the
#: fused score.
DEFAULT_RRF_K = 60

#: Default weight of the vector ranking relative to the lexical one.
#: Weight 0 disables the vector side entirely — the hybrid strategy then
#: returns the lexical results verbatim (scores included), the identity
#: the property suite pins.
DEFAULT_VECTOR_WEIGHT = 1.0

#: How many candidates each side fetches per requested result before
#: fusing: deeper lists let fusion resurface documents the other side
#: ranked just below the cut.
HYBRID_DEPTH_MULTIPLIER = 3


class VectorIndex:
    """Frozen dense vectors for one document set, cosine-searchable.

    The matrix is a flat little-endian-persistable ``array('d')`` of
    ``len(doc_ids) * dims`` floats, row ``i`` belonging to
    ``doc_ids[i]``; rows are the embedder's L2-normalized output, so
    :meth:`topk` scores with dot products.  ``embedder_config``
    (:meth:`repro.ir.embed.HashingEmbedder.config`) travels with the
    index — persisted loads refuse to serve vectors built by a different
    configuration.
    """

    __slots__ = ("doc_ids", "dims", "matrix", "embedder_config")

    def __init__(self, doc_ids: tuple[str, ...], matrix,
                 dims: int, embedder_config: dict):
        """Wrap an existing matrix (no copy).

        Raises:
            ValueError: when the matrix size disagrees with
                ``len(doc_ids) * dims``.
        """
        flat = matrix if isinstance(matrix, array) else array("d", matrix)
        if len(flat) != len(doc_ids) * dims:
            raise ValueError(
                f"matrix holds {len(flat)} floats; expected "
                f"{len(doc_ids)} x {dims}")
        self.doc_ids = tuple(doc_ids)
        self.dims = dims
        self.matrix = flat
        self.embedder_config = dict(embedder_config)

    @classmethod
    def build(cls, embedder, documents: Mapping[str, object],
              ) -> "VectorIndex":
        """Embed ``documents`` (``doc_id -> Document``) into an index.

        Documents are embedded in sorted doc_id order, so the matrix —
        and therefore every persisted byte — is independent of the
        mapping's iteration order.
        """
        doc_ids = tuple(sorted(documents))
        matrix = array("d")
        for doc_id in doc_ids:
            matrix.extend(embedder.embed_document(documents[doc_id]))
        return cls(doc_ids, matrix, embedder.dims, embedder.config())

    def __len__(self) -> int:
        return len(self.doc_ids)

    def row(self, i: int) -> tuple[float, ...]:
        """Document ``i``'s vector (a copy)."""
        base = i * self.dims
        return tuple(self.matrix[base:base + self.dims])

    def topk(self, query_vector, limit: int) -> list[tuple[str, float]]:
        """The ``limit`` most-cosine-similar ``(doc_id, score)`` pairs.

        Ties break on doc_id, the same ``(-score, doc_id)`` order the
        lexical retrieval paths use.  Documents with non-positive
        similarity are dropped — an all-zero query (text that normalizes
        to nothing) matches nothing rather than everything.
        """
        if limit <= 0 or not self.doc_ids:
            return []
        dims = self.dims
        matrix = self.matrix
        scored = []
        for i, doc_id in enumerate(self.doc_ids):
            base = i * dims
            score = sum(q * d for q, d in
                        zip(query_vector, matrix[base:base + dims]))
            if score > 0.0:
                scored.append((doc_id, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:limit]

    def restrict(self, doc_ids: Iterable[str]) -> "VectorIndex":
        """A new index holding only the rows for ``doc_ids`` (order
        preserved from this index; unknown ids are ignored)."""
        keep = set(doc_ids)
        dims = self.dims
        kept_ids = []
        matrix = array("d")
        for i, doc_id in enumerate(self.doc_ids):
            if doc_id in keep:
                kept_ids.append(doc_id)
                base = i * dims
                matrix.extend(self.matrix[base:base + dims])
        return VectorIndex(tuple(kept_ids), matrix, dims,
                           self.embedder_config)

    def shard(self, count: int) -> list["VectorIndex"]:
        """Partition by the CRC32 document hash the inverted-index
        shards use, so a vector partition lines up with its lexical
        shard.  Merging per-partition :meth:`topk` lists with
        :func:`~repro.ir.topk.merge_ranked` is float-identical to the
        global :meth:`topk` (cosine is per-document — property-tested).

        Raises:
            ValueError: when ``count`` < 1.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        buckets: list[list[str]] = [[] for _ in range(count)]
        for doc_id in self.doc_ids:
            buckets[zlib.crc32(doc_id.encode("utf-8")) % count].append(
                doc_id)
        return [self.restrict(bucket) for bucket in buckets]


def reciprocal_rank_fusion(lexical: list[tuple[str, float]],
                           vector: list[tuple[str, float]],
                           limit: int,
                           vector_weight: float = DEFAULT_VECTOR_WEIGHT,
                           rrf_k: int = DEFAULT_RRF_K,
                           ) -> list[tuple[str, float]]:
    """Fuse a lexical and a vector ranking into one ``(doc_id, score)``
    list of at most ``limit`` entries.

    Each document scores ``1 / (rrf_k + lexical_rank) + vector_weight /
    (rrf_k + vector_rank)`` over the union of the two lists (a missing
    rank contributes nothing); ties break on doc_id.  Only the input
    *rankings* matter — the incoming scores are ignored — so fusion is
    invariant under anything that preserves each side's order.

    Raises:
        ValueError: on a negative ``vector_weight`` or ``rrf_k`` < 1.
    """
    if vector_weight < 0:
        raise ValueError(
            f"vector_weight must be >= 0, got {vector_weight}")
    if rrf_k < 1:
        raise ValueError(f"rrf_k must be >= 1, got {rrf_k}")
    fused: dict[str, float] = {}
    for rank, (doc_id, _score) in enumerate(lexical, start=1):
        fused[doc_id] = fused.get(doc_id, 0.0) + 1.0 / (rrf_k + rank)
    if vector_weight > 0:
        for rank, (doc_id, _score) in enumerate(vector, start=1):
            fused[doc_id] = fused.get(doc_id, 0.0) \
                + vector_weight / (rrf_k + rank)
    ranked = sorted(fused.items(), key=lambda pair: (-pair[1], pair[0]))
    return ranked[:limit]

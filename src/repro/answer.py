"""The common answer model every search system produces.

The paper's evaluation (Sec. 5.3) hand-converted each system's output into
"a paragraph in simplified natural English" so raters judged *content*, not
presentation.  We reproduce that levelling: every system — qunit search,
BANKS, LCA, MLCA — emits an :class:`Answer` whose ``atoms`` are the
(table, column, normalized value) facts the result contains.  The simulated
raters score answers purely from atoms, so no system gains from formatting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.text import normalize

__all__ = ["Atom", "Answer", "atom"]

Atom = tuple[str, str, str]  # (table, column, normalized value)


def atom(table: str, column: str, value: object) -> Atom:
    """Build a normalized content atom."""
    if isinstance(value, bool):
        text = "yes" if value else "no"
    else:
        text = str(value)
    return (table, column, normalize(text))


@dataclass(frozen=True)
class Answer:
    """One search result as judged content.

    ``system`` identifies the producing algorithm, ``atoms`` the content
    facts, ``text`` a rendered paragraph (for humans and for IR scoring),
    ``provenance`` free-form details (tree shape, qunit name, ...).
    """

    system: str
    atoms: frozenset[Atom]
    text: str
    score: float = 0.0
    provenance: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def empty(system: str) -> "Answer":
        """The canonical no-result answer (rated 0 by construction)."""
        return Answer(system=system, atoms=frozenset(), text="")

    @property
    def is_empty(self) -> bool:
        return not self.atoms

    def tables(self) -> set[str]:
        return {table for table, _column, _value in self.atoms}

    def values_for(self, table: str, column: str) -> set[str]:
        return {
            value for t, c, value in self.atoms if t == table and c == column
        }

    def meta(self, key: str, default: object = None) -> object:
        for meta_key, value in self.provenance:
            if meta_key == key:
                return value
        return default

"""Qunit definitions and instances (Sec. 2 of the paper).

A definition is *base expression* (SQL with ``$params``) + *conversion
expression* (presentation template) + metadata.  Instances are derived by
binding the parameters; the definition enumerates its bindings either from
the distinct values of a declared binder column or from an explicit
enumerator query.  Nothing is materialized until asked — "there is no
requirement that qunits be materialized" (Sec. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.answer import Answer, Atom, atom
from repro.core.presentation import ConversionTemplate, render_default
from repro.errors import DerivationError, QueryError
from repro.ir.documents import Document
from repro.relational.algebra import execute
from repro.relational.sql import compile_select, parse_select, split_return_clause
from repro.utils.text import normalize, to_identifier

__all__ = ["ParamBinder", "QunitDefinition", "QunitInstance"]


@dataclass(frozen=True)
class ParamBinder:
    """Declares where a parameter's instance values come from.

    ``param`` is bound to each distinct non-null value of ``table.column``.
    """

    param: str
    table: str
    column: str

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class QunitDefinition:
    """An immutable qunit definition.

    Attributes
    ----------
    name:
        Unique identifier (snake_case).
    base_sql:
        The base expression: a SELECT with ``$param`` placeholders.
    binders:
        How each parameter enumerates its instances.  Parameter-free
        definitions (e.g. "top charts") have no binders and exactly one
        instance.
    conversion:
        Optional conversion-expression source (XSL-like markup).  When
        absent, instances render with :func:`render_default`.
    keywords:
        Extra vocabulary describing the definition's intent ("cast credits
        actors"); indexed with every instance and matched against queries.
    description:
        Human documentation.
    utility:
        Prior utility of the definition (Sec. 2's qunit utility); derivation
        strategies set this, search uses it to break ties.
    source:
        Which derivation produced it ("expert", "schema_data", "query_log",
        "external", ...).
    """

    name: str
    base_sql: str
    binders: tuple[ParamBinder, ...] = ()
    conversion: str | None = None
    keywords: tuple[str, ...] = ()
    description: str = ""
    utility: float = 1.0
    source: str = "manual"
    enumerator_sql: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise DerivationError("qunit definition needs a name")
        statement = parse_select(self.base_sql)
        params = set()
        if statement.where is not None:
            params = statement.where.param_names()
        declared = {binder.param for binder in self.binders}
        if params != declared:
            raise DerivationError(
                f"qunit {self.name!r}: base expression parameters {sorted(params)} "
                f"do not match declared binders {sorted(declared)}"
            )
        # The schema footprint is immutable with the definition; caching
        # it here keeps :meth:`tables` from re-parsing the base SQL on
        # every matcher scoring call (the serving path scores every
        # definition against every query).
        object.__setattr__(self, "_footprint",
                           tuple(dict.fromkeys(
                               statement.referenced_tables())))

    # -- structure ------------------------------------------------------------

    @staticmethod
    def from_combined_sql(name: str, combined: str,
                          binders: tuple[ParamBinder, ...] = (),
                          **kwargs: object) -> "QunitDefinition":
        """Build from the paper's ``SELECT ... RETURN <template>`` syntax."""
        base_sql, conversion = split_return_clause(combined)
        return QunitDefinition(name=name, base_sql=base_sql,
                               binders=binders, conversion=conversion,
                               **kwargs)  # type: ignore[arg-type]

    def tables(self) -> list[str]:
        """Tables referenced by the base expression (schema footprint,
        parsed once at construction)."""
        return list(self._footprint)

    def schema_terms(self) -> set[str]:
        """Vocabulary induced by the footprint: table names, keywords."""
        terms: set[str] = set()
        for table in self.tables():
            terms.add(normalize(table))
        for keyword in self.keywords:
            terms.update(normalize(keyword).split())
        return terms

    def with_utility(self, utility: float) -> "QunitDefinition":
        return replace(self, utility=utility)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form of the definition (see :meth:`from_dict`).

        Persisting definitions is what lets a derived collection skip
        re-derivation entirely on the next process start (see
        :meth:`repro.core.store.CollectionStore.save`).
        """
        return {
            "name": self.name,
            "base_sql": self.base_sql,
            "binders": [[binder.param, binder.table, binder.column]
                        for binder in self.binders],
            "conversion": self.conversion,
            "keywords": list(self.keywords),
            "description": self.description,
            "utility": self.utility,
            "source": self.source,
            "enumerator_sql": self.enumerator_sql,
        }

    @staticmethod
    def from_dict(data: dict) -> "QunitDefinition":
        """Rebuild a definition serialized by :meth:`to_dict` (validates the
        base expression exactly like direct construction)."""
        return QunitDefinition(
            name=data["name"],
            base_sql=data["base_sql"],
            binders=tuple(ParamBinder(param, table, column)
                          for param, table, column in data["binders"]),
            conversion=data.get("conversion"),
            keywords=tuple(data.get("keywords", ())),
            description=data.get("description", ""),
            utility=data.get("utility", 1.0),
            source=data.get("source", "manual"),
            enumerator_sql=data.get("enumerator_sql"),
        )

    # -- instances --------------------------------------------------------------

    def bindings(self, database, limit: int | None = None) -> list[dict[str, object]]:
        """Enumerate parameter bindings (deterministic order)."""
        if self.enumerator_sql is not None:
            return self._enumerate_with_sql(database, limit)
        if not self.binders:
            return [{}]
        if len(self.binders) > 1:
            raise DerivationError(
                f"qunit {self.name!r}: multiple binders need an enumerator_sql"
            )
        binder = self.binders[0]
        table = database.table(binder.table)
        seen: set[str] = set()
        values: list[object] = []
        for value in table.column_values(binder.column):
            if value is None:
                continue
            key = normalize(str(value))
            if key in seen:
                continue
            seen.add(key)
            values.append(value)
            if limit is not None and len(values) >= limit:
                break
        return [{binder.param: value} for value in values]

    def _enumerate_with_sql(self, database, limit: int | None) -> list[dict[str, object]]:
        statement = parse_select(self.enumerator_sql)
        plan = compile_select(statement, database)
        bindings: list[dict[str, object]] = []
        seen: set[tuple[object, ...]] = set()
        for row in execute(plan, database):
            binding: dict[str, object] = {}
            for binder in self.binders:
                for qualified, value in row.items():
                    output_name = qualified.partition(".")[2] or qualified
                    if output_name == binder.param or qualified == binder.param:
                        binding[binder.param] = value
            if len(binding) != len(self.binders):
                raise QueryError(
                    f"qunit {self.name!r}: enumerator row {sorted(row)} does not "
                    f"bind all parameters {[b.param for b in self.binders]}"
                )
            fingerprint = tuple(
                normalize(str(binding[b.param])) for b in self.binders
            )
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            bindings.append(binding)
            if limit is not None and len(bindings) >= limit:
                break
        return bindings

    def materialize(self, database, params: dict[str, object]) -> "QunitInstance":
        """Evaluate the base expression under ``params`` into an instance."""
        missing = {binder.param for binder in self.binders} - set(params)
        if missing:
            raise QueryError(
                f"qunit {self.name!r}: unbound parameters {sorted(missing)}"
            )
        statement = parse_select(self.base_sql)
        plan = compile_select(statement, database)
        rows = list(execute(plan, database, params))
        return QunitInstance(definition=self, params=dict(params), rows=rows)

    def instances(self, database, limit: int | None = None) -> list["QunitInstance"]:
        """Materialize every instance (bounded by ``limit`` bindings)."""
        return [self.materialize(database, binding)
                for binding in self.bindings(database, limit)]


class QunitInstance:
    """One qunit instance: a definition applied to one parameter binding."""

    def __init__(self, definition: QunitDefinition, params: dict[str, object],
                 rows: list[dict[str, object]]):
        self.definition = definition
        self.params = params
        self.rows = rows
        self._text: str | None = None
        self._atoms: frozenset[Atom] | None = None

    # -- identity ---------------------------------------------------------------

    @property
    def instance_id(self) -> str:
        suffix = "/".join(
            to_identifier(str(self.params[binder.param]))
            for binder in self.definition.binders
        )
        return f"{self.definition.name}::{suffix}" if suffix else self.definition.name

    @property
    def title(self) -> str:
        label = self.definition.name.replace("_", " ")
        values = " ".join(str(value) for value in self.params.values())
        return f"{label} {values}".strip()

    @property
    def is_empty(self) -> bool:
        return not self.rows

    # -- content -----------------------------------------------------------------

    def text(self) -> str:
        """Rendered presentation text (cached)."""
        if self._text is None:
            if self.definition.conversion:
                template = ConversionTemplate(self.definition.conversion)
                self._text = template.render_text(self.params, self.rows)
            else:
                self._text = render_default(self.title, self.params, self.rows)
        return self._text

    def markup(self) -> str:
        """Full marked-up rendering (conversion expression applied)."""
        if self.definition.conversion:
            template = ConversionTemplate(self.definition.conversion)
            return template.render(self.params, self.rows)
        return self.text()

    def atoms(self) -> frozenset[Atom]:
        """Content atoms of the instance (id-like columns excluded)."""
        if self._atoms is None:
            collected: set[Atom] = set()
            for row in self.rows:
                for qualified, value in row.items():
                    if value is None:
                        continue
                    table, _, column = qualified.partition(".")
                    if column == "id" or column.endswith("_id"):
                        continue
                    collected.add(atom(table, column, value))
            self._atoms = frozenset(collected)
        return self._atoms

    # -- adapters -----------------------------------------------------------------

    def as_document(self) -> Document:
        """IR document view: title field boosted over the rendered body."""
        return Document.create(
            doc_id=self.instance_id,
            fields={"title": self.title, "body": self.text()},
            field_weights={"title": 3.0, "body": 1.0},
            metadata={
                "definition": self.definition.name,
                "params": tuple(sorted(
                    (key, str(value)) for key, value in self.params.items()
                )),
                "source": self.definition.source,
            },
        )

    def to_answer(self, score: float = 0.0, system: str = "qunits") -> Answer:
        return Answer(
            system=system,
            atoms=self.atoms(),
            text=self.text(),
            score=score,
            provenance=(
                ("definition", self.definition.name),
                ("params", tuple(sorted(
                    (key, str(value)) for key, value in self.params.items()
                ))),
                ("rows", len(self.rows)),
            ),
        )

    def __repr__(self) -> str:
        return f"QunitInstance({self.instance_id!r}, rows={len(self.rows)})"

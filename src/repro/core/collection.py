"""QunitCollection: the database modeled as a flat document collection.

"Once qunits have been defined, we will model the database as a flat
collection of independent qunits... each qunit is treated as an independent
entity" (Sec. 2).  The collection owns the definitions, materializes
instances lazily (with caching), and builds the IR indexes the search
engine queries: one index over all instances, plus per-definition indexes
for two-stage retrieval.

Searchers handed out by :meth:`QunitCollection.searcher` and
:meth:`QunitCollection.definition_searcher` live in a bounded
:class:`~repro.serve.pool.SearcherPool` keyed per (definition,
scorer-parameters) pair, so their top-k fast-path machinery — index
snapshots, per-term score bounds, and LRU result caches (see
:mod:`repro.ir.retrieval`) — is shared across every query the serving
pipeline runs, including batches submitted through
:meth:`QunitCollection.search_many`.  Each definition index additionally
exposes a term Bloom filter (:meth:`QunitCollection.definition_bloom`,
persisted in definition snapshot headers) that the pipeline's plan stage
uses to skip definition retrieval that provably cannot match.

Derivation is the expensive half of the paradigm;
:meth:`repro.core.store.CollectionStore.save` persists its output — the
qunit definitions plus every index snapshot — to a directory, and
:meth:`repro.core.store.CollectionStore.load` brings a
collection back whose searchers serve straight from the loaded snapshots:
no re-derivation, no instance materialization, no index rebuild on the
query path (instances are still materialized lazily from the database
when an answer's content is actually rendered).  ``shards``/
``parallelism`` turn on sharded parallel scoring for the flat
(collection-wide) searcher — see :mod:`repro.ir.shard`.

A saved generation uses the version-2 deduplicated layout (see
:mod:`repro.ir.persist` and ``docs/PERSISTENCE.md``): one shared document
store holds every decorated instance document once, and the global,
per-definition, and (when sharding is configured) per-shard snapshot
files reference it by doc_id.  Loading shares the store's
:class:`~repro.ir.documents.Document` objects across every snapshot, so a
loaded generation pins exactly one copy of the documents; version-1
directories written by earlier builds still load read-only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable
from pathlib import Path

from repro.core.qunit import QunitDefinition, QunitInstance
from repro.errors import DerivationError, SnapshotError
from repro.ir.analysis import Analyzer
from repro.ir.index import IndexSnapshot, InvertedIndex
from repro.ir.retrieval import Searcher, SearchHit
from repro.ir.scoring import Scorer
from repro.ir.shard import ShardedTopK, TermBloomFilter
from repro.relational.database import Database
from repro.serve.pool import SearcherPool
from repro.utils.text import normalize

__all__ = ["QunitCollection"]

MANIFEST_MAGIC = "qunits-collection"
#: Format written by a journal-free full save; version 3 marks a
#: manifest whose generation carries a collection-level delta journal
#: (see :mod:`repro.core.store` and ``docs/PERSISTENCE.md``).
MANIFEST_VERSION = 2
SUPPORTED_MANIFEST_VERSIONS = (1, 2, 3)
MANIFEST_NAME = "collection.json"


class _SnapshotPruneRace(SnapshotError):
    """A referenced snapshot file vanished between the manifest read and
    the file read — the signature of racing a concurrent re-save's prune.
    Private: :meth:`~repro.core.store.CollectionStore.load` retries on exactly this."""


class QunitCollection:
    """Definitions + lazily materialized instances + IR indexes."""

    def __init__(self, database: Database,
                 definitions: Iterable[QunitDefinition],
                 max_instances_per_definition: int | None = None,
                 analyzer: Analyzer | None = None,
                 shards: int = 0, parallelism: str = "serial",
                 strategy: str = "auto"):
        self.database = database
        self.definitions: dict[str, QunitDefinition] = {}
        for definition in definitions:
            if definition.name in self.definitions:
                raise DerivationError(
                    f"duplicate qunit definition {definition.name!r}"
                )
            self.definitions[definition.name] = definition
        self.max_instances = max_instances_per_definition
        self.analyzer = analyzer or Analyzer()
        self.shards = shards
        self.parallelism = parallelism
        self.strategy = strategy
        self._instances: dict[str, list[QunitInstance]] = {}
        self._instance_by_id: dict[str, QunitInstance] = {}
        # On-demand materializations keyed by (definition, binding), so
        # repeat fully-bound queries skip re-running the definition's
        # SQL — the hot path of entity-heavy (Zipf-head) traffic.
        # Bounded LRU: diverse bindings in a long-running server would
        # otherwise grow it monotonically.
        self._materialized: "OrderedDict[tuple, QunitInstance]" = \
            OrderedDict()
        self._global_index: InvertedIndex | None = None
        self._definition_indexes: dict[str, InvertedIndex] = {}
        # Snapshots restored from disk, keyed like searchers (None = the
        # global index).  An eager load fills this at load time (the
        # whole generation pinned — immune to a concurrent re-save's
        # prune); a lazy load instead registers a loader per key in
        # _lazy_loaders and fills this on first demand.  Under the
        # version-2 layout every snapshot shares the generation's
        # document-store objects, so "the whole generation" is one copy
        # of the documents.
        self._loaded_snapshots: dict[str | None, IndexSnapshot] = {}
        # Pending lazy loads (key -> zero-arg loader returning
        # (snapshot, bloom|None)), installed by a lazy
        # CollectionStore.load and consumed by _ensure_loaded on the
        # first query-path demand for the key's index.
        self._lazy_loaders: dict[str | None, object] = {}
        # Per-definition Bloom filters lifted from snapshot *headers* at
        # lazy-load time: they let the plan stage prune a definition
        # without loading its snapshot.  Dropped the moment the real
        # snapshot loads (its version-stamped filter takes over).
        self._header_blooms: dict[str, TermBloomFilter] = {}
        #: Snapshot files mmap'd on first demand since load (the lazy
        #: cold-start metric ``--explain`` surfaces per query).
        self.lazy_loads = 0
        #: The on-disk generation this collection was loaded from or
        #: last saved as (``"<hex>"``, or ``"<hex>+N"`` after N journal
        #: transactions); ``None`` for a never-persisted collection.
        self.generation: str | None = None
        # Where that generation lives, when known — lets a delta save to
        # the same directory skip diffing targets that are still lazily
        # pending (disk and memory are the same bytes by construction).
        self._store_path: Path | None = None
        # A ShardedTopK restored from persisted per-shard snapshot files
        # (with their Bloom filters); handed to the flat searcher so it
        # skips the in-memory re-partition.  Lazily loaded on the first
        # flat-searcher build when _lazy_shard_loader is set.
        self._loaded_sharded: ShardedTopK | None = None
        self._lazy_shard_loader = None
        # Sharded executors parked by a generation swap: flat searchers
        # pinned by in-flight batches may still score through them, so
        # they close with the collection, not at swap time.
        self._retired_sharded: list[ShardedTopK] = []
        # Callbacks fired after a generation swap (see
        # subscribe_invalidation) and the lock one swap holds end to end.
        self._invalidation_hooks: list = []
        self._swap_lock = threading.Lock()
        # Searchers are pooled so their LRU result caches and index
        # snapshots survive across queries (one searcher per
        # (definition, scorer-parameters) pair; None = the global index).
        # Bounded: identity-keyed scorers (see Scorer.cache_key) would
        # otherwise grow this without limit in long-running processes.
        self.searcher_pool = SearcherPool(self.MAX_CACHED_SEARCHERS)
        # Per-definition term Bloom filters for two-stage retrieval:
        # version-stamped (index version, filter) pairs, restored from
        # definition snapshot headers at load time or built lazily from
        # an already-materialized index (see :meth:`definition_bloom`).
        self._definition_blooms: dict[str, tuple[int, TermBloomFilter]] = {}

    # -- definitions ------------------------------------------------------------

    def definition(self, name: str) -> QunitDefinition:
        """Look up one qunit definition by name.

        Raises:
            DerivationError: for unknown names (listing the known ones).
        """
        try:
            return self.definitions[name]
        except KeyError:
            raise DerivationError(
                f"unknown qunit definition {name!r} "
                f"(known: {sorted(self.definitions)})"
            ) from None

    def __len__(self) -> int:
        return len(self.definitions)

    def __contains__(self, name: str) -> bool:
        return name in self.definitions

    # -- instances ----------------------------------------------------------------

    def instances_of(self, name: str) -> list[QunitInstance]:
        """All (bounded) instances of one definition, cached."""
        if name not in self._instances:
            definition = self.definition(name)
            instances = [
                instance
                for instance in definition.instances(self.database, self.max_instances)
                if not instance.is_empty
            ]
            self._instances[name] = instances
            for instance in instances:
                self._instance_by_id[instance.instance_id] = instance
        return self._instances[name]

    def all_instances(self) -> list[QunitInstance]:
        """Every (bounded) instance of every definition, name-sorted."""
        result: list[QunitInstance] = []
        for name in sorted(self.definitions):
            result.extend(self.instances_of(name))
        return result

    def instance(self, instance_id: str) -> QunitInstance:
        """Look up a materialized instance by id (materializes its
        definition's instances if needed)."""
        if instance_id not in self._instance_by_id:
            definition_name = instance_id.split("::", 1)[0]
            if definition_name in self.definitions:
                self.instances_of(definition_name)
        try:
            return self._instance_by_id[instance_id]
        except KeyError:
            restored = self._restore_instance(instance_id)
            if restored is not None:
                return restored
            raise DerivationError(f"unknown qunit instance {instance_id!r}") from None

    def _restore_instance(self, instance_id: str) -> QunitInstance | None:
        """Rebuild an ingested instance from its persisted document.

        An instance staged through ``CollectionWriter.stage_instance``
        in an *earlier process* is in the loaded snapshots and the
        document store, but has no database derivation to materialize
        from.  Its document metadata carries the definition name and
        params, and its body field is the instance's rendered text, so
        the answer renders without the database ever knowing the
        instance.  Only already-loaded snapshots are consulted — this
        lookup follows a retrieval hit, so the hit's snapshot is loaded;
        nothing is force-loaded here.
        """
        candidates = [snapshot
                      for snapshot in self._loaded_snapshots.values()
                      if snapshot is not None]
        if self._loaded_sharded is not None:
            candidates.extend(self._loaded_sharded.shards)
        for snapshot in candidates:
            if instance_id not in snapshot:
                continue
            document = snapshot.document(instance_id)
            metadata = dict(document.metadata)
            name = metadata.get("definition")
            if name not in self.definitions:
                return None
            params = dict(metadata.get("params", ()))
            instance = QunitInstance(self.definitions[name], params, [])
            try:
                instance._text = document.field("body")
            except KeyError:
                pass  # no body persisted; text renders from the params
            self._instance_by_id[instance_id] = instance
            return instance
        return None

    MAX_MATERIALIZE_MEMO = 4096

    def materialize(self, name: str, params: dict[str, object]) -> QunitInstance:
        """Materialize one specific binding on demand (and cache it).

        Materializations are memoized on the (definition, binding) pair
        — the database is frozen while serving, so a repeat binding
        (the common case under Zipf-head traffic) returns the cached
        instance instead of re-running the definition's SQL.  The memo
        is a bounded LRU (:attr:`MAX_MATERIALIZE_MEMO` entries); bindings
        with unhashable values simply bypass it.
        """
        try:
            key = (name, tuple(sorted(params.items())))
            cached = self._materialized.get(key)
        except TypeError:
            key, cached = None, None
        if cached is not None:
            self._materialized.move_to_end(key)
            return cached
        instance = self.definition(name).materialize(self.database, params)
        self._instance_by_id.setdefault(instance.instance_id, instance)
        if key is not None:
            self._materialized[key] = instance
            while len(self._materialized) > self.MAX_MATERIALIZE_MEMO:
                self._materialized.popitem(last=False)
        return instance

    # -- indexes ----------------------------------------------------------------------

    def global_index(self) -> InvertedIndex:
        """One index over every instance of every definition."""
        if self._global_index is None:
            index = InvertedIndex(self.analyzer)
            for instance in self.all_instances():
                index.add(self._decorated_document(instance))
            self._global_index = index
        return self._global_index

    def definition_index(self, name: str) -> InvertedIndex:
        """An index over the instances of a single definition."""
        if name not in self._definition_indexes:
            index = InvertedIndex(self.analyzer)
            for instance in self.instances_of(name):
                index.add(self._decorated_document(instance))
            self._definition_indexes[name] = index
        return self._definition_indexes[name]

    def _index_for(self, name: str | None) -> InvertedIndex | IndexSnapshot:
        """The index (or loaded snapshot) behind one searcher.

        A live index built this process wins; otherwise a snapshot
        restored from disk serves directly — loading it *now* if the
        collection was lazily loaded (explicit ``None`` checks: a
        legitimately *empty* snapshot is falsy); otherwise the index is
        built from materialized instances as usual.  This is the demand
        point lazy loads wait for: the plan stage only ever *peeks*, so
        a definition skipped by its Bloom filter never loads.
        """
        if name is None:
            if self._global_index is not None:
                return self._global_index
            self._ensure_loaded(None)
            snapshot = self._loaded_snapshots.get(None)
            return snapshot if snapshot is not None else self.global_index()
        if name in self._definition_indexes:
            return self._definition_indexes[name]
        self.definition(name)  # unknown names fail loudly, even when loaded
        self._ensure_loaded(name)
        snapshot = self._loaded_snapshots.get(name)
        return snapshot if snapshot is not None else self.definition_index(name)

    def _ensure_loaded(self, name: str | None) -> None:
        """Run (and consume) the pending lazy loader for one key, if any.

        Installs the loaded snapshot exactly where an eager load would
        have put it, promotes the loader's Bloom filter to the
        version-stamped cache, and counts the load in
        :attr:`lazy_loads`.  A load failure (e.g. the generation was
        pruned by a concurrent full re-save — the documented lazy
        trade-off) surfaces as :class:`~repro.errors.SnapshotError` and
        leaves the loader consumed: retrying would hit the same file.
        """
        loader = self._lazy_loaders.pop(name, None)
        if loader is None:
            return
        self._header_blooms.pop(name, None)
        snapshot, bloom = loader()
        self._loaded_snapshots[name] = snapshot
        if name is not None and bloom is not None:
            self._definition_blooms[name] = (snapshot.version, bloom)
        self.lazy_loads += 1

    def _pending_lazy(self, name: str | None) -> bool:
        """Whether ``name``'s snapshot is still an unconsumed lazy load
        with no live index shadowing it — i.e. its in-memory state *is*
        its on-disk state (what lets a delta save skip diffing it)."""
        if name not in self._lazy_loaders:
            return False
        if name is None:
            return self._global_index is None
        return name not in self._definition_indexes

    def global_snapshot(self) -> IndexSnapshot:
        """The frozen snapshot of the flat collection-wide index — loaded
        from disk when the collection was restored, built (and cached)
        otherwise.  The public handle for statistics and direct IR use."""
        return self._index_for(None).snapshot()

    def peek_definition_snapshot(self, name: str) -> IndexSnapshot | None:
        """One definition's snapshot *if it already exists* (index built
        this process or restored by :meth:`load`); ``None`` otherwise —
        never triggers materialization or an index build.  The query
        pipeline's plan stage resolves per-definition retrieval
        strategies against this.

        Raises:
            DerivationError: for unknown definition names.
        """
        self.definition(name)  # unknown names fail loudly
        index = self._definition_indexes.get(name)
        if index is not None:
            return index.snapshot()
        return self._loaded_snapshots.get(name)

    def peek_global_snapshot(self) -> IndexSnapshot | None:
        """The flat snapshot *if one already exists* (built this process
        or restored by :meth:`load`); ``None`` otherwise — never triggers
        the index build.  The query pipeline's plan stage resolves its
        cost model against this, so planning a fully-bound query on a
        cold live collection cannot force materializing every instance;
        the first query that actually backfills builds the index, and
        every later plan resolves against its statistics."""
        if self._global_index is not None:
            return self._global_index.snapshot()
        return self._loaded_snapshots.get(None)

    @staticmethod
    def _database_fingerprint(database: Database) -> dict:
        """Cheap identity of a database: name + per-table row counts.
        Saved into the manifest and checked at load time, because snapshot
        doc_ids only materialize against the database they were derived
        from — a different database (other scale/seed) would crash on
        unknown instances or silently render mismatched content."""
        return {
            "name": database.name,
            "row_counts": {table.name: database.row_count(table.name)
                           for table in database.schema.tables},
        }

    def searcher(self, scorer: Scorer | None = None) -> Searcher:
        """The cached flat (collection-wide) searcher for ``scorer``."""
        return self._cached_searcher(None, scorer)

    def definition_searcher(self, name: str, scorer: Scorer | None = None) -> Searcher:
        """The cached searcher over one definition's instance documents."""
        return self._cached_searcher(name, scorer)

    MAX_CACHED_SEARCHERS = 64

    def _searcher_entry(self, name: str | None, scorer: Scorer | None):
        """The pool key and factory for one (target, scorer) searcher."""
        key = (name, scorer.cache_key() if scorer is not None else None)

        def build() -> Searcher:
            # Sharded parallel scoring applies to the flat collection-wide
            # searcher, where postings are large enough to repay the
            # partition; per-definition indexes stay serial.  Shards
            # restored from persisted per-shard files are shared across
            # every flat searcher (one partition, one executor) — a lazy
            # load defers reading them to this first flat build.
            shards = self.shards if name is None else 0
            if name is None and self._loaded_sharded is None \
                    and self._lazy_shard_loader is not None:
                loader = self._lazy_shard_loader
                self._lazy_shard_loader = None
                self._loaded_sharded = loader()
                if self._loaded_sharded is not None:
                    self.lazy_loads += self.shards
            sharded = self._loaded_sharded if name is None else None
            return Searcher(self._index_for(name), scorer,
                            shards=shards, parallelism=self.parallelism,
                            sharded=sharded, strategy=self.strategy)

        return key, build

    def _cached_searcher(self, name: str | None, scorer: Scorer | None) -> Searcher:
        key, build = self._searcher_entry(name, scorer)
        return self.searcher_pool.get(key, build)

    def acquire_searcher(self, name: str | None,
                         scorer: Scorer | None = None) -> Searcher:
        """The pooled searcher for ``name`` (``None`` = flat), *pinned*:
        pool overflow or :meth:`close` cannot close it until the matching
        :meth:`release_searcher`.  The query pipeline's execute stage
        pins every searcher it dispatches to for the length of a batch,
        and the serving front end pins the flat searcher for the length
        of the server's life (see :class:`~repro.serve.pool.
        SearcherPool`)."""
        key, build = self._searcher_entry(name, scorer)
        return self.searcher_pool.acquire(key, build)

    def release_searcher(self, searcher: Searcher) -> None:
        """Return one :meth:`acquire_searcher` lease; a searcher evicted
        while pinned closes here, on its last release."""
        self.searcher_pool.release(searcher)

    def definition_bloom(self, name: str) -> TermBloomFilter | None:
        """The term Bloom filter over one definition index's vocabulary.

        The query pipeline's plan stage uses it to skip a definition's
        retrieval task when *no* query term has postings in that
        definition's index — rank-identical to running the search
        (Bloom filters have no false negatives, so a skip only ever
        replaces an empty result).

        The filter comes from the definition snapshot's persisted
        header (restored by :meth:`load`) or is built lazily from an
        already-materialized index or snapshot; ``None`` means building
        one would first require materializing the definition's
        instances — pruning exists to save work, not cause it.  Filters
        are stamped with the index version they were built from, so an
        ``add`` after the fact can never leave a stale filter skipping
        real postings.

        Raises:
            DerivationError: for unknown definition names.
        """
        snapshot = self.peek_definition_snapshot(name)
        if snapshot is None:
            # A lazily-pending definition serves the filter lifted from
            # its snapshot *header* at load time: the plan stage can
            # prune (or not) without the snapshot ever loading.  None
            # when the header carried no (fresh) filter — no pruning,
            # no load.
            return self._header_blooms.get(name)
        cached = self._definition_blooms.get(name)
        if cached is not None and cached[0] == snapshot.version:
            return cached[1]
        bloom = TermBloomFilter.build(snapshot.terms())
        self._definition_blooms[name] = (snapshot.version, bloom)
        return bloom

    def subscribe_invalidation(self, hook) -> None:
        """Register a zero-argument callback fired after every
        generation swap (see :meth:`_swap_generation`).  The serving
        pipeline subscribes its result-cache clear here, so answers
        computed against a pre-swap generation stop being served the
        moment the swap lands."""
        self._invalidation_hooks.append(hook)

    def _swap_generation(self, snapshots: dict[str | None, IndexSnapshot],
                         generation: str | None) -> None:
        """Atomically switch serving onto next-generation ``snapshots``.

        The commit point of a :class:`~repro.core.store.CollectionWriter`
        commit (and the in-memory mirror of its on-disk manifest swap).
        Under the swap lock: every pooled searcher is invalidated — ones
        pinned by in-flight batches retire and keep serving the *old*
        snapshots, bounds, and caches until their last release; the next
        acquire builds against the new generation — the restored sharded
        executor is parked (closed with the collection, since retired
        searchers may still score through it), and per-key state
        (pending lazy loaders, header/version-stamped Bloom filters,
        shadowing live indexes) is dropped so every lookup resolves to
        the new snapshots.  Subscribed invalidation hooks fire last,
        inside the lock.
        """
        with self._swap_lock:
            self.searcher_pool.invalidate()
            if self._loaded_sharded is not None:
                self._retired_sharded.append(self._loaded_sharded)
                self._loaded_sharded = None
            self._lazy_shard_loader = None
            for key, snapshot in snapshots.items():
                self._lazy_loaders.pop(key, None)
                self._loaded_snapshots[key] = snapshot
                if key is None:
                    self._global_index = None
                else:
                    self._header_blooms.pop(key, None)
                    self._definition_indexes.pop(key, None)
                    self._definition_blooms.pop(key, None)
            self.generation = generation
            for hook in list(self._invalidation_hooks):
                hook()

    def close(self) -> None:
        """Release shard executors held by pooled searchers (idempotent),
        including executors parked by generation swaps."""
        self.searcher_pool.close()
        if self._loaded_sharded is not None:
            self._loaded_sharded.close()
        for sharded in self._retired_sharded:
            sharded.close()
        del self._retired_sharded[:]

    def search_many(self, queries: Iterable[str], limit: int = 10,
                    scorer: Scorer | None = None) -> list[list[SearchHit]]:
        """Batched flat IR retrieval over every instance of every
        definition — the collection really is "a flat collection of
        independent qunits" to callers of this API.  One searcher (and
        hence one index snapshot and result cache) serves the whole batch.
        """
        return self.searcher(scorer).search_many(queries, limit)

    # -- persistence ------------------------------------------------------------

    # Persistence lives entirely in :class:`repro.core.store.
    # CollectionStore`.  The old ``save``/``load``/``load_shard``
    # wrappers that used to forward there (with deprecation warnings)
    # have been removed; call the store directly — note its load default
    # is the *lazy* pin, so pass ``LoadOptions(lazy=False)`` where the
    # old eager-load contract matters.

    @staticmethod
    def _race_guarded(read):
        """Run one snapshot-file read, translating a vanished-file error
        into :class:`_SnapshotPruneRace` so the store's load retries from
        a fresh manifest instead of failing on a concurrent re-save."""
        try:
            return read()
        except SnapshotError as exc:
            if isinstance(exc.__cause__, OSError):
                raise _SnapshotPruneRace(str(exc)) from exc.__cause__
            raise

    def _decorated_document(self, instance: QunitInstance):
        """Instance document with definition keywords folded into the title,
        so "cast" queries hit cast qunits even when no tuple says "cast"."""
        document = instance.as_document()
        keywords = " ".join(instance.definition.keywords)
        if not keywords:
            return document
        fields = dict(document.fields)
        fields["title"] = f"{fields['title']} {normalize(keywords)}"
        from repro.ir.documents import Document

        return Document.create(
            doc_id=document.doc_id,
            fields=fields,
            field_weights=dict(document.field_weights),
            metadata=dict(document.metadata),
        )

    # -- validation -----------------------------------------------------------------------

    def validate(self) -> list[str]:
        """Static checks on every definition; returns problem descriptions.

        Intended for users authoring their own qunit sets: catches binder
        columns missing from the schema, binders over non-searchable
        columns (instances would be unreachable by entity queries),
        unparseable conversion templates, and templates referencing fields
        the base expression cannot produce.
        """
        from repro.core.presentation import ConversionTemplate
        from repro.errors import ReproError

        problems: list[str] = []
        for name, definition in sorted(self.definitions.items()):
            for binder in definition.binders:
                try:
                    column = self.database.schema.table(binder.table).column(
                        binder.column)
                except ReproError as exc:
                    problems.append(f"{name}: binder {exc}")
                    continue
                from repro.relational.schema import ColumnType

                numeric = column.type in (ColumnType.INTEGER, ColumnType.FLOAT)
                if not column.searchable and not numeric:
                    # Text binders must be searchable for entity queries to
                    # bind them; numeric binders (years) bind through the
                    # segmenter's literal-number recognition instead.
                    problems.append(
                        f"{name}: binder {binder.qualified} is not a "
                        f"searchable column; entity queries cannot bind it"
                    )
            if definition.conversion is not None:
                try:
                    template = ConversionTemplate(definition.conversion)
                except ReproError as exc:
                    problems.append(f"{name}: conversion template: {exc}")
                    continue
                footprint = set(definition.tables())
                binder_params = {binder.param for binder in definition.binders}
                for variable in template.variables():
                    if "." in variable:
                        table = variable.split(".")[0]
                        if table not in footprint:
                            problems.append(
                                f"{name}: template references ${variable} "
                                f"but {table!r} is not in the base expression"
                            )
                    elif variable not in binder_params:
                        problems.append(
                            f"{name}: template references unbound "
                            f"parameter ${variable}"
                        )
            if not definition.keywords and definition.binders:
                problems.append(
                    f"{name}: no keywords; attribute queries can never "
                    f"commit to this definition"
                )
        return problems

    # -- priors ---------------------------------------------------------------------------

    def popularity_priors(self, table: str = "movie", column: str = "votes",
                          ) -> dict[str, float]:
        """Static per-instance priors from an entity-popularity column.

        For every materialized instance, the prior is ``1 + log10(1 + v)``
        where ``v`` is the largest value of ``table.column`` among the
        instance's tuples (1.0 when the instance never touches it).  Feed
        the result to :class:`~repro.ir.scoring.PriorWeightedScorer` to get
        popularity-aware ranking — the ObjectRank idea recast as a document
        prior inside the qunit paradigm.
        """
        import math

        self.database.schema.table(table).column(column)
        qualified = f"{table}.{column}"
        priors: dict[str, float] = {}
        for instance in self.all_instances():
            best = 0.0
            for row in instance.rows:
                value = row.get(qualified)
                if isinstance(value, (int, float)) and value > best:
                    best = float(value)
            priors[instance.instance_id] = 1.0 + math.log10(1.0 + best)
        return priors

    # -- statistics -----------------------------------------------------------------------

    def instance_count(self) -> int:
        """Total materialized (non-empty, bounded) instances."""
        return sum(len(self.instances_of(name)) for name in self.definitions)

    def describe(self) -> list[tuple[str, str, int]]:
        """(name, source, instance count) per definition, name-sorted."""
        return [
            (name, self.definitions[name].source, len(self.instances_of(name)))
            for name in sorted(self.definitions)
        ]

"""QunitCollection: the database modeled as a flat document collection.

"Once qunits have been defined, we will model the database as a flat
collection of independent qunits... each qunit is treated as an independent
entity" (Sec. 2).  The collection owns the definitions, materializes
instances lazily (with caching), and builds the IR indexes the search
engine queries: one index over all instances, plus per-definition indexes
for two-stage retrieval.

Searchers handed out by :meth:`QunitCollection.searcher` and
:meth:`QunitCollection.definition_searcher` live in a bounded
:class:`~repro.serve.pool.SearcherPool` keyed per (definition,
scorer-parameters) pair, so their top-k fast-path machinery — index
snapshots, per-term score bounds, and LRU result caches (see
:mod:`repro.ir.retrieval`) — is shared across every query the serving
pipeline runs, including batches submitted through
:meth:`QunitCollection.search_many`.  Each definition index additionally
exposes a term Bloom filter (:meth:`QunitCollection.definition_bloom`,
persisted in definition snapshot headers) that the pipeline's plan stage
uses to skip definition retrieval that provably cannot match.

Derivation is the expensive half of the paradigm; :meth:`QunitCollection.
save` persists its output — the qunit definitions plus every index
snapshot — to a directory, and :meth:`QunitCollection.load` brings a
collection back whose searchers serve straight from the loaded snapshots:
no re-derivation, no instance materialization, no index rebuild on the
query path (instances are still materialized lazily from the database
when an answer's content is actually rendered).  ``shards``/
``parallelism`` turn on sharded parallel scoring for the flat
(collection-wide) searcher — see :mod:`repro.ir.shard`.

A saved generation uses the version-2 deduplicated layout (see
:mod:`repro.ir.persist` and ``docs/PERSISTENCE.md``): one shared document
store holds every decorated instance document once, and the global,
per-definition, and (when sharding is configured) per-shard snapshot
files reference it by doc_id.  Loading shares the store's
:class:`~repro.ir.documents.Document` objects across every snapshot, so a
loaded generation pins exactly one copy of the documents; version-1
directories written by earlier builds still load read-only.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from collections.abc import Iterable
from pathlib import Path

from repro.core.qunit import QunitDefinition, QunitInstance
from repro.errors import DerivationError, SnapshotError
from repro.ir.analysis import Analyzer
from repro.ir.index import IndexSnapshot, InvertedIndex
from repro.ir.persist import (
    DocumentStore,
    load_document_store,
    load_document_store_partition,
    load_snapshot_with_header,
    read_snapshot_doc_ids,
    save_document_store,
    save_snapshot,
)
from repro.ir.retrieval import Searcher, SearchHit
from repro.ir.scoring import Scorer
from repro.ir.shard import ShardedTopK, TermBloomFilter, shard_snapshot
from repro.relational.database import Database
from repro.serve.pool import SearcherPool
from repro.utils.text import normalize

__all__ = ["QunitCollection"]

MANIFEST_MAGIC = "qunits-collection"
MANIFEST_VERSION = 2
SUPPORTED_MANIFEST_VERSIONS = (1, 2)
MANIFEST_NAME = "collection.json"


class _SnapshotPruneRace(SnapshotError):
    """A referenced snapshot file vanished between the manifest read and
    the file read — the signature of racing a concurrent re-save's prune.
    Private: :meth:`QunitCollection.load` retries on exactly this."""


class QunitCollection:
    """Definitions + lazily materialized instances + IR indexes."""

    def __init__(self, database: Database,
                 definitions: Iterable[QunitDefinition],
                 max_instances_per_definition: int | None = None,
                 analyzer: Analyzer | None = None,
                 shards: int = 0, parallelism: str = "serial",
                 strategy: str = "auto"):
        self.database = database
        self.definitions: dict[str, QunitDefinition] = {}
        for definition in definitions:
            if definition.name in self.definitions:
                raise DerivationError(
                    f"duplicate qunit definition {definition.name!r}"
                )
            self.definitions[definition.name] = definition
        self.max_instances = max_instances_per_definition
        self.analyzer = analyzer or Analyzer()
        self.shards = shards
        self.parallelism = parallelism
        self.strategy = strategy
        self._instances: dict[str, list[QunitInstance]] = {}
        self._instance_by_id: dict[str, QunitInstance] = {}
        # On-demand materializations keyed by (definition, binding), so
        # repeat fully-bound queries skip re-running the definition's
        # SQL — the hot path of entity-heavy (Zipf-head) traffic.
        # Bounded LRU: diverse bindings in a long-running server would
        # otherwise grow it monotonically.
        self._materialized: "OrderedDict[tuple, QunitInstance]" = \
            OrderedDict()
        self._global_index: InvertedIndex | None = None
        self._definition_indexes: dict[str, InvertedIndex] = {}
        # Snapshots restored by :meth:`load`, keyed like searchers (None =
        # the global index).  All referenced snapshots are read eagerly at
        # load time: a loaded collection pins its whole generation in
        # memory, so a later re-save pruning old snapshot files can never
        # yank one out from under it mid-serving.  Under the version-2
        # layout every snapshot shares the generation's document-store
        # objects, so "the whole generation" is one copy of the documents.
        self._loaded_snapshots: dict[str | None, IndexSnapshot] = {}
        # A ShardedTopK restored from persisted per-shard snapshot files
        # (with their Bloom filters); handed to the flat searcher so it
        # skips the in-memory re-partition.
        self._loaded_sharded: ShardedTopK | None = None
        # Searchers are pooled so their LRU result caches and index
        # snapshots survive across queries (one searcher per
        # (definition, scorer-parameters) pair; None = the global index).
        # Bounded: identity-keyed scorers (see Scorer.cache_key) would
        # otherwise grow this without limit in long-running processes.
        self.searcher_pool = SearcherPool(self.MAX_CACHED_SEARCHERS)
        # Per-definition term Bloom filters for two-stage retrieval:
        # version-stamped (index version, filter) pairs, restored from
        # definition snapshot headers at load time or built lazily from
        # an already-materialized index (see :meth:`definition_bloom`).
        self._definition_blooms: dict[str, tuple[int, TermBloomFilter]] = {}

    # -- definitions ------------------------------------------------------------

    def definition(self, name: str) -> QunitDefinition:
        """Look up one qunit definition by name.

        Raises:
            DerivationError: for unknown names (listing the known ones).
        """
        try:
            return self.definitions[name]
        except KeyError:
            raise DerivationError(
                f"unknown qunit definition {name!r} "
                f"(known: {sorted(self.definitions)})"
            ) from None

    def __len__(self) -> int:
        return len(self.definitions)

    def __contains__(self, name: str) -> bool:
        return name in self.definitions

    # -- instances ----------------------------------------------------------------

    def instances_of(self, name: str) -> list[QunitInstance]:
        """All (bounded) instances of one definition, cached."""
        if name not in self._instances:
            definition = self.definition(name)
            instances = [
                instance
                for instance in definition.instances(self.database, self.max_instances)
                if not instance.is_empty
            ]
            self._instances[name] = instances
            for instance in instances:
                self._instance_by_id[instance.instance_id] = instance
        return self._instances[name]

    def all_instances(self) -> list[QunitInstance]:
        """Every (bounded) instance of every definition, name-sorted."""
        result: list[QunitInstance] = []
        for name in sorted(self.definitions):
            result.extend(self.instances_of(name))
        return result

    def instance(self, instance_id: str) -> QunitInstance:
        """Look up a materialized instance by id (materializes its
        definition's instances if needed)."""
        if instance_id not in self._instance_by_id:
            definition_name = instance_id.split("::", 1)[0]
            if definition_name in self.definitions:
                self.instances_of(definition_name)
        try:
            return self._instance_by_id[instance_id]
        except KeyError:
            raise DerivationError(f"unknown qunit instance {instance_id!r}") from None

    MAX_MATERIALIZE_MEMO = 4096

    def materialize(self, name: str, params: dict[str, object]) -> QunitInstance:
        """Materialize one specific binding on demand (and cache it).

        Materializations are memoized on the (definition, binding) pair
        — the database is frozen while serving, so a repeat binding
        (the common case under Zipf-head traffic) returns the cached
        instance instead of re-running the definition's SQL.  The memo
        is a bounded LRU (:attr:`MAX_MATERIALIZE_MEMO` entries); bindings
        with unhashable values simply bypass it.
        """
        try:
            key = (name, tuple(sorted(params.items())))
            cached = self._materialized.get(key)
        except TypeError:
            key, cached = None, None
        if cached is not None:
            self._materialized.move_to_end(key)
            return cached
        instance = self.definition(name).materialize(self.database, params)
        self._instance_by_id.setdefault(instance.instance_id, instance)
        if key is not None:
            self._materialized[key] = instance
            while len(self._materialized) > self.MAX_MATERIALIZE_MEMO:
                self._materialized.popitem(last=False)
        return instance

    # -- indexes ----------------------------------------------------------------------

    def global_index(self) -> InvertedIndex:
        """One index over every instance of every definition."""
        if self._global_index is None:
            index = InvertedIndex(self.analyzer)
            for instance in self.all_instances():
                index.add(self._decorated_document(instance))
            self._global_index = index
        return self._global_index

    def definition_index(self, name: str) -> InvertedIndex:
        """An index over the instances of a single definition."""
        if name not in self._definition_indexes:
            index = InvertedIndex(self.analyzer)
            for instance in self.instances_of(name):
                index.add(self._decorated_document(instance))
            self._definition_indexes[name] = index
        return self._definition_indexes[name]

    def _index_for(self, name: str | None) -> InvertedIndex | IndexSnapshot:
        """The index (or loaded snapshot) behind one searcher.

        A live index built this process wins; otherwise a snapshot
        restored by :meth:`load` serves directly (explicit ``None`` checks:
        a legitimately *empty* snapshot is falsy); otherwise the index is
        built from materialized instances as usual.
        """
        if name is None:
            if self._global_index is not None:
                return self._global_index
            snapshot = self._loaded_snapshots.get(None)
            return snapshot if snapshot is not None else self.global_index()
        if name in self._definition_indexes:
            return self._definition_indexes[name]
        self.definition(name)  # unknown names fail loudly, even when loaded
        snapshot = self._loaded_snapshots.get(name)
        return snapshot if snapshot is not None else self.definition_index(name)

    def global_snapshot(self) -> IndexSnapshot:
        """The frozen snapshot of the flat collection-wide index — loaded
        from disk when the collection was restored, built (and cached)
        otherwise.  The public handle for statistics and direct IR use."""
        return self._index_for(None).snapshot()

    def peek_definition_snapshot(self, name: str) -> IndexSnapshot | None:
        """One definition's snapshot *if it already exists* (index built
        this process or restored by :meth:`load`); ``None`` otherwise —
        never triggers materialization or an index build.  The query
        pipeline's plan stage resolves per-definition retrieval
        strategies against this.

        Raises:
            DerivationError: for unknown definition names.
        """
        self.definition(name)  # unknown names fail loudly
        index = self._definition_indexes.get(name)
        if index is not None:
            return index.snapshot()
        return self._loaded_snapshots.get(name)

    def peek_global_snapshot(self) -> IndexSnapshot | None:
        """The flat snapshot *if one already exists* (built this process
        or restored by :meth:`load`); ``None`` otherwise — never triggers
        the index build.  The query pipeline's plan stage resolves its
        cost model against this, so planning a fully-bound query on a
        cold live collection cannot force materializing every instance;
        the first query that actually backfills builds the index, and
        every later plan resolves against its statistics."""
        if self._global_index is not None:
            return self._global_index.snapshot()
        return self._loaded_snapshots.get(None)

    @staticmethod
    def _database_fingerprint(database: Database) -> dict:
        """Cheap identity of a database: name + per-table row counts.
        Saved into the manifest and checked at load time, because snapshot
        doc_ids only materialize against the database they were derived
        from — a different database (other scale/seed) would crash on
        unknown instances or silently render mismatched content."""
        return {
            "name": database.name,
            "row_counts": {table.name: database.row_count(table.name)
                           for table in database.schema.tables},
        }

    def searcher(self, scorer: Scorer | None = None) -> Searcher:
        """The cached flat (collection-wide) searcher for ``scorer``."""
        return self._cached_searcher(None, scorer)

    def definition_searcher(self, name: str, scorer: Scorer | None = None) -> Searcher:
        """The cached searcher over one definition's instance documents."""
        return self._cached_searcher(name, scorer)

    MAX_CACHED_SEARCHERS = 64

    def _searcher_entry(self, name: str | None, scorer: Scorer | None):
        """The pool key and factory for one (target, scorer) searcher."""
        key = (name, scorer.cache_key() if scorer is not None else None)

        def build() -> Searcher:
            # Sharded parallel scoring applies to the flat collection-wide
            # searcher, where postings are large enough to repay the
            # partition; per-definition indexes stay serial.  Shards
            # restored from persisted per-shard files are shared across
            # every flat searcher (one partition, one executor).
            shards = self.shards if name is None else 0
            sharded = self._loaded_sharded if name is None else None
            return Searcher(self._index_for(name), scorer,
                            shards=shards, parallelism=self.parallelism,
                            sharded=sharded, strategy=self.strategy)

        return key, build

    def _cached_searcher(self, name: str | None, scorer: Scorer | None) -> Searcher:
        key, build = self._searcher_entry(name, scorer)
        return self.searcher_pool.get(key, build)

    def acquire_searcher(self, name: str | None,
                         scorer: Scorer | None = None) -> Searcher:
        """The pooled searcher for ``name`` (``None`` = flat), *pinned*:
        pool overflow or :meth:`close` cannot close it until the matching
        :meth:`release_searcher`.  The query pipeline's execute stage
        pins every searcher it dispatches to for the length of a batch,
        and the serving front end pins the flat searcher for the length
        of the server's life (see :class:`~repro.serve.pool.
        SearcherPool`)."""
        key, build = self._searcher_entry(name, scorer)
        return self.searcher_pool.acquire(key, build)

    def release_searcher(self, searcher: Searcher) -> None:
        """Return one :meth:`acquire_searcher` lease; a searcher evicted
        while pinned closes here, on its last release."""
        self.searcher_pool.release(searcher)

    def definition_bloom(self, name: str) -> TermBloomFilter | None:
        """The term Bloom filter over one definition index's vocabulary.

        The query pipeline's plan stage uses it to skip a definition's
        retrieval task when *no* query term has postings in that
        definition's index — rank-identical to running the search
        (Bloom filters have no false negatives, so a skip only ever
        replaces an empty result).

        The filter comes from the definition snapshot's persisted
        header (restored by :meth:`load`) or is built lazily from an
        already-materialized index or snapshot; ``None`` means building
        one would first require materializing the definition's
        instances — pruning exists to save work, not cause it.  Filters
        are stamped with the index version they were built from, so an
        ``add`` after the fact can never leave a stale filter skipping
        real postings.

        Raises:
            DerivationError: for unknown definition names.
        """
        snapshot = self.peek_definition_snapshot(name)
        if snapshot is None:
            return None
        cached = self._definition_blooms.get(name)
        if cached is not None and cached[0] == snapshot.version:
            return cached[1]
        bloom = TermBloomFilter.build(snapshot.terms())
        self._definition_blooms[name] = (snapshot.version, bloom)
        return bloom

    def close(self) -> None:
        """Release shard executors held by pooled searchers (idempotent)."""
        self.searcher_pool.close()
        if self._loaded_sharded is not None:
            self._loaded_sharded.close()

    def search_many(self, queries: Iterable[str], limit: int = 10,
                    scorer: Scorer | None = None) -> list[list[SearchHit]]:
        """Batched flat IR retrieval over every instance of every
        definition — the collection really is "a flat collection of
        independent qunits" to callers of this API.  One searcher (and
        hence one index snapshot and result cache) serves the whole batch.
        """
        return self.searcher(scorer).search_many(queries, limit)

    # -- persistence ------------------------------------------------------------

    def save(self, path: str | Path, vectors: bool = True) -> Path:
        """Persist the derived collection to directory ``path``.

        Writes a manifest (qunit definitions, analyzer configuration,
        instance cap) plus one *generation* of version-2 snapshot files:
        a shared document store holding every decorated instance document
        exactly once, a global postings snapshot, one per-definition
        snapshot (both referencing the store by doc_id), and — when the
        collection is configured with ``shards >= 2`` — one snapshot per
        hash-partition shard, each carrying its term Bloom filter so a
        multi-process server can load and route to single partitions.
        Everything the expensive derivation phase produced is on disk
        afterwards; :meth:`load` restores it without re-deriving,
        re-materializing, or re-indexing.

        With ``vectors`` (the default), every document is embedded once
        (:mod:`repro.ir.embed`, default configuration) and each snapshot
        file carries the vector rows for its own documents, so a loaded
        collection can serve the ``"hybrid"`` retrieval strategy without
        re-embedding — embedding at save time is the vector analogue of
        precomputing postings.  ``vectors=False`` skips the extents;
        hybrid searches over such a load degrade gracefully to lexical
        (see :mod:`repro.ir.retrieval`).

        Saves are crash-consistent at the directory level: each save
        writes a fresh generation of files, then swaps the manifest in
        atomically (the manifest only ever references one complete
        generation), then prunes files no manifest references.  A crash
        mid-save leaves the previous generation fully loadable — never an
        old manifest pointing at a mix of old and new files.

        Args:
            path: the generation directory (created if missing).

        Returns:
            The directory path.

        Raises:
            SnapshotError: if a document carries unserializable metadata.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        generation = os.urandom(4).hex()
        global_snapshot = self.global_snapshot()
        vector_index = None
        if vectors:
            from repro.ir.embed import HashingEmbedder
            from repro.ir.vector import VectorIndex

            # One embedding pass over the global corpus; each snapshot
            # file below persists the restriction to its own documents.
            vector_index = VectorIndex.build(HashingEmbedder(),
                                             global_snapshot._documents)
        store_name = f"docs-{generation}.store"
        save_document_store(DocumentStore.from_snapshot(global_snapshot),
                            path / store_name)
        global_name = f"global-{generation}.snap"
        save_snapshot(global_snapshot, path / global_name,
                      docstore=store_name, vectors=vector_index)
        snapshot_names: dict[str, str] = {}
        for name in sorted(self.definitions):
            file_name = f"def-{name}-{generation}.snap"
            definition_snapshot = self._index_for(name).snapshot()
            missing = [doc_id for doc_id in definition_snapshot._documents
                       if doc_id not in global_snapshot._documents]
            if missing:
                # Writing refs for these would produce a generation that
                # fails at load time with a dangling-reference error;
                # fail at save time with the real cause instead.
                raise SnapshotError(
                    f"definition {name!r} indexes documents missing from "
                    f"the global snapshot (e.g. {missing[0]!r}); cannot "
                    f"deduplicate against the shared document store"
                )
            # Each definition snapshot carries a term Bloom filter in its
            # header so a loaded collection's plan stage can skip
            # definition retrieval that provably cannot match (the
            # per-definition counterpart of the per-shard filters).
            definition_bloom = TermBloomFilter.build(
                definition_snapshot.terms())
            save_snapshot(definition_snapshot, path / file_name,
                          docstore=store_name,
                          bloom=definition_bloom.to_dict(),
                          vectors=vector_index)
            snapshot_names[name] = file_name
        shard_entry = None
        shard_names: list[str] = []
        if self.shards >= 2:
            shard_list = shard_snapshot(global_snapshot, self.shards)
            for i, shard in enumerate(shard_list):
                file_name = f"shard-{i}of{self.shards}-{generation}.snap"
                bloom = TermBloomFilter.build(shard.terms())
                save_snapshot(shard, path / file_name, docstore=store_name,
                              shard={"index": i, "count": self.shards},
                              bloom=bloom.to_dict(), vectors=vector_index)
                shard_names.append(file_name)
            shard_entry = {"count": self.shards, "files": shard_names}
        manifest = {
            "magic": MANIFEST_MAGIC,
            "format_version": MANIFEST_VERSION,
            "analyzer": self.analyzer.config(),
            "database": self._database_fingerprint(self.database),
            "max_instances_per_definition": self.max_instances,
            "definitions": [self.definitions[name].to_dict()
                            for name in sorted(self.definitions)],
            "docstore": store_name,
            "snapshots": {"global": global_name,
                          "definitions": snapshot_names},
            "shards": shard_entry,
        }
        manifest_path = path / MANIFEST_NAME
        tmp_path = manifest_path.with_name(MANIFEST_NAME + ".tmp")
        tmp_path.write_text(
            json.dumps(manifest, indent=2, ensure_ascii=False) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp_path, manifest_path)
        referenced = {store_name, global_name, *snapshot_names.values(),
                      *shard_names}
        for stale in (*path.glob("*.snap"), *path.glob("*.store")):
            if stale.name not in referenced:
                stale.unlink(missing_ok=True)
        return path

    @classmethod
    def load(cls, database: Database, path: str | Path,
             shards: int = 0, parallelism: str = "serial",
             strategy: str = "auto") -> "QunitCollection":
        """Restore a collection saved by :meth:`save`.

        Every snapshot the manifest references is read eagerly, so the
        loaded collection holds its entire generation in memory and stays
        fully serviceable even if the directory is re-saved (and old
        snapshot files pruned) while it is live.  Under the version-2
        layout the generation's documents are loaded once from the shared
        store and *shared* across the global and per-definition snapshots
        — eager loading no longer costs a second copy of the corpus.  A
        load that *races* a re-save — manifest read, then a referenced
        file pruned before it was read — is retried from the fresh
        manifest.  The database is still required — answers materialize
        their instances from it on demand — but the derivation,
        materialization, and indexing cost of building the collection is
        skipped entirely.

        Args:
            database: the database the collection was derived from (its
                fingerprint is checked against the manifest).
            shards: sharded parallel scoring for the flat searcher.  When
                the saved generation persisted the same shard count, the
                per-shard snapshot files (and their Bloom filters) are
                restored directly instead of re-partitioning in memory.
            parallelism: shard executor mode (see :mod:`repro.ir.shard`).
            strategy: fast-path retrieval strategy for the restored
                searchers (see :mod:`repro.ir.wand`).

        Returns:
            The restored collection.

        Raises:
            SnapshotError: on missing/corrupt manifests or snapshots,
                format-version mismatches, analyzer disagreements, or a
                database fingerprint mismatch.
        """
        attempts = 3
        for attempt in range(attempts):
            try:
                return cls._load_once(database, path, shards, parallelism,
                                      strategy)
            except _SnapshotPruneRace:
                # Lost the race with a concurrent re-save's prune; the
                # fresh manifest references a complete generation.  Any
                # other failure (missing manifest, checksum, version,
                # fingerprint, analyzer mismatch) is final.
                if attempt == attempts - 1:
                    raise
        raise AssertionError("unreachable")

    @classmethod
    def _load_once(cls, database: Database, path: str | Path,
                   shards: int, parallelism: str,
                   strategy: str = "auto") -> "QunitCollection":
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise SnapshotError(
                f"cannot read collection manifest {str(manifest_path)!r}: {exc}"
            ) from exc
        except ValueError as exc:
            raise SnapshotError(
                f"collection manifest {str(manifest_path)!r} is not valid "
                f"JSON ({exc})"
            ) from exc
        if manifest.get("magic") != MANIFEST_MAGIC:
            raise SnapshotError(
                f"{str(manifest_path)!r} is not a qunits collection manifest"
            )
        if manifest.get("format_version") not in SUPPORTED_MANIFEST_VERSIONS:
            raise SnapshotError(
                f"collection manifest {str(manifest_path)!r} has format "
                f"version {manifest.get('format_version')!r}; this build "
                f"reads versions {SUPPORTED_MANIFEST_VERSIONS}"
            )
        saved_fingerprint = manifest.get("database")
        if saved_fingerprint is not None:
            actual = cls._database_fingerprint(database)
            if actual != saved_fingerprint:
                raise SnapshotError(
                    f"collection at {str(path)!r} was derived from database "
                    f"{saved_fingerprint.get('name')!r} with row counts "
                    f"{saved_fingerprint.get('row_counts')}, but the given "
                    f"database is {actual['name']!r} with "
                    f"{actual['row_counts']}; snapshot instances would not "
                    f"materialize against it (same scale/seed required)"
                )
        definitions_data = manifest.get("definitions")
        if not isinstance(definitions_data, list):
            raise SnapshotError(
                f"collection manifest {str(manifest_path)!r} has no "
                f"definitions list"
            )
        try:
            definitions = [QunitDefinition.from_dict(data)
                           for data in definitions_data]
        except (KeyError, TypeError) as exc:
            raise SnapshotError(
                f"collection manifest {str(manifest_path)!r} has a "
                f"malformed definition entry ({exc!r})"
            ) from exc
        collection = cls(
            database,
            definitions,
            max_instances_per_definition=manifest.get(
                "max_instances_per_definition"),
            analyzer=Analyzer.from_config(manifest.get("analyzer", {})),
            shards=shards,
            parallelism=parallelism,
            strategy=strategy,
        )
        store: DocumentStore | None = None
        store_name = manifest.get("docstore")
        if store_name is not None:
            store = cls._race_guarded(lambda: load_document_store(
                path / store_name))
        snapshots = manifest.get("snapshots", {})
        entries: list[tuple[str | None, str]] = []
        if "global" in snapshots:
            entries.append((None, snapshots["global"]))
        entries.extend(snapshots.get("definitions", {}).items())
        for key, file_name in entries:
            snapshot, header = cls._race_guarded(
                lambda file_name=file_name: load_snapshot_with_header(
                    path / file_name, store=store))
            if snapshot.analyzer != collection.analyzer:
                raise SnapshotError(
                    f"snapshot {file_name!r} was built with analyzer "
                    f"{snapshot.analyzer!r}, but the collection manifest "
                    f"says {collection.analyzer!r}; refusing to mix "
                    f"tokenizations"
                )
            collection._loaded_snapshots[key] = snapshot
            if key is not None:
                # Definition snapshots persist a term Bloom filter in
                # their header (files from older builds simply lack it);
                # restoring it lets the plan stage prune definition
                # retrieval without ever touching postings.  The filter
                # describes the *base* snapshot's vocabulary: when delta
                # segments advanced the snapshot past the header's
                # index_version, the persisted filter has never seen the
                # delta terms and pruning on it would drop real answers —
                # skip the restore and let :meth:`definition_bloom`
                # rebuild from the delta-applied snapshot on first use.
                bloom_data = header.get("bloom")
                if bloom_data and \
                        header.get("index_version") == snapshot.version:
                    collection._definition_blooms[key] = (
                        snapshot.version,
                        TermBloomFilter.from_dict(bloom_data))
        shard_entry = manifest.get("shards")
        if shards >= 2 and shard_entry and shard_entry.get("count") == shards:
            shard_snapshots: list[IndexSnapshot] = []
            blooms: list[TermBloomFilter | None] = []
            for file_name in shard_entry.get("files", []):
                shard_snapshot_obj, header = cls._race_guarded(
                    lambda file_name=file_name: load_snapshot_with_header(
                        path / file_name, store=store))
                shard_snapshots.append(shard_snapshot_obj)
                # Same staleness rule as the definition filters: a
                # persisted Bloom only describes the base vocabulary, so
                # a delta-advanced snapshot discards it (from_shards
                # rebuilds missing filters from the shard vocabularies).
                bloom_data = header.get("bloom")
                fresh = header.get("index_version") == \
                    shard_snapshot_obj.version
                blooms.append(TermBloomFilter.from_dict(bloom_data)
                              if bloom_data and fresh else None)
            if len(shard_snapshots) == shards:
                restored_blooms = ([bloom for bloom in blooms]
                                   if all(blooms) else None)
                collection._loaded_sharded = ShardedTopK.from_shards(
                    shard_snapshots, parallelism=parallelism,
                    blooms=restored_blooms)
        return collection

    @staticmethod
    def _race_guarded(read):
        """Run one snapshot-file read, translating a vanished-file error
        into :class:`_SnapshotPruneRace` so :meth:`load` retries from a
        fresh manifest instead of failing on a concurrent re-save."""
        try:
            return read()
        except SnapshotError as exc:
            if isinstance(exc.__cause__, OSError):
                raise _SnapshotPruneRace(str(exc)) from exc.__cause__
            raise

    @staticmethod
    def load_shard(path: str | Path, shard_index: int,
                   ) -> tuple[IndexSnapshot, "TermBloomFilter | None"]:
        """Load exactly one persisted shard partition of the flat index.

        This is the multi-process-server entry point: a worker process
        serving partition ``shard_index`` reads the manifest, its own
        shard snapshot, and — via the store header's byte-offset index —
        *only its partition's* documents from the shared store
        (:func:`~repro.ir.persist.load_document_store_partition`), never
        the other partitions' postings or documents.  The whole load is
        O(partition), not O(collection).

        Args:
            path: a generation directory written by :meth:`save` with
                ``shards >= 2`` configured.
            shard_index: which partition to load (0-based).

        Returns:
            ``(snapshot, bloom)``: the shard's self-contained snapshot
            (collection-wide statistics included, so scoring it is
            float-identical to the unsharded path) and its term Bloom
            filter (``None`` if the file predates Bloom persistence or
            carries delta segments the persisted filter has never seen).

        Raises:
            SnapshotError: if the directory has no persisted shards, the
                index is out of range, or any file fails verification.
        """
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise SnapshotError(
                f"cannot read collection manifest {str(manifest_path)!r}: "
                f"{exc}") from exc
        except ValueError as exc:
            raise SnapshotError(
                f"collection manifest {str(manifest_path)!r} is not valid "
                f"JSON ({exc})") from exc
        shard_entry = manifest.get("shards")
        if not shard_entry or not shard_entry.get("files"):
            raise SnapshotError(
                f"collection at {str(path)!r} has no persisted shard "
                f"snapshots (save with shards >= 2 configured)"
            )
        files = shard_entry["files"]
        if not 0 <= shard_index < len(files):
            raise SnapshotError(
                f"shard index {shard_index} out of range (collection has "
                f"{len(files)} shards)"
            )
        file_name = files[shard_index]
        store = None
        if manifest.get("docstore"):
            # Which documents this partition needs is written in the
            # shard file's own ref records; fetch exactly those from the
            # store via its header offset index.
            wanted = read_snapshot_doc_ids(path / file_name)
            store = load_document_store_partition(
                path / manifest["docstore"], wanted)
        snapshot, header = load_snapshot_with_header(path / file_name,
                                                     store=store)
        # A persisted Bloom filter describes the base snapshot only;
        # delta segments may have added vocabulary it has never seen, so
        # a delta-advanced shard hands back no filter (routing on a
        # stale one could skip real postings).
        bloom_data = header.get("bloom")
        fresh = header.get("index_version") == snapshot.version
        bloom = TermBloomFilter.from_dict(bloom_data) \
            if bloom_data and fresh else None
        return snapshot, bloom

    def _decorated_document(self, instance: QunitInstance):
        """Instance document with definition keywords folded into the title,
        so "cast" queries hit cast qunits even when no tuple says "cast"."""
        document = instance.as_document()
        keywords = " ".join(instance.definition.keywords)
        if not keywords:
            return document
        fields = dict(document.fields)
        fields["title"] = f"{fields['title']} {normalize(keywords)}"
        from repro.ir.documents import Document

        return Document.create(
            doc_id=document.doc_id,
            fields=fields,
            field_weights=dict(document.field_weights),
            metadata=dict(document.metadata),
        )

    # -- validation -----------------------------------------------------------------------

    def validate(self) -> list[str]:
        """Static checks on every definition; returns problem descriptions.

        Intended for users authoring their own qunit sets: catches binder
        columns missing from the schema, binders over non-searchable
        columns (instances would be unreachable by entity queries),
        unparseable conversion templates, and templates referencing fields
        the base expression cannot produce.
        """
        from repro.core.presentation import ConversionTemplate
        from repro.errors import ReproError

        problems: list[str] = []
        for name, definition in sorted(self.definitions.items()):
            for binder in definition.binders:
                try:
                    column = self.database.schema.table(binder.table).column(
                        binder.column)
                except ReproError as exc:
                    problems.append(f"{name}: binder {exc}")
                    continue
                from repro.relational.schema import ColumnType

                numeric = column.type in (ColumnType.INTEGER, ColumnType.FLOAT)
                if not column.searchable and not numeric:
                    # Text binders must be searchable for entity queries to
                    # bind them; numeric binders (years) bind through the
                    # segmenter's literal-number recognition instead.
                    problems.append(
                        f"{name}: binder {binder.qualified} is not a "
                        f"searchable column; entity queries cannot bind it"
                    )
            if definition.conversion is not None:
                try:
                    template = ConversionTemplate(definition.conversion)
                except ReproError as exc:
                    problems.append(f"{name}: conversion template: {exc}")
                    continue
                footprint = set(definition.tables())
                binder_params = {binder.param for binder in definition.binders}
                for variable in template.variables():
                    if "." in variable:
                        table = variable.split(".")[0]
                        if table not in footprint:
                            problems.append(
                                f"{name}: template references ${variable} "
                                f"but {table!r} is not in the base expression"
                            )
                    elif variable not in binder_params:
                        problems.append(
                            f"{name}: template references unbound "
                            f"parameter ${variable}"
                        )
            if not definition.keywords and definition.binders:
                problems.append(
                    f"{name}: no keywords; attribute queries can never "
                    f"commit to this definition"
                )
        return problems

    # -- priors ---------------------------------------------------------------------------

    def popularity_priors(self, table: str = "movie", column: str = "votes",
                          ) -> dict[str, float]:
        """Static per-instance priors from an entity-popularity column.

        For every materialized instance, the prior is ``1 + log10(1 + v)``
        where ``v`` is the largest value of ``table.column`` among the
        instance's tuples (1.0 when the instance never touches it).  Feed
        the result to :class:`~repro.ir.scoring.PriorWeightedScorer` to get
        popularity-aware ranking — the ObjectRank idea recast as a document
        prior inside the qunit paradigm.
        """
        import math

        self.database.schema.table(table).column(column)
        qualified = f"{table}.{column}"
        priors: dict[str, float] = {}
        for instance in self.all_instances():
            best = 0.0
            for row in instance.rows:
                value = row.get(qualified)
                if isinstance(value, (int, float)) and value > best:
                    best = float(value)
            priors[instance.instance_id] = 1.0 + math.log10(1.0 + best)
        return priors

    # -- statistics -----------------------------------------------------------------------

    def instance_count(self) -> int:
        """Total materialized (non-empty, bounded) instances."""
        return sum(len(self.instances_of(name)) for name in self.definitions)

    def describe(self) -> list[tuple[str, str, int]]:
        """(name, source, instance count) per definition, name-sorted."""
        return [
            (name, self.definitions[name].source, len(self.instances_of(name)))
            for name in sorted(self.definitions)
        ]
